//! Accel-engine frontend driver: the job-submission interface instances
//! see.

use oasis_accel::{AccelCommand, AccelCompletion, AccelOp, AccelStatus};
use oasis_channel::{Receiver, RetryPolicy, RetryState, Sender};
use oasis_cxl::{lines_covering, CxlPool, HostCtx};
use oasis_sim::detmap::DetMap;
use oasis_sim::time::{SimDuration, SimTime};

use crate::config::OasisConfig;
use crate::datapath::BufferArea;
use crate::engine::{DeviceEngine, EngineFault, EngineFrontend, EngineWorld};
use crate::snapshot::Snapshottable;

/// A completed offload job returned to the caller.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The command id returned at submit time.
    pub cid: u16,
    /// Completion status (device failures surface here, §3.4).
    pub status: AccelStatus,
    /// The operation result echoed by the device (checksum digest).
    pub result: u64,
    /// The output bytes, copied out of shared CXL memory.
    pub output: Option<Vec<u8>>,
}

struct PendingJob {
    /// Input buffer (freed on completion).
    in_buf: u64,
    /// Output buffer (read back and freed on completion).
    out_buf: u64,
    /// Bytes the device writes to the output buffer.
    out_bytes: u64,
    /// Target accelerator (for resubmission routing).
    dev: usize,
    /// The full command, kept for retransmission.
    cmd: AccelCommand,
    /// Retry pacing for this job.
    retry: RetryState,
    /// First submission time (service-time telemetry; retries keep it).
    #[cfg(feature = "obs")]
    issued: oasis_sim::time::SimTime,
}

/// One channel link to an accel backend.
struct DevLink {
    dev: usize,
    to: Sender,
    from: Receiver,
}

/// Frontend counters.
#[derive(Clone, Debug, Default)]
pub struct AccelFeStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Completions delivered.
    pub completed: u64,
    /// Completions with error status.
    pub errors: u64,
    /// Submissions refused (no buffer / channel full).
    pub refused: u64,
    /// Jobs resubmitted after a completion timeout or transient compute
    /// error.
    pub retries: u64,
    /// Jobs failed to the caller after exhausting the retry budget.
    pub retry_exhausted: u64,
}

/// The accel frontend driver (one busy-polling core per host).
pub struct AccelFrontend {
    /// Host this frontend runs on.
    pub host: usize,
    /// The polling core.
    pub core: HostCtx,
    /// Counters.
    pub stats: AccelFeStats,
    cfg: OasisConfig,
    links: Vec<DevLink>,
    data_area: BufferArea,
    pending: DetMap<u16, PendingJob>,
    done: Vec<JobResult>,
    next_cid: u16,
    /// Submit-to-completion latency, retries included (nanoseconds).
    #[cfg(feature = "obs")]
    service_ns: oasis_obs::ObsHistogram,
}

impl AccelFrontend {
    /// Create a frontend with its job buffer area in pool memory.
    pub fn new(host: usize, core: HostCtx, cfg: OasisConfig, data_area: BufferArea) -> Self {
        AccelFrontend {
            host,
            core,
            stats: AccelFeStats::default(),
            cfg,
            links: Vec::new(),
            data_area,
            pending: DetMap::default(),
            done: Vec::new(),
            next_cid: 0,
            #[cfg(feature = "obs")]
            service_ns: oasis_obs::ObsHistogram::new(),
        }
    }

    /// Wire a channel pair to an accelerator's backend.
    pub fn add_accel_link(&mut self, dev: usize, to: Sender, from: Receiver) {
        self.links.push(DevLink { dev, to, from });
    }

    fn link_idx(&self, dev: usize) -> Option<usize> {
        self.links.iter().position(|l| l.dev == dev)
    }

    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            timeout: self.cfg.accel_retry_timeout,
            backoff: self.cfg.accel_retry_backoff,
            max_attempts: self.cfg.accel_retry_max_attempts,
        }
    }

    /// Invalidate a finished job's buffer lines and return both buffers for
    /// reuse (same §3.2.1 software-coherence discipline as storage: the
    /// next occupant's data arrives by device DMA, so stale cached lines
    /// must go).
    fn release_bufs(&mut self, pool: &mut CxlPool, p: &PendingJob) {
        for la in lines_covering(p.in_buf, p.cmd.input_len as u64) {
            self.core.clflushopt(pool, la);
        }
        self.data_area.free(p.in_buf);
        for la in lines_covering(p.out_buf, p.out_bytes) {
            self.core.clflushopt(pool, la);
        }
        self.data_area.free(p.out_buf);
    }

    /// Put `cmd` back on the wire to `dev`. A full channel is fine: the
    /// armed deadline fires again later.
    fn resend(&mut self, pool: &mut CxlPool, dev: usize, cmd: &AccelCommand) {
        if let Some(li) = self.link_idx(dev) {
            let link = &mut self.links[li];
            if link
                .to
                .try_send(&mut self.core, pool, &cmd.encode())
                .unwrap_or(false)
            {
                link.to.flush(&mut self.core, pool);
            }
        }
    }

    /// Bytes the device writes for `op` over an `input_len`-byte input.
    fn output_bytes(op: AccelOp, input_len: u32) -> u64 {
        match op {
            AccelOp::Checksum => 8,
            AccelOp::Scale => input_len as u64,
        }
    }

    /// Submit an offload job. Returns the command id, or `None` when
    /// backpressured (no buffers / channel full) — the caller retries on a
    /// later tick.
    pub fn submit_job(
        &mut self,
        pool: &mut CxlPool,
        dev: usize,
        op: AccelOp,
        arg: u32,
        input: &[u8],
    ) -> Option<u16> {
        let li = self.link_idx(dev)?;
        let bytes = input.len() as u64;
        if bytes == 0 || bytes > self.data_area.buf_size() {
            self.stats.refused += 1;
            return None;
        }
        let Some(in_buf) = self.data_area.alloc() else {
            self.stats.refused += 1;
            return None;
        };
        let Some(out_buf) = self.data_area.alloc() else {
            self.data_area.free(in_buf);
            self.stats.refused += 1;
            return None;
        };
        // Stage the input in shared CXL memory and write it back so the
        // device's DMA sees it (§3.2.1).
        self.core.write(pool, in_buf, input);
        for la in lines_covering(in_buf, bytes) {
            self.core.clwb(pool, la);
        }
        self.core.publish(pool, in_buf, bytes);
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        let cmd = AccelCommand {
            op,
            cid,
            arg,
            input_ptr: in_buf,
            output_ptr: out_buf,
            input_len: input.len() as u32,
            frontend: self.host as u32,
        };
        let link = &mut self.links[li];
        if !link
            .to
            .try_send(&mut self.core, pool, &cmd.encode())
            .unwrap_or(false)
        {
            self.data_area.free(out_buf);
            self.data_area.free(in_buf);
            self.stats.refused += 1;
            return None;
        }
        link.to.flush(&mut self.core, pool);
        self.stats.submitted += 1;
        let retry = RetryState::armed(&self.retry_policy(), self.core.clock);
        self.pending.insert(
            cid,
            PendingJob {
                in_buf,
                out_buf,
                out_bytes: Self::output_bytes(op, cmd.input_len),
                dev,
                cmd,
                retry,
                #[cfg(feature = "obs")]
                issued: self.core.clock,
            },
        );
        Some(cid)
    }

    /// One polling round: drain completion channels, then resubmit any job
    /// whose completion deadline has passed (a device in a fault window
    /// swallows jobs whole; the backend deduplicates replays, so
    /// resubmission is safe even when the original is merely slow).
    pub fn step(&mut self, pool: &mut CxlPool) {
        self.core.advance(self.cfg.driver_loop_ns);
        let policy = self.retry_policy();
        let mut buf = [0u8; 64];
        for li in 0..self.links.len() {
            loop {
                let got = self.links[li].from.try_recv(&mut self.core, pool, &mut buf);
                if !got {
                    break;
                }
                let Some(comp) = AccelCompletion::decode(&buf) else {
                    continue;
                };
                let Some(p) = self.pending.remove(&comp.cid) else {
                    continue;
                };
                if comp.status == AccelStatus::ComputeError && p.retry.can_retry(&policy) {
                    // Transient compute fault (injected fault window): drop
                    // the errored completion and let the armed retry
                    // deadline resubmit with backoff. Resending immediately
                    // would hammer the device — errors complete in ~1 µs,
                    // so the whole budget burns inside the fault window.
                    self.pending.insert(comp.cid, p);
                    continue;
                }
                let output = if comp.status.is_ok() {
                    // Copy the result out of shared memory. The device DMA'd
                    // it into the pool; cached lines of this buffer are
                    // stale by definition.
                    self.core.expect_fresh(pool, p.out_buf, p.out_bytes);
                    let mut out = vec![0u8; p.out_bytes as usize];
                    self.core.read_stream(pool, p.out_buf, &mut out);
                    Some(out)
                } else {
                    None
                };
                self.release_bufs(pool, &p);
                self.stats.completed += 1;
                #[cfg(feature = "obs")]
                self.service_ns
                    .record((self.core.clock - p.issued).as_nanos());
                if !comp.status.is_ok() {
                    self.stats.errors += 1;
                }
                self.done.push(JobResult {
                    cid: comp.cid,
                    status: comp.status,
                    result: comp.result,
                    output,
                });
            }
            self.links[li].from.publish_consumed(&mut self.core, pool);
        }

        // Retry timers: resubmit expired jobs, fail exhausted ones.
        let now = self.core.clock;
        let mut expired: Vec<u16> = self
            .pending
            .iter()
            .filter(|(_, p)| p.retry.expired(now))
            .map(|(cid, _)| *cid)
            .collect();
        expired.sort_unstable();
        for cid in expired {
            let can = self
                .pending
                .get(&cid)
                .is_some_and(|p| p.retry.can_retry(&policy));
            if can {
                let Some(p) = self.pending.get_mut(&cid) else {
                    continue;
                };
                p.retry.rearm(&policy, now);
                let (dev, cmd) = (p.dev, p.cmd);
                self.stats.retries += 1;
                self.resend(pool, dev, &cmd);
            } else {
                let Some(p) = self.pending.remove(&cid) else {
                    continue;
                };
                self.release_bufs(pool, &p);
                self.stats.completed += 1;
                #[cfg(feature = "obs")]
                self.service_ns
                    .record((self.core.clock - p.issued).as_nanos());
                self.stats.errors += 1;
                self.stats.retry_exhausted += 1;
                self.done.push(JobResult {
                    cid,
                    status: AccelStatus::DeviceFailure,
                    result: 0,
                    output: None,
                });
            }
        }
    }

    /// After a host restart, rearm and resubmit every in-flight job — same
    /// recovery protocol as the storage engine: the submission intent
    /// survives in driver state, lost completions are replayed, and the
    /// backend's dedup window keeps execution exactly-once.
    pub fn replay_pending(&mut self, pool: &mut CxlPool) {
        let policy = self.retry_policy();
        let now = self.core.clock;
        let mut cids: Vec<u16> = self.pending.keys().copied().collect();
        cids.sort_unstable();
        for cid in cids {
            let Some(p) = self.pending.get_mut(&cid) else {
                continue;
            };
            p.retry = RetryState::armed(&policy, now);
            let (dev, cmd) = (p.dev, p.cmd);
            self.stats.retries += 1;
            self.resend(pool, dev, &cmd);
        }
    }

    /// Take completed jobs.
    pub fn take_completions(&mut self) -> Vec<JobResult> {
        std::mem::take(&mut self.done)
    }

    /// Jobs still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

impl Snapshottable for AccelFrontend {
    /// Same layout discipline as the storage frontend: in-flight jobs as
    /// their full 64 B wire descriptor plus routing/retry state (buffer
    /// pointers and output size are derived and rebuilt on restore), the
    /// completed-job queue, then the data-area free list. The `issued` slot
    /// is written unconditionally so the byte format is feature-independent.
    fn snapshot_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.core.clock.as_nanos());
        let s = &self.stats;
        for v in [
            s.submitted,
            s.completed,
            s.errors,
            s.refused,
            s.retries,
            s.retry_exhausted,
        ] {
            w.put_u64(v);
        }
        w.put_u16(self.next_cid);
        let mut cids: Vec<u16> = self.pending.keys().copied().collect();
        cids.sort_unstable();
        w.put_u64(cids.len() as u64);
        for cid in cids {
            if let Some(p) = self.pending.get(&cid) {
                w.put_u16(cid);
                w.put_bytes(&p.cmd.encode());
                w.put_u64(p.dev as u64);
                let (attempts, deadline, wait) = p.retry.to_parts();
                w.put_u32(attempts);
                w.put_u64(deadline.as_nanos());
                w.put_u64(wait.as_nanos());
                #[cfg(feature = "obs")]
                w.put_u64(p.issued.as_nanos());
                #[cfg(not(feature = "obs"))]
                w.put_u64(0);
            }
        }
        w.put_u64(self.done.len() as u64);
        for res in &self.done {
            w.put_u16(res.cid);
            w.put_u8(res.status.to_byte());
            w.put_u64(res.result);
            match &res.output {
                Some(output) => {
                    w.put_bool(true);
                    w.put_bytes(output);
                }
                None => w.put_bool(false),
            }
        }
        self.data_area.snapshot_state(w);
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        self.core.clock = SimTime(r.u64("accel-fe clock")?);
        self.stats.submitted = r.u64("accel-fe submitted")?;
        self.stats.completed = r.u64("accel-fe completed")?;
        self.stats.errors = r.u64("accel-fe errors")?;
        self.stats.refused = r.u64("accel-fe refused")?;
        self.stats.retries = r.u64("accel-fe retries")?;
        self.stats.retry_exhausted = r.u64("accel-fe retry_exhausted")?;
        self.next_cid = r.u16("accel-fe next cid")?;
        let n = r.u64("accel-fe pending count")?;
        self.pending.clear();
        for _ in 0..n {
            let cid = r.u16("accel-fe pending cid")?;
            let blob = r.bytes("accel-fe pending cmd")?;
            let arr: [u8; 64] = blob
                .try_into()
                .map_err(|_| SnapshotError::Corrupt("accel-fe pending cmd"))?;
            let cmd =
                AccelCommand::decode(&arr).ok_or(SnapshotError::Corrupt("accel-fe pending cmd"))?;
            if cmd.cid != cid {
                return Err(SnapshotError::Corrupt("accel-fe pending cid"));
            }
            let dev = r.u64("accel-fe pending dev")? as usize;
            let attempts = r.u32("accel-fe pending attempts")?;
            let deadline = SimTime(r.u64("accel-fe pending deadline")?);
            let wait = SimDuration::from_nanos(r.u64("accel-fe pending wait")?);
            let _issued_ns = r.u64("accel-fe pending issued")?;
            self.pending.insert(
                cid,
                PendingJob {
                    in_buf: cmd.input_ptr,
                    out_buf: cmd.output_ptr,
                    out_bytes: Self::output_bytes(cmd.op, cmd.input_len),
                    dev,
                    cmd,
                    retry: RetryState::from_parts(attempts, deadline, wait),
                    #[cfg(feature = "obs")]
                    issued: SimTime(_issued_ns),
                },
            );
        }
        let n = r.u64("accel-fe done count")?;
        self.done.clear();
        for _ in 0..n {
            let cid = r.u16("accel-fe done cid")?;
            let status = AccelStatus::from_byte(r.u8("accel-fe done status")?);
            let result = r.u64("accel-fe done result")?;
            let output = if r.bool("accel-fe done output flag")? {
                Some(r.bytes("accel-fe done output")?.to_vec())
            } else {
                None
            };
            self.done.push(JobResult {
                cid,
                status,
                result,
                output,
            });
        }
        self.data_area.restore_state(r)?;
        Ok(())
    }
}

impl DeviceEngine for AccelFrontend {
    fn host(&self) -> usize {
        self.host
    }
    fn core(&self) -> &HostCtx {
        &self.core
    }
    fn core_mut(&mut self) -> &mut HostCtx {
        &mut self.core
    }
    fn poll(
        &mut self,
        world: &mut EngineWorld,
    ) -> Vec<(oasis_sim::time::SimTime, oasis_net::packet::Frame)> {
        self.step(world.pool);
        Vec::new()
    }
    fn on_fault(&mut self, fault: EngineFault, pool: &mut CxlPool) {
        if fault == EngineFault::HostRestart {
            self.replay_pending(pool);
        }
    }
    fn on_metrics(&self, sink: &mut oasis_obs::MetricSink) {
        use crate::metrics as m;
        let t = self.host as u32;
        sink.set(m::ACCEL_FE_SUBMITTED, t, self.stats.submitted);
        sink.set(m::ACCEL_FE_COMPLETED, t, self.stats.completed);
        sink.set(m::ACCEL_FE_ERRORS, t, self.stats.errors);
        sink.set(m::ACCEL_FE_REFUSED, t, self.stats.refused);
        sink.set(m::ACCEL_FE_RETRIES, t, self.stats.retries);
        sink.set(m::ACCEL_FE_RETRY_EXHAUSTED, t, self.stats.retry_exhausted);
        sink.set(m::ACCEL_FE_INFLIGHT, t, self.pending.len() as u64);
        #[cfg(feature = "obs")]
        sink.merge_hist(m::ACCEL_FE_SERVICE_NS, t, &self.service_ns);
        oasis_cxl::obs::export_host_metrics(&self.core, sink);
    }
}

impl EngineFrontend for AccelFrontend {
    type Command = AccelCommand;
    type Completion = AccelCompletion;
    const ENGINE: &'static str = "accel";
}
