//! Container instances and their small network stack.
//!
//! An instance in the paper is an unmodified Linux binary running under the
//! Junction container runtime; the runtime gives it a packet I/O interface
//! over IPC channels in local DDR, and the Oasis frontend driver sits on
//! the other end (§4). Here an instance is an application behind the same
//! packet interface: the frontend `deliver`s RX frames; the instance's
//! UDP/TCP-lite stack runs the application callback and queues response
//! frames for the frontend to `pop_tx`.
//!
//! Instances are reactive (servers). Open-loop load generators live in
//! `oasis-apps` as client endpoints attached directly to the switch.

use std::collections::VecDeque;

use oasis_net::addr::{Ipv4Addr, MacAddr};
use oasis_net::packet::{ArpOp, ArpPacket, Frame, GarpPacket, TcpSegment, UdpPacket};
use oasis_sim::detmap::DetMap;
use oasis_sim::time::{SimDuration, SimTime};

use crate::tcp::{TcpConfig, TcpConn};

/// A UDP response produced by an application callback.
#[derive(Clone, Debug)]
pub struct UdpResponse {
    /// Service time before the response hits the wire.
    pub delay: SimDuration,
    /// Destination (usually the request's source).
    pub dst: (Ipv4Addr, u16),
    /// Source port of the response.
    pub src_port: u16,
    /// Payload.
    pub payload: Vec<u8>,
}

/// A UDP server application (echo, DNS-style request/response, ...).
pub trait UdpApp {
    /// Handle one datagram; return zero or more responses.
    fn on_datagram(
        &mut self,
        now: SimTime,
        src: (Ipv4Addr, u16),
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<UdpResponse>;
}

/// A TCP response produced by an application callback.
#[derive(Clone, Debug)]
pub struct TcpResponse {
    /// Service time before the bytes are handed to TCP.
    pub delay: SimDuration,
    /// Response bytes (appended to the connection's stream).
    pub bytes: Vec<u8>,
}

/// A TCP server application (memcached-like, HTTP-like).
pub trait TcpApp {
    /// Handle newly delivered stream bytes from a peer.
    fn on_data(&mut self, now: SimTime, peer: (Ipv4Addr, u16), data: &[u8]) -> Vec<TcpResponse>;
}

/// The application attached to an instance.
///
/// Apps are `Send` so whole pods can migrate between the sharded runner's
/// worker threads (`oasis_sim::shard`); each pod is still driven by exactly
/// one thread at a time.
pub enum AppKind {
    /// No application (traffic sink).
    None,
    /// UDP server.
    Udp(Box<dyn UdpApp + Send>),
    /// TCP server.
    Tcp(Box<dyn TcpApp + Send>),
}

struct TcpPeer {
    conn: TcpConn,
    peer_mac: MacAddr,
    /// Responses whose service time has not elapsed yet.
    pending: Vec<(SimTime, Vec<u8>)>,
}

/// Traffic counters.
#[derive(Clone, Debug, Default)]
pub struct InstanceStats {
    /// Frames delivered to the instance.
    pub rx_frames: u64,
    /// Frames emitted by the instance.
    pub tx_frames: u64,
    /// Datagrams the UDP app handled.
    pub udp_datagrams: u64,
    /// Stream bytes the TCP app handled.
    pub tcp_bytes: u64,
}

/// A container instance.
pub struct Instance {
    /// Dense instance id (also its flow tag).
    pub id: u32,
    /// The instance's IP.
    pub ip: Ipv4Addr,
    /// Host the instance runs on.
    pub host: usize,
    /// Counters.
    pub stats: InstanceStats,
    app: AppKind,
    tcp_cfg: TcpConfig,
    tcp_peers: DetMap<(u32, u16), TcpPeer>,
    /// Response frames ready for the frontend at their timestamp.
    tx_queue: VecDeque<(SimTime, Frame)>,
    /// Source MAC for emitted frames: the MAC of the NIC currently serving
    /// this instance (§3.3.1 — instances share the host NIC's MAC).
    mac: MacAddr,
    /// Well-known server port used as the source of TCP responses.
    pub server_port: u16,
}

impl Instance {
    /// Create an instance; `mac` is assigned at registration time.
    pub fn new(id: u32, ip: Ipv4Addr, host: usize, app: AppKind) -> Self {
        Instance {
            id,
            ip,
            host,
            stats: InstanceStats::default(),
            app,
            tcp_cfg: TcpConfig::default(),
            tcp_peers: DetMap::default(),
            tx_queue: VecDeque::new(),
            mac: MacAddr::ZERO,
            server_port: 0,
        }
    }

    /// Override the TCP configuration (RTO etc.) for this instance.
    pub fn set_tcp_config(&mut self, cfg: TcpConfig) {
        self.tcp_cfg = cfg;
    }

    /// The MAC this instance currently sources frames with.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Set the serving NIC's MAC. With `announce`, broadcasts a GARP so
    /// switches and peers update their mappings — the §3.3.4 graceful
    /// migration flow.
    pub fn set_mac(&mut self, now: SimTime, mac: MacAddr, announce: bool) {
        self.mac = mac;
        if announce {
            let garp = GarpPacket {
                sender_mac: mac,
                sender_ip: self.ip,
            }
            .encode();
            self.tx_queue.push_back((now, garp));
        }
    }

    /// Frontend hands the instance an RX frame; the stack dispatches to the
    /// application and enqueues responses.
    pub fn deliver(&mut self, now: SimTime, frame: &Frame) {
        self.stats.rx_frames += 1;
        if let Some(udp) = UdpPacket::parse(frame) {
            if udp.dst_ip != self.ip {
                return; // not ours (mis-tagged); drop
            }
            let AppKind::Udp(app) = &mut self.app else {
                return;
            };
            self.stats.udp_datagrams += 1;
            let responses =
                app.on_datagram(now, (udp.src_ip, udp.src_port), udp.dst_port, &udp.payload);
            for r in responses {
                let reply = UdpPacket {
                    src_mac: self.mac,
                    dst_mac: udp.src_mac,
                    src_ip: self.ip,
                    dst_ip: r.dst.0,
                    src_port: r.src_port,
                    dst_port: r.dst.1,
                    payload: bytes::Bytes::from(r.payload),
                }
                .encode();
                self.tx_queue.push_back((now + r.delay, reply));
            }
        } else if let Some(seg) = TcpSegment::parse(frame) {
            if seg.dst_ip != self.ip {
                return;
            }
            let key = (seg.src_ip.to_u32(), seg.src_port);
            let cfg = self.tcp_cfg;
            let peer = self.tcp_peers.entry(key).or_insert_with(|| TcpPeer {
                conn: TcpConn::new(cfg),
                peer_mac: seg.src_mac,
                pending: Vec::new(),
            });
            peer.peer_mac = seg.src_mac;
            peer.conn.on_segment(now, seg.seq, seg.ack, &seg.payload);
            let data = peer.conn.take_received();
            if !data.is_empty() {
                self.stats.tcp_bytes += data.len() as u64;
                if let AppKind::Tcp(app) = &mut self.app {
                    for r in app.on_data(now, (seg.src_ip, seg.src_port), &data) {
                        peer.pending.push((now + r.delay, r.bytes));
                    }
                }
            }
            self.flush_tcp(now);
        } else if let Some(arp) = ArpPacket::parse(frame) {
            // Answer who-has requests for our IP with the serving NIC's
            // MAC (how clients resolve instances without out-of-band
            // configuration).
            if arp.op == ArpOp::Request && arp.target_ip == self.ip {
                let reply =
                    ArpPacket::reply(self.mac, self.ip, arp.sender_mac, arp.sender_ip).encode();
                self.tx_queue.push_back((now, reply));
            }
        }
    }

    /// Run TCP timers and move due segments into the TX queue. The
    /// frontend calls this every polling round.
    pub fn tick(&mut self, now: SimTime) {
        self.flush_tcp(now);
    }

    fn flush_tcp(&mut self, now: SimTime) {
        let ip = self.ip;
        let mac = self.mac;
        let mut keys: Vec<(u32, u16)> = self.tcp_peers.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let Some(peer) = self.tcp_peers.get_mut(&key) else {
                continue;
            };
            // Release app responses whose service time elapsed.
            let mut due: Vec<(SimTime, Vec<u8>)> = Vec::new();
            peer.pending.retain(|(at, bytes)| {
                if *at <= now {
                    due.push((*at, bytes.clone()));
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|(at, _)| *at);
            for (_, bytes) in due {
                peer.conn.send(&bytes);
            }
            // Emit segments (new data, retransmits, ACKs).
            for seg in peer.conn.poll(now) {
                let frame = TcpSegment {
                    src_mac: mac,
                    dst_mac: peer.peer_mac,
                    src_ip: ip,
                    dst_ip: Ipv4Addr::from_u32(key.0),
                    src_port: 0, // filled below
                    dst_port: key.1,
                    seq: seg.seq,
                    ack: seg.ack,
                    flags: oasis_net::packet::TcpFlags {
                        ack: true,
                        psh: !seg.payload.is_empty(),
                        ..Default::default()
                    },
                    window: 0xffff,
                    payload: bytes::Bytes::from(seg.payload),
                };
                // Server port convention: reuse the port the peer targeted.
                // We do not track it per-connection; experiments use one
                // well-known port per instance, stored in `server_port`.
                let mut frame = frame;
                frame.src_port = self.server_port;
                self.tx_queue.push_back((now, frame.encode()));
            }
        }
    }

    /// Pop the next TX frame that is ready at `now`.
    pub fn pop_tx(&mut self, now: SimTime) -> Option<Frame> {
        // The queue is not strictly sorted (different service delays), so
        // find the earliest due frame.
        let idx = self
            .tx_queue
            .iter()
            .enumerate()
            .filter(|(_, (at, _))| *at <= now)
            .min_by_key(|(_, (at, _))| *at)
            .map(|(i, _)| i)?;
        let (_, frame) = self.tx_queue.remove(idx)?;
        self.stats.tx_frames += 1;
        Some(frame)
    }

    /// Earliest timestamp in the TX queue or TCP timers (for idle-skip).
    pub fn next_event(&self) -> Option<SimTime> {
        let mut t = self.tx_queue.iter().map(|(at, _)| *at).min();
        for peer in self.tcp_peers.values() {
            if let Some(rto) = peer.conn.next_timer() {
                t = Some(t.map_or(rto, |cur| cur.min(rto)));
            }
            for (at, _) in &peer.pending {
                t = Some(t.map_or(*at, |cur| cur.min(*at)));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    struct Echo;
    impl UdpApp for Echo {
        fn on_datagram(
            &mut self,
            _now: SimTime,
            src: (Ipv4Addr, u16),
            dst_port: u16,
            payload: &[u8],
        ) -> Vec<UdpResponse> {
            vec![UdpResponse {
                delay: SimDuration::from_micros(1),
                dst: src,
                src_port: dst_port,
                payload: payload.to_vec(),
            }]
        }
    }

    fn udp_frame(dst_ip: Ipv4Addr, payload: &[u8]) -> Frame {
        UdpPacket {
            src_mac: MacAddr::client(1),
            dst_mac: MacAddr::nic(0),
            src_ip: Ipv4Addr::client(1),
            dst_ip,
            src_port: 5555,
            dst_port: 7,
            payload: Bytes::copy_from_slice(payload),
        }
        .encode()
    }

    #[test]
    fn udp_echo_flow() {
        let ip = Ipv4Addr::instance(1);
        let mut inst = Instance::new(1, ip, 0, AppKind::Udp(Box::new(Echo)));
        inst.set_mac(SimTime::ZERO, MacAddr::nic(0), false);
        inst.deliver(SimTime::ZERO, &udp_frame(ip, b"ping"));
        // Response not ready before the service delay.
        assert!(inst.pop_tx(SimTime::ZERO).is_none());
        let frame = inst.pop_tx(SimTime::from_micros(1)).unwrap();
        let reply = UdpPacket::parse(&frame).unwrap();
        assert_eq!(reply.payload.as_ref(), b"ping");
        assert_eq!(reply.dst_ip, Ipv4Addr::client(1));
        assert_eq!(reply.dst_port, 5555);
        assert_eq!(reply.src_port, 7);
        assert_eq!(reply.src_mac, MacAddr::nic(0));
        assert_eq!(reply.dst_mac, MacAddr::client(1));
    }

    #[test]
    fn frames_for_other_ips_dropped() {
        let mut inst = Instance::new(1, Ipv4Addr::instance(1), 0, AppKind::Udp(Box::new(Echo)));
        inst.deliver(SimTime::ZERO, &udp_frame(Ipv4Addr::instance(2), b"x"));
        assert!(inst.pop_tx(SimTime::from_secs(1)).is_none());
        assert_eq!(inst.stats.udp_datagrams, 0);
    }

    #[test]
    fn garp_emitted_on_mac_change() {
        let ip = Ipv4Addr::instance(3);
        let mut inst = Instance::new(3, ip, 0, AppKind::None);
        inst.set_mac(SimTime::ZERO, MacAddr::nic(0), false);
        inst.set_mac(SimTime::from_secs(1), MacAddr::nic(1), true);
        let frame = inst.pop_tx(SimTime::from_secs(1)).unwrap();
        let garp = GarpPacket::parse(&frame).unwrap();
        assert_eq!(garp.sender_mac, MacAddr::nic(1));
        assert_eq!(garp.sender_ip, ip);
        assert_eq!(inst.mac(), MacAddr::nic(1));
    }

    struct Upper;
    impl TcpApp for Upper {
        fn on_data(
            &mut self,
            _now: SimTime,
            _peer: (Ipv4Addr, u16),
            data: &[u8],
        ) -> Vec<TcpResponse> {
            vec![TcpResponse {
                delay: SimDuration::from_micros(2),
                bytes: data.to_ascii_uppercase(),
            }]
        }
    }

    #[test]
    fn tcp_request_response_flow() {
        let ip = Ipv4Addr::instance(5);
        let mut inst = Instance::new(5, ip, 0, AppKind::Tcp(Box::new(Upper)));
        inst.server_port = 11211;
        inst.set_mac(SimTime::ZERO, MacAddr::nic(0), false);
        // Client-side connection.
        let mut client = TcpConn::new(TcpConfig::default());
        client.send(b"get foo");
        let segs = client.poll(SimTime::ZERO);
        for s in segs {
            let frame = TcpSegment {
                src_mac: MacAddr::client(2),
                dst_mac: MacAddr::nic(0),
                src_ip: Ipv4Addr::client(2),
                dst_ip: ip,
                src_port: 40000,
                dst_port: 11211,
                seq: s.seq,
                ack: s.ack,
                flags: Default::default(),
                window: 0xffff,
                payload: Bytes::from(s.payload),
            }
            .encode();
            inst.deliver(SimTime::ZERO, &frame);
        }
        assert_eq!(inst.stats.tcp_bytes, 7);
        // Response after the 2us service time: pure ACK may come first.
        inst.tick(SimTime::from_micros(3));
        let mut payload_seen = Vec::new();
        while let Some(f) = inst.pop_tx(SimTime::from_micros(3)) {
            let seg = TcpSegment::parse(&f).unwrap();
            assert_eq!(seg.src_port, 11211);
            assert_eq!(seg.dst_ip, Ipv4Addr::client(2));
            client.on_segment(SimTime::from_micros(3), seg.seq, seg.ack, &seg.payload);
            payload_seen.extend_from_slice(&seg.payload);
        }
        assert_eq!(client.take_received(), b"GET FOO".to_vec());
        assert_eq!(payload_seen, b"GET FOO".to_vec());
    }

    #[test]
    fn arp_request_answered_with_serving_mac() {
        let ip = Ipv4Addr::instance(4);
        let mut inst = Instance::new(4, ip, 0, AppKind::None);
        inst.set_mac(SimTime::ZERO, MacAddr::nic(2), false);
        let req = ArpPacket::request(MacAddr::client(9), Ipv4Addr::client(9), ip).encode();
        inst.deliver(SimTime::ZERO, &req);
        let frame = inst.pop_tx(SimTime::ZERO).unwrap();
        let reply = ArpPacket::parse(&frame).unwrap();
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.sender_mac, MacAddr::nic(2));
        assert_eq!(reply.sender_ip, ip);
        assert_eq!(reply.dst_mac, MacAddr::client(9));
        // Requests for other IPs are ignored.
        let other = ArpPacket::request(
            MacAddr::client(9),
            Ipv4Addr::client(9),
            Ipv4Addr::instance(5),
        )
        .encode();
        inst.deliver(SimTime::ZERO, &other);
        assert!(inst.pop_tx(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn next_event_tracks_pending_work() {
        let ip = Ipv4Addr::instance(1);
        let mut inst = Instance::new(1, ip, 0, AppKind::Udp(Box::new(Echo)));
        assert!(inst.next_event().is_none());
        inst.deliver(SimTime::ZERO, &udp_frame(ip, b"hi"));
        assert_eq!(inst.next_event(), Some(SimTime::from_micros(1)));
    }
}
