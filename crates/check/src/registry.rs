//! Rule registry: the single table every rule id, rationale, example, and
//! waiver form lives in.
//!
//! `oasis-check --explain <rule>` prints from here, the waiver parser
//! validates rule names against here, and README's rule list is asserted
//! against here in CI docs — one table, no drift.

/// Everything `--explain` knows about one rule.
pub struct RuleInfo {
    /// Rule id as used in findings and waiver comments.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the rule exists — the invariant it protects.
    pub rationale: &'static str,
    /// A minimal example violation.
    pub example: &'static str,
    /// How to waive it when the exception is deliberate.
    pub waiver: &'static str,
}

/// The full rule table, in stable display order: the original masking-pass
/// rules first, then the symbol-graph families.
pub const REGISTRY: &[RuleInfo] = &[
    RuleInfo {
        id: "no-panic",
        summary: "no unwrap/expect/panic family on runtime paths",
        rationale: "A crashed driver must degrade, not abort the whole simulated pod. \
                    Runtime crates (cxl, channel, core, storage, accel) return errors \
                    or park the device instead of panicking.",
        example: "fn apply(&mut self) { self.leases.get(&ip).unwrap(); }",
        waiver: "// oasis-check: allow(no-panic) <why this cannot fail at runtime>",
    },
    RuleInfo {
        id: "wire-assert",
        summary: "every WireDescriptor impl pairs with assert_wire_size!",
        rationale: "Wire messages are copied through the CXL window as raw 64-byte \
                    slots; a silently grown struct corrupts its neighbours. The \
                    compile-time size assertion must live in the same file as the impl.",
        example: "impl WireDescriptor for Foo { .. }  // no assert_wire_size!(Foo)",
        waiver: "// oasis-check: allow(wire-assert) <reason>",
    },
    RuleInfo {
        id: "pool-escape",
        summary: "no raw CxlPool poke/peek outside oasis-cxl",
        rationale: "All runtime traffic goes through HostCtx so the coherence model \
                    (and its sanitizer) observes every access. Raw pool bytes bypass \
                    the model entirely.",
        example: "fn f(pool: &mut CxlPool) { pool.poke(off, &bytes); }",
        waiver: "// oasis-check: allow(pool-escape) <reason>",
    },
    RuleInfo {
        id: "nondeterminism",
        summary: "no wall clock or seeded-random state in simulation code",
        rationale: "Experiments must be bit-reproducible: same trace in, same figure \
                    out. SystemTime/Instant::now, rand, and std HashMap/HashSet \
                    iteration order all break that.",
        example: "let started = Instant::now();",
        waiver: "// oasis-check: allow-file(nondeterminism) <reason> (whole file) or \
                 allow(...) per statement",
    },
    RuleInfo {
        id: "allow-comment",
        summary: "every #[allow(...)] carries a justification comment",
        rationale: "Suppressing a compiler or clippy lint is a decision; the reason \
                    must be visible at the suppression site, not in git archaeology. \
                    Malformed oasis-check waivers are reported under this rule too.",
        example: "#[allow(dead_code)]\nfn helper() {}",
        waiver: "write the justification comment on or directly above the attribute",
    },
    RuleInfo {
        id: "metric-name",
        summary: "metric name literals live only in their crate's metrics.rs",
        rationale: "Snapshot readers and figure generators join on metric names; a \
                    typo in a stray literal silently produces zeros. Names are \
                    registered once as consts and referenced everywhere else.",
        example: "snap.counter(\"core.net_fe_tx_packets\", 0)  // outside metrics.rs",
        waiver: "// oasis-check: allow(metric-name) <reason>",
    },
    RuleInfo {
        id: "thread-discipline",
        summary: "no unscoped thread::spawn; sim-crate shared state is waived state",
        rationale: "Worker pools go through the vendored crossbeam scoped helper so \
                    shards can borrow; every Mutex/Atomic in a simulation crate is \
                    coordination state and must say so — intra-shard hot paths stay \
                    lock-free.",
        example: "std::thread::spawn(move || pump(rx));",
        waiver: "// oasis-check: allow(thread-discipline) <what this coordinates>",
    },
    RuleInfo {
        id: "float-determinism",
        summary: "no f32/f64 arithmetic or formatting reachable from replicated \
                  state, metrics snapshots, or stranding integrals",
        rationale: "Replicated state machines, fleet counters, and the stranding \
                    integral are integer-only (parts-per-billion fixed point) so \
                    every replica and every thread count computes identical bytes. \
                    Float rounding is platform- and order-sensitive; one f64 in a \
                    replicated path breaks consistent_with_log and the Fig. 2/6/8 \
                    byte-identity gates. The rule walks the symbol graph: direct \
                    float sites in policed files, float-typed struct fields, and \
                    float arithmetic transitively reachable through same-workspace \
                    calls are all findings.",
        example: "fn apply(&mut self) { self.load = used as f64 / cap as f64; }",
        waiver: "// oasis-check: allow(float-determinism) <why this site cannot \
                 affect replicated bytes>",
    },
    RuleInfo {
        id: "schema-evolution",
        summary: "Command and WireDescriptor encodings are pinned by a golden \
                  registry; changes require a version bump",
        rationale: "AllocCommand/FleetCommand bytes are the Raft log and the replay \
                    wire format; WireDescriptor structs are the 64-byte CXL slots. \
                    Appending, reordering, or renaming a variant silently re-numbers \
                    discriminants and corrupts every persisted log. The analyzer \
                    pins variant names *in order* plus a schema-version const; both \
                    must change together with the golden registry in \
                    crates/check/src/policy.rs and the golden-bytes test.",
        example: "pub enum AllocCommand { RegisterNic {..}, NewVariant {..}, .. } \
                  // golden still pins the old order, version const unchanged",
        waiver: "// oasis-check: allow(schema-evolution) <reason> (prefer bumping \
                 the version and updating the registry)",
    },
    RuleInfo {
        id: "unchecked-epoch-arithmetic",
        summary: "+/* on epoch/timestamp/byte-integral u64/u128 in allocator and \
                  trace paths must be checked_/saturating_ (or waived)",
        rationale: "Epoch nanoseconds, byte-second integrals, and ppb counters are \
                    accumulated over billion-scale traces; a wrapping add corrupts \
                    a figure without crashing. In policed paths (core allocator, \
                    trace stranding integrals) plain `+`/`*` on such operands is a \
                    finding unless the expression already uses checked_add, \
                    saturating_add/mul, or wrapping_* deliberately.",
        example: "self.nic_acc += nic as u128 * dt;",
        waiver: "// oasis-check: allow(unchecked-epoch-arithmetic) <bound argument>",
    },
    RuleInfo {
        id: "cfg-pairing",
        summary: "every private #[cfg(feature = \"obs\"/\"sanitize\")] fn has its \
                  #[cfg(not(..))] inline stub, and vice versa",
        rationale: "Optional features compile out by pairing each gated fn with an \
                    empty #[inline(always)] stub so call sites never sprout their \
                    own cfg forests. A gated fn without its stub breaks the \
                    no-feature build; an orphaned stub is dead code that hides a \
                    deleted implementation. Pub gated fns are exempt — they are \
                    caller-gated by convention.",
        example: "#[cfg(feature = \"obs\")]\nfn note_dispatch(&mut self) { .. } \
                  // no #[cfg(not(feature = \"obs\"))] stub",
        waiver: "// oasis-check: allow(cfg-pairing) <why single-sided is correct>",
    },
    RuleInfo {
        id: "stale-waiver",
        summary: "a waiver whose rule no longer fires at its site is an error",
        rationale: "Waivers are precise suppressions, not decoration. When the code \
                    under a waiver is fixed or deleted, the waiver must go too — \
                    otherwise it silently licenses the next regression at that site.",
        example: "// oasis-check: allow(no-panic) lock poisoned only on panic\n\
                  let g = m.lock().unwrap_or_else(|p| p.into_inner()); // no unwrap()",
        waiver: "not waivable — delete the stale waiver instead",
    },
];

/// Look up a rule by id.
pub fn find(id: &str) -> Option<&'static RuleInfo> {
    REGISTRY.iter().find(|r| r.id == id)
}

/// Render one rule's explanation for `--explain`.
pub fn explain(r: &RuleInfo) -> String {
    fn wrap(s: &str) -> String {
        // Collapse the literal-continuation whitespace runs in the table.
        s.split_whitespace().collect::<Vec<_>>().join(" ")
    }
    format!(
        "{id}: {summary}\n\nWhy:\n  {why}\n\nExample violation:\n  {ex}\n\nWaiver:\n  {wv}\n",
        id = r.id,
        summary = wrap(r.summary),
        why = wrap(r.rationale),
        ex = r.example,
        wv = wrap(r.waiver),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_rules_const() {
        let ids: Vec<&str> = REGISTRY.iter().map(|r| r.id).collect();
        assert_eq!(ids, crate::RULES, "RULES and REGISTRY must stay in sync");
    }

    #[test]
    fn explain_renders_every_rule() {
        for r in REGISTRY {
            let text = explain(r);
            assert!(text.contains(r.id));
            assert!(text.contains("Why:"));
        }
        assert!(find("float-determinism").is_some());
        assert!(find("nope").is_none());
    }
}
