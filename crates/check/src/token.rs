//! Token pass: the masked source as a flat token stream.
//!
//! Runs over [`crate::lex::Lexed::masked`] text, so string and comment
//! contents are already gone and tokenization is purely structural.
//! Numbers are classified integer vs float — the distinction the
//! `float-determinism` rule is built on — and every token carries its
//! 1-indexed line for reporting.

/// One token of masked source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `f64`, `as`, `fn`, ...).
    Ident(String),
    /// Numeric literal; `float` is true for `1.5`, `1e9`, `2.0f32`, ...
    Num {
        /// Literal text as written (minus any masked parts — never).
        text: String,
        /// Float literal (decimal point, exponent, or f32/f64 suffix).
        float: bool,
    },
    /// Lifetime or loop label: `'a`, `'static`.
    Lifetime(String),
    /// Single punctuation character (compound operators arrive as
    /// consecutive tokens: `+=` is `+` then `=`).
    Punct(char),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-indexed line.
    pub line: usize,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Tokenize masked source. Unknown bytes are skipped.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let b = masked.as_bytes();
    let mut out = Vec::with_capacity(masked.len() / 4);
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(masked[start..i].to_string()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            // A number right after `.` is a tuple index (`x.0.1`): digits
            // only, never a float.
            if matches!(out.last(), Some(t) if t.is_punct('.')) {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Num {
                        text: masked[start..i].to_string(),
                        float: false,
                    },
                    line,
                });
                continue;
            }
            if c == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'o') | Some(b'b')) {
                // Radix literal: never a float; `b` here is safe because a
                // byte-string `b"`/`br` was already masked away.
                i += 2;
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // Decimal point: only when followed by a digit, so `0..9`
                // ranges and `x.0` tuple access stay integers.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    float = true;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                // Trailing `1.` (not `1..` and not `1.method()`).
                if !float
                    && i < b.len()
                    && b[i] == b'.'
                    && b.get(i + 1) != Some(&b'.')
                    && !b.get(i + 1).copied().is_some_and(is_ident_start)
                {
                    float = true;
                    i += 1;
                }
                // Exponent: `1e9`, `1.5e-3`.
                if i < b.len()
                    && (b[i] == b'e' || b[i] == b'E')
                    && b.get(i + 1).is_some_and(|&n| {
                        n.is_ascii_digit()
                            || ((n == b'+' || n == b'-')
                                && b.get(i + 2).is_some_and(|d| d.is_ascii_digit()))
                    })
                {
                    float = true;
                    i += 1;
                    if b[i] == b'+' || b[i] == b'-' {
                        i += 1;
                    }
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                // Type suffix: `1u64`, `2.5f32`, `3f64`.
                let suffix_start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let suffix = &masked[suffix_start..i];
                if suffix == "f32" || suffix == "f64" {
                    float = true;
                }
            }
            out.push(Token {
                tok: Tok::Num {
                    text: masked[start..i].to_string(),
                    float,
                },
                line,
            });
            continue;
        }
        if c == b'\'' {
            // Char literals were masked; what remains is a lifetime/label.
            let start = i;
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Lifetime(masked[start..i].to_string()),
                line,
            });
            continue;
        }
        out.push(Token {
            tok: Tok::Punct(c as char),
            line,
        });
        i += 1;
    }
    out
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Is this token exactly the punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Is this token a float literal?
    pub fn is_float_lit(&self) -> bool {
        matches!(self.tok, Tok::Num { float: true, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn floats_vs_integers() {
        let t = toks("let a = 1.5 + 2 * 1e9; let b = 0x1e9; let c = 2.0f32;");
        let floats: Vec<&Tok> = t
            .iter()
            .filter(|t| matches!(t, Tok::Num { float: true, .. }))
            .collect();
        assert_eq!(floats.len(), 3, "{floats:?}");
        assert!(t.contains(&Tok::Num {
            text: "0x1e9".into(),
            float: false
        }));
    }

    #[test]
    fn ranges_and_tuple_access_stay_integer() {
        for src in ["for i in 0..10 {}", "x.0", "x.0.1", "1..=9", "t.0.min(1)"] {
            assert!(
                !toks(src)
                    .iter()
                    .any(|t| matches!(t, Tok::Num { float: true, .. })),
                "{src}"
            );
        }
    }

    #[test]
    fn trailing_dot_float_and_method_on_literal() {
        assert!(toks("let x = 1.;")
            .iter()
            .any(|t| matches!(t, Tok::Num { float: true, .. })));
        assert!(!toks("let x = 1.max(2);")
            .iter()
            .any(|t| matches!(t, Tok::Num { float: true, .. })));
    }

    #[test]
    fn lifetimes_and_lines() {
        let t = tokenize("fn f<'a>(x: &'a u32) {}\nlet y = 1;");
        assert!(t.iter().any(|t| t.tok == Tok::Lifetime("'a".into())));
        let y = t.iter().find(|t| t.ident() == Some("y")).unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn suffixed_integers_stay_integer() {
        assert!(!toks("let x = 10u64 + 3usize;")
            .iter()
            .any(|t| matches!(t, Tok::Num { float: true, .. })));
    }
}
