//! Ratchet baseline: findings aggregated per (file, rule), serialized as
//! JSON, compared one-directionally.
//!
//! The committed `check_baseline.json` is the debt ledger: CI fails when
//! any (file, rule) count *exceeds* its baseline entry (new debt), and
//! also when a count drops below it without the baseline being refreshed
//! (`--update-baseline`) — the ratchet may only tighten, and it tightens
//! explicitly so a later regression back to the old count cannot hide.
//!
//! The parser below handles exactly the JSON this module writes (objects,
//! arrays, strings with escapes, non-negative integers) — the crate stays
//! dependency-free.

use crate::Finding;
use std::collections::BTreeMap;

/// Findings aggregated per (file, rule).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// (file, rule) → count, ordered for stable serialization.
    pub entries: BTreeMap<(String, String), usize>,
}

/// One ratchet violation.
#[derive(Debug, PartialEq, Eq)]
pub struct Delta {
    /// Workspace-relative file.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Baseline count.
    pub was: usize,
    /// Current count.
    pub now: usize,
}

/// Result of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Counts above baseline — new debt, always fatal.
    pub regressions: Vec<Delta>,
    /// Counts below baseline — requires `--update-baseline` to record.
    pub improvements: Vec<Delta>,
}

impl RatchetReport {
    /// Does this report demand a non-zero exit?
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty() && self.improvements.is_empty()
    }
}

impl Baseline {
    /// Aggregate findings into a baseline.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.file.clone(), f.rule.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Compare `current` findings against this baseline.
    pub fn compare(&self, current: &Baseline) -> RatchetReport {
        let mut report = RatchetReport::default();
        let mut keys: Vec<&(String, String)> =
            self.entries.keys().chain(current.entries.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let was = self.entries.get(key).copied().unwrap_or(0);
            let now = current.entries.get(key).copied().unwrap_or(0);
            let delta = Delta {
                file: key.0.clone(),
                rule: key.1.clone(),
                was,
                now,
            };
            if now > was {
                report.regressions.push(delta);
            } else if now < was {
                report.improvements.push(delta);
            }
        }
        report
    }

    /// Serialize to the committed JSON form (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": 1,\n  \"entries\": [");
        for (i, ((file, rule), count)) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{ \"file\": {}, \"rule\": {}, \"count\": {} }}",
                json_string(file),
                json_string(rule),
                count
            ));
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parse the JSON form written by [`Baseline::to_json`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = JsonValue::parse(text)?;
        let entries_val = value
            .get("entries")
            .ok_or_else(|| "baseline: missing \"entries\"".to_string())?;
        let JsonValue::Array(items) = entries_val else {
            return Err("baseline: \"entries\" is not an array".into());
        };
        let mut entries = BTreeMap::new();
        for item in items {
            let file = item
                .get("file")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "baseline entry: missing \"file\"".to_string())?;
            let rule = item
                .get("rule")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "baseline entry: missing \"rule\"".to_string())?;
            let count = item
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "baseline entry: missing \"count\"".to_string())?;
            entries.insert((file.to_string(), rule.to_string()), count as usize);
        }
        Ok(Baseline { entries })
    }
}

/// Escape `s` as a JSON string (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The minimal JSON value model the baseline format needs.
enum JsonValue {
    /// Object.
    Object(Vec<(String, JsonValue)>),
    /// Array.
    Array(Vec<JsonValue>),
    /// String.
    Str(String),
    /// Non-negative integer (the only number shape we write).
    Num(u64),
}

impl JsonValue {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<JsonValue, String> {
        let b = text.as_bytes();
        let mut i = 0usize;
        let v = Self::value(b, &mut i)?;
        Self::ws(b, &mut i);
        if i != b.len() {
            return Err(format!("baseline: trailing data at byte {i}"));
        }
        Ok(v)
    }

    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<JsonValue, String> {
        Self::ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                let mut pairs = Vec::new();
                loop {
                    Self::ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(JsonValue::Object(pairs));
                    }
                    let JsonValue::Str(key) = Self::value(b, i)? else {
                        return Err("baseline: object key is not a string".into());
                    };
                    Self::ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("baseline: expected ':' at byte {i}"));
                    }
                    *i += 1;
                    pairs.push((key, Self::value(b, i)?));
                    Self::ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {}
                        _ => return Err(format!("baseline: expected ',' or '}}' at byte {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                let mut items = Vec::new();
                loop {
                    Self::ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    items.push(Self::value(b, i)?);
                    Self::ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {}
                        _ => return Err(format!("baseline: expected ',' or ']' at byte {i}")),
                    }
                }
            }
            Some(b'"') => {
                *i += 1;
                let mut s = String::new();
                while let Some(&c) = b.get(*i) {
                    match c {
                        b'"' => {
                            *i += 1;
                            return Ok(JsonValue::Str(s));
                        }
                        b'\\' => {
                            *i += 1;
                            match b.get(*i) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b'r') => s.push('\r'),
                                Some(b't') => s.push('\t'),
                                Some(b'u') => {
                                    let hex = text_slice(b, *i + 1, 4)?;
                                    let code = u32::from_str_radix(hex, 16)
                                        .map_err(|e| format!("baseline: bad \\u escape: {e}"))?;
                                    s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                    *i += 4;
                                }
                                _ => return Err("baseline: bad escape".into()),
                            }
                            *i += 1;
                        }
                        _ => {
                            s.push(c as char);
                            *i += 1;
                        }
                    }
                }
                Err("baseline: unterminated string".into())
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *i;
                while *i < b.len() && b[*i].is_ascii_digit() {
                    *i += 1;
                }
                let n: u64 = std::str::from_utf8(&b[start..*i])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "baseline: bad number".to_string())?;
                Ok(JsonValue::Num(n))
            }
            _ => Err(format!("baseline: unexpected byte at {i}")),
        }
    }
}

fn text_slice(b: &[u8], at: usize, len: usize) -> Result<&str, String> {
    b.get(at..at + len)
        .and_then(|s| std::str::from_utf8(s).ok())
        .ok_or_else(|| "baseline: truncated escape".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str) -> Finding {
        Finding {
            file: file.into(),
            line: 1,
            rule,
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            finding("crates/a/src/x.rs", "no-panic"),
            finding("crates/a/src/x.rs", "no-panic"),
            finding("crates/b/src/\"y\".rs", "metric-name"),
        ];
        let base = Baseline::from_findings(&findings);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(base, parsed);
        assert_eq!(
            parsed.entries[&("crates/a/src/x.rs".into(), "no-panic".into())],
            2
        );
    }

    #[test]
    fn empty_roundtrip() {
        let base = Baseline::from_findings(&[]);
        assert_eq!(Baseline::parse(&base.to_json()).unwrap(), base);
    }

    #[test]
    fn ratchet_directions() {
        let base = Baseline::from_findings(&[
            finding("a.rs", "no-panic"),
            finding("a.rs", "no-panic"),
            finding("b.rs", "metric-name"),
        ]);
        // One no-panic fixed, one brand-new rule fired in c.rs.
        let current = Baseline::from_findings(&[
            finding("a.rs", "no-panic"),
            finding("b.rs", "metric-name"),
            finding("c.rs", "float-determinism"),
        ]);
        let report = base.compare(&current);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].file, "c.rs");
        assert_eq!(report.regressions[0].now, 1);
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].file, "a.rs");
        assert!(!report.is_clean());
        assert!(base.compare(&base).is_clean());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"schema\": 1}").is_err());
        assert!(Baseline::parse("{\"entries\": [{\"file\": \"x\"}]}").is_err());
    }
}
