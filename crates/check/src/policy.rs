//! Policy tables: which paths each rule family polices and the golden
//! schema registry the `schema-evolution` rule pins encodings against.
//!
//! Everything here is deliberate configuration, reviewed like code: adding
//! a file to a policed set tightens the build, and editing a golden entry
//! is the explicit act that accompanies a schema version bump.

/// Path fragments (workspace-relative) whose files are float-policed:
/// replicated state machines, the fleet ledger, metrics snapshots, and the
/// integer stranding integral. A file is policed when its `rel_path`
/// contains any of these fragments.
pub const FLOAT_POLICED: &[&str] = &[
    "core/src/allocator/",
    "core/src/fleet.rs",
    "raft/src/",
    "obs/src/snapshot.rs",
    "obs/src/sink.rs",
    "trace/src/stranding.rs",
];

/// Path fragments policed by `unchecked-epoch-arithmetic`: the allocator
/// control plane (epoch-stamped leases, byte-second spill accounting) and
/// the fleet stranding integral.
pub const EPOCH_POLICED: &[&str] = &["core/src/allocator/", "trace/src/stranding.rs"];

/// Identifier shapes treated as epoch/timestamp/byte-integral operands.
pub fn is_epoch_ident(name: &str) -> bool {
    // Byte-order conversions (`from_le_bytes`, `to_be_bytes`, ...) end in
    // `_bytes` but operate on fixed-width codec offsets, not integrals.
    if name.ends_with("le_bytes") || name.ends_with("be_bytes") || name.ends_with("ne_bytes") {
        return false;
    }
    name.ends_with("_ns")
        || name.ends_with("_acc")
        || name.ends_with("_bytes")
        || name.ends_with("_ppb")
        || name.ends_with("_mbps")
        || name == "at"
        || name == "dt"
        || name == "epoch"
        || name == "now"
        || name.contains("epoch")
        || name.contains("stamp")
}

/// Features whose gated items follow the paired-inline-stub convention.
pub const PAIRED_FEATURES: &[&str] = &["obs", "sanitize"];

/// Is `rel_path` inside any of the given policed fragments?
pub fn policed(rel_path: &str, fragments: &[&str]) -> bool {
    fragments.iter().any(|f| rel_path.contains(f))
}

/// Callee names too ubiquitous to resolve through the name-based call
/// graph — resolving `new` or `len` across the workspace would connect
/// everything to everything.
pub const CALL_IGNORE: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "next",
    "fmt",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "drain",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "sort",
    "min",
    "max",
    "abs",
    "take",
    "write",
    "read",
    "send",
    "recv",
    "tick",
    "apply",
    "encode",
    "decode",
    "eq",
    "cmp",
    "hash",
    "drop",
    "index",
    "reset",
    "init",
    "run",
    "start",
    "stop",
    "name",
    "id",
    "kind",
    "value",
    "set",
];

/// One pinned enum schema: the file that declares it, its variant names in
/// declaration order, and the version const that must accompany any change.
pub struct EnumGolden {
    /// Workspace-relative path suffix of the declaring file.
    pub file: &'static str,
    /// Enum name.
    pub enum_name: &'static str,
    /// Version const that must exist in the same file...
    pub version_const: &'static str,
    /// ...with exactly this literal value.
    pub version: &'static str,
    /// Variant names, in declaration (= discriminant) order.
    pub variants: &'static [&'static str],
}

/// The pinned command schemas. Discriminant bytes are assigned in variant
/// order by the hand-rolled encoders, so order *is* the wire format.
pub const ENUM_GOLDENS: &[EnumGolden] = &[
    EnumGolden {
        file: "core/src/allocator/command.rs",
        enum_name: "AllocCommand",
        version_const: "ALLOC_SCHEMA_VERSION",
        version: "1",
        variants: &[
            "RegisterNic",
            "Assign",
            "Unassign",
            "MarkFailed",
            "MarkRepaired",
            "RegisterSsd",
            "AssignVolume",
            "ReleaseVolumes",
            "MarkHostFailed",
            "MarkHostRestarted",
            "RegisterAccel",
        ],
    },
    EnumGolden {
        file: "core/src/allocator/command.rs",
        enum_name: "FleetCommand",
        version_const: "FLEET_SCHEMA_VERSION",
        version: "2",
        variants: &[
            "RegisterPod",
            "AddLink",
            "CreateInstance",
            "ResizeInstance",
            "KillInstance",
            "QueryFleetState",
            "MigrateInstance",
            "FinishMigration",
        ],
    },
    // TransferPath rides inside MigrateInstance's wire encoding, so its
    // variant order is pinned to the same fleet schema version.
    EnumGolden {
        file: "core/src/allocator/command.rs",
        enum_name: "TransferPath",
        version_const: "FLEET_SCHEMA_VERSION",
        version: "2",
        variants: &["Cxl", "Nic"],
    },
    // Snapshot container: section tags are assigned in variant order, so
    // the enum's shape is the on-disk checkpoint format (DESIGN.md §15).
    EnumGolden {
        file: "core/src/snapshot.rs",
        enum_name: "SnapshotSection",
        version_const: "SNAPSHOT_SCHEMA_VERSION",
        version: "2",
        variants: &["Meta", "Engine", "FleetState", "ReplayCursor"],
    },
];

/// The pinned `WireDescriptor` impl set: every 64-byte CXL slot type, and
/// the one file allowed to declare them. A new impl (anywhere) or a missing
/// impl is a `schema-evolution` finding until this registry and the
/// golden-bytes test are updated together.
pub const WIRE_GOLDEN_TYPES: &[&str] = &[
    "NetMsg",
    "NvmeCommand",
    "NvmeCompletion",
    "AccelCommand",
    "AccelCompletion",
];

/// The file `WireDescriptor` impls are pinned to.
pub const WIRE_GOLDEN_FILE: &str = "core/src/engine.rs";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policed_matching() {
        assert!(policed("crates/core/src/allocator/fleet.rs", FLOAT_POLICED));
        assert!(policed("crates/trace/src/stranding.rs", FLOAT_POLICED));
        assert!(!policed(
            "crates/trace/src/stranding_sweep.rs",
            FLOAT_POLICED
        ));
        assert!(!policed("crates/core/src/pod.rs", FLOAT_POLICED));
        assert!(policed(
            "crates/core/src/allocator/service.rs",
            EPOCH_POLICED
        ));
    }

    #[test]
    fn epoch_ident_shapes() {
        for n in [
            "from_ns",
            "nic_acc",
            "spill_bytes",
            "frac_ppb",
            "at",
            "dt",
            "epoch_of",
        ] {
            assert!(is_epoch_ident(n), "{n}");
        }
        for n in [
            "pod",
            "hosts",
            "vcpus",
            "ip",
            "nic",
            "from_le_bytes",
            "to_be_bytes",
        ] {
            assert!(!is_epoch_ident(n), "{n}");
        }
    }
}
