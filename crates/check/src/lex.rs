//! Lexical pass: mask comments/strings, collect comment text per line.
//!
//! Everything structural (the token pass, the symbol graph, every rule)
//! runs over the *masked* text this module produces, so patterns inside
//! strings or comments can never trigger (or suppress) a rule. The inverse
//! extraction — string literal *contents* with their lines — feeds the
//! rules that police what literals say (metric names, cfg feature names,
//! float format specs).

use std::collections::BTreeMap;

/// The source with every comment and string-literal character replaced by a
/// space (newlines preserved), plus the comment text found on each line.
pub struct Lexed {
    /// Masked source, byte-for-byte the same shape as the input.
    pub masked: String,
    /// Comment text per 1-indexed line (concatenated if several).
    pub comments: BTreeMap<usize, String>,
}

/// Mask comments and string/char literals out of `src`.
pub fn lex(src: &str) -> Lexed {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    let mut st = St::Code;
    let mut line = 1usize;
    let mut i = 0usize;
    let push_comment = |comments: &mut BTreeMap<usize, String>, line: usize, c: u8| {
        comments.entry(line).or_default().push(c as char);
    };
    while i < b.len() {
        let c = b[i];
        let nl = c == b'\n';
        match st {
            St::Code => match c {
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    st = St::Line;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    st = St::Block(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'"' => {
                    st = St::Str;
                    out.push(b' ');
                }
                b'r' | b'b'
                    if {
                        // r"...", r#"..."#, b"...", br#"..."# raw/byte strings.
                        let mut j = i + 1;
                        if c == b'b' && b.get(j) == Some(&b'r') {
                            j += 1;
                        }
                        let mut h = 0u32;
                        while b.get(j) == Some(&b'#') {
                            h += 1;
                            j += 1;
                        }
                        b.get(j) == Some(&b'"')
                            && (c != b'b' || h > 0 || b[i + 1] == b'"' || b[i + 1] == b'r')
                    } =>
                {
                    // Re-scan to find hash count and the opening quote.
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut h = 0u32;
                    while b.get(j) == Some(&b'#') {
                        h += 1;
                        j += 1;
                    }
                    // Emit the prefix as spaces, land on the quote.
                    out.extend(std::iter::repeat_n(b' ', j - i + 1));
                    i = j + 1;
                    st = if h > 0 || b[j] == b'"' {
                        St::RawStr(h)
                    } else {
                        St::Code
                    };
                    continue;
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal is '\...' or 'x'
                    // followed by a closing quote.
                    let is_char = match b.get(i + 1) {
                        Some(b'\\') => true,
                        Some(_) => b.get(i + 2) == Some(&b'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                        out.push(b' ');
                    } else {
                        out.push(c);
                    }
                }
                _ => out.push(c),
            },
            St::Line => {
                if nl {
                    st = St::Code;
                    out.push(c);
                } else {
                    push_comment(&mut comments, line, c);
                    out.push(b' ');
                }
            }
            St::Block(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if nl {
                    out.push(c);
                } else {
                    push_comment(&mut comments, line, c);
                    out.push(b' ');
                }
            }
            St::Str => match c {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if b.get(i - 1) == Some(&b'\n') {
                        line += 1;
                    }
                    continue;
                }
                b'"' => {
                    st = St::Code;
                    out.push(b' ');
                }
                _ => out.push(if nl { c } else { b' ' }),
            },
            St::RawStr(h) => {
                if c == b'"' {
                    let closes = (1..=h as usize).all(|k| b.get(i + k) == Some(&b'#'));
                    if closes {
                        out.extend(std::iter::repeat_n(b' ', h as usize + 1));
                        i += 1 + h as usize;
                        st = St::Code;
                        continue;
                    }
                }
                out.push(if nl { c } else { b' ' });
            }
            St::Char => match c {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'\'' => {
                    st = St::Code;
                    out.push(b' ');
                }
                _ => out.push(if nl { c } else { b' ' }),
            },
        }
        if nl {
            line += 1;
        }
        i += 1;
    }
    Lexed {
        masked: String::from_utf8_lossy(&out).into_owned(),
        comments,
    }
}

/// Extract ordinary and raw string literal contents from `src` with their
/// 1-indexed starting lines. The inverse concern of [`lex`]: comments are
/// skipped, literal *contents* are kept. Escape sequences are passed
/// through raw — a literal containing one can never look like a metric
/// name or a feature name, which is all this feeds.
pub fn string_literals(src: &str) -> Vec<(usize, String)> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b = src.as_bytes();
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut cur = String::new();
    let mut cur_line = 1usize;
    let mut st = St::Code;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => match c {
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    st = St::Line;
                    i += 2;
                    continue;
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    st = St::Block(1);
                    i += 2;
                    continue;
                }
                b'"' => {
                    st = St::Str;
                    cur.clear();
                    cur_line = line;
                }
                b'r' | b'b' => {
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut h = 0u32;
                    while b.get(j) == Some(&b'#') {
                        h += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') && (c != b'b' || h > 0 || b[i + 1] != b'\'') {
                        st = St::RawStr(h);
                        cur.clear();
                        cur_line = line;
                        i = j + 1;
                        continue;
                    }
                }
                b'\'' => {
                    let is_char = match b.get(i + 1) {
                        Some(b'\\') => true,
                        Some(_) => b.get(i + 2) == Some(&b'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                    }
                }
                _ => {}
            },
            St::Line => {
                if c == b'\n' {
                    st = St::Code;
                }
            }
            St::Block(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                    continue;
                }
            }
            St::Str => match c {
                b'\\' => {
                    cur.push('\\');
                    if let Some(&e) = b.get(i + 1) {
                        cur.push(e as char);
                        if e == b'\n' {
                            line += 1;
                        }
                    }
                    i += 2;
                    continue;
                }
                b'"' => {
                    out.push((cur_line, std::mem::take(&mut cur)));
                    st = St::Code;
                }
                _ => cur.push(c as char),
            },
            St::RawStr(h) => {
                if c == b'"' && (1..=h as usize).all(|k| b.get(i + k) == Some(&b'#')) {
                    out.push((cur_line, std::mem::take(&mut cur)));
                    i += 1 + h as usize;
                    st = St::Code;
                    continue;
                }
                cur.push(c as char);
            }
            St::Char => match c {
                b'\\' => {
                    i += 2;
                    continue;
                }
                b'\'' => st = St::Code,
                _ => {}
            },
        }
        if c == b'\n' {
            line += 1;
        }
        i += 1;
    }
    out
}

/// 1-indexed line ranges (inclusive) covered by `#[cfg(test)]` items,
/// found by brace matching from each attribute.
pub fn cfg_test_ranges(masked: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let bytes = masked.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = masked[search..].find("#[cfg(test)]") {
        let start = search + pos;
        search = start + 1;
        let start_line = line_of(masked, start);
        // Scan forward to the item's opening brace or terminating
        // semicolon, skipping further attributes and the item header.
        let mut j = start + "#[cfg(test)]".len();
        let mut end_line = start_line;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while k < bytes.len() && depth > 0 {
                        match bytes[k] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end_line = line_of(masked, k.saturating_sub(1));
                    break;
                }
                b';' => {
                    end_line = line_of(masked, j);
                    break;
                }
                _ => j += 1,
            }
        }
        ranges.push((start_line, end_line));
    }
    ranges
}

/// 1-indexed line of the byte at `byte_pos`.
pub fn line_of(s: &str, byte_pos: usize) -> usize {
    s.as_bytes()[..byte_pos.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Is `line` inside any of the (inclusive) `ranges`?
pub fn in_ranges(line: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}
