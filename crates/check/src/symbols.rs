//! Symbol pass: a per-file item/use graph over the token stream.
//!
//! A lightweight recursive-descent walk (no syn, no external deps) that
//! extracts the items the rule families reason about:
//!
//! - functions, with their `#[cfg(feature = ...)]` gate, visibility,
//!   callee-name set (the use edges of the call graph), and every float
//!   site (f32/f64 tokens, float literals, `{:.N}` format specs) in the
//!   signature or body;
//! - enums with their variant names *in declaration order* (the
//!   `schema-evolution` contract);
//! - consts with literal values (schema version pins);
//! - `impl Trait for Type` sites (the `WireDescriptor` registry);
//! - structs with float-typed fields.
//!
//! The walk recurses into `mod`/`impl`/`trait` bodies so nested items are
//! seen; function bodies are scanned as leaves. Items whose header line
//! falls in a `#[cfg(test)]` range, and files named `*tests.rs` (included
//! via `#[cfg(test)] mod ...;` from a sibling), are marked test-only so
//! runtime rules skip them.

use crate::lex::{in_ranges, Lexed};
use crate::token::{tokenize, Tok, Token};

/// A `#[cfg(feature = "...")]` / `#[cfg(not(feature = "..."))]` gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgGate {
    /// Feature name (from the string literal on the attribute line).
    pub feature: String,
    /// True for the `not(...)` form — the inline-stub side.
    pub not: bool,
}

/// One float-typed site, for the `float-determinism` rule.
#[derive(Clone, Debug)]
pub struct FloatSite {
    /// 1-indexed line.
    pub line: usize,
    /// What was found ("f64 token", "float literal", "float format spec").
    pub what: String,
}

/// A function item.
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Last line of the body (== `line` for bodyless trait methods).
    pub end_line: usize,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Header line falls inside a `#[cfg(test)]` range.
    pub in_tests: bool,
    /// Feature gate, when the item carries one.
    pub gate: Option<CfgGate>,
    /// Callee names referenced as `name(...)` in the body, sorted, deduped.
    pub calls: Vec<String>,
    /// Float sites in signature or body.
    pub floats: Vec<FloatSite>,
}

/// An enum item with ordered variants.
#[derive(Clone, Debug)]
pub struct EnumSym {
    /// Enum name.
    pub name: String,
    /// 1-indexed line.
    pub line: usize,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Inside a `#[cfg(test)]` range.
    pub in_tests: bool,
}

/// A const (or associated const) with its literal initializer, if any.
#[derive(Clone, Debug)]
pub struct ConstSym {
    /// Const name.
    pub name: String,
    /// 1-indexed line.
    pub line: usize,
    /// First literal token text of the initializer (e.g. `"2"`).
    pub value: Option<String>,
}

/// An `impl [Trait for] Type` site.
#[derive(Clone, Debug)]
pub struct ImplSym {
    /// Trait name (last path segment), when this is a trait impl.
    pub trait_name: Option<String>,
    /// Implementing type (last path segment).
    pub type_name: String,
    /// 1-indexed line.
    pub line: usize,
}

/// A struct item with any float-typed fields.
#[derive(Clone, Debug)]
pub struct StructSym {
    /// Struct name.
    pub name: String,
    /// 1-indexed line.
    pub line: usize,
    /// Float-typed field sites.
    pub floats: Vec<FloatSite>,
    /// Inside a `#[cfg(test)]` range.
    pub in_tests: bool,
}

/// Everything the symbol pass extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileSymbols {
    /// Functions (including methods in impls and trait defaults).
    pub fns: Vec<FnSym>,
    /// Enums.
    pub enums: Vec<EnumSym>,
    /// Consts.
    pub consts: Vec<ConstSym>,
    /// Impl sites.
    pub impls: Vec<ImplSym>,
    /// Structs.
    pub structs: Vec<StructSym>,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "in", "as", "let", "else",
    "unsafe", "break", "continue", "where", "impl", "dyn",
];

/// Extract symbols from one file. `tests` are the `#[cfg(test)]` line
/// ranges from the lexical pass; `literals` the (line, content) string
/// literals from the raw source (feature names live in them).
pub fn extract(
    lexed: &Lexed,
    tests: &[(usize, usize)],
    literals: &[(usize, String)],
) -> FileSymbols {
    let toks = tokenize(&lexed.masked);
    let mut out = FileSymbols::default();
    let mut w = Walker {
        toks: &toks,
        tests,
        literals,
        out: &mut out,
    };
    let end = toks.len();
    w.items(0, end);
    out
}

struct Walker<'a> {
    toks: &'a [Token],
    tests: &'a [(usize, usize)],
    literals: &'a [(usize, String)],
    out: &'a mut FileSymbols,
}

impl<'a> Walker<'a> {
    /// Index just past the group closed by the matching delimiter for the
    /// opener at `open` (`{`/`(`/`[`), counting only that delimiter kind.
    /// `<`/`>` are matched with a guard against `->` arrows.
    fn skip_group(&self, open: usize) -> usize {
        let (o, c) = match self.toks[open].tok {
            Tok::Punct('{') => ('{', '}'),
            Tok::Punct('(') => ('(', ')'),
            Tok::Punct('[') => ('[', ']'),
            Tok::Punct('<') => ('<', '>'),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            if self.toks[i].is_punct(o) && (o != '<' || !self.prev_is(i, '-')) {
                depth += 1;
            } else if self.toks[i].is_punct(c) && (c != '>' || !self.prev_is(i, '-')) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.toks.len()
    }

    fn prev_is(&self, i: usize, p: char) -> bool {
        i > 0 && self.toks[i - 1].is_punct(p)
    }

    /// First string literal on `line`, if any.
    fn literal_on(&self, line: usize) -> Option<&str> {
        self.literals
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|(_, s)| s.as_str())
    }

    /// Walk `[i, end)` at item level.
    fn items(&mut self, mut i: usize, end: usize) {
        let mut gate: Option<CfgGate> = None;
        let mut is_pub = false;
        while i < end {
            let t = &self.toks[i];
            match &t.tok {
                Tok::Punct('#') => {
                    // Attribute: `#[...]` or `#![...]`.
                    let mut j = i + 1;
                    if j < end && self.toks[j].is_punct('!') {
                        j += 1;
                    }
                    if j < end && self.toks[j].is_punct('[') {
                        let close = self.skip_group(j);
                        if let Some(g) = self.parse_cfg_gate(j + 1, close - 1) {
                            gate = Some(g);
                        }
                        i = close;
                    } else {
                        i += 1;
                    }
                }
                Tok::Ident(k) if k == "pub" => {
                    is_pub = true;
                    i += 1;
                    if i < end && self.toks[i].is_punct('(') {
                        i = self.skip_group(i); // pub(crate) etc.
                    }
                }
                Tok::Ident(k) if k == "fn" => {
                    i = self.item_fn(i, end, is_pub, gate.take());
                    is_pub = false;
                }
                Tok::Ident(k) if k == "enum" => {
                    i = self.item_enum(i, end);
                    gate = None;
                    is_pub = false;
                }
                Tok::Ident(k) if k == "struct" => {
                    i = self.item_struct(i, end);
                    gate = None;
                    is_pub = false;
                }
                Tok::Ident(k) if (k == "const" || k == "static") => {
                    i = self.item_const(i, end);
                    gate = None;
                    is_pub = false;
                }
                Tok::Ident(k) if k == "impl" => {
                    i = self.item_impl(i, end);
                    gate = None;
                    is_pub = false;
                }
                Tok::Ident(k) if (k == "mod" || k == "trait") => {
                    // Recurse into the body at item level.
                    let mut j = i + 1;
                    while j < end && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
                        j += 1;
                    }
                    if j < end && self.toks[j].is_punct('{') {
                        let close = self.skip_group(j);
                        self.items(j + 1, close - 1);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                    gate = None;
                    is_pub = false;
                }
                Tok::Ident(k) if k == "use" => {
                    while i < end && !self.toks[i].is_punct(';') {
                        i += 1;
                    }
                    i += 1;
                    gate = None;
                    is_pub = false;
                }
                Tok::Ident(k)
                    if matches!(k.as_str(), "unsafe" | "extern" | "async" | "default") =>
                {
                    i += 1; // modifier; keep pending attrs/visibility
                }
                _ => {
                    i += 1;
                    gate = None;
                    is_pub = false;
                }
            }
        }
    }

    /// Parse attribute tokens `[a, b)` (inside the brackets) as a cfg gate.
    fn parse_cfg_gate(&self, a: usize, b: usize) -> Option<CfgGate> {
        let idents: Vec<&str> = self.toks[a..b].iter().filter_map(|t| t.ident()).collect();
        if idents.first() != Some(&"cfg") {
            return None;
        }
        let line = self.toks.get(a)?.line;
        match idents.get(1) {
            Some(&"feature") => Some(CfgGate {
                feature: self.literal_on(line)?.to_string(),
                not: false,
            }),
            Some(&"not") if idents.get(2) == Some(&"feature") => Some(CfgGate {
                feature: self.literal_on(line)?.to_string(),
                not: true,
            }),
            _ => None,
        }
    }

    fn item_fn(&mut self, at: usize, end: usize, is_pub: bool, gate: Option<CfgGate>) -> usize {
        let line = self.toks[at].line;
        let name = match self.toks.get(at + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return at + 1,
        };
        // Scan the header: skip the generics and the parameter group, stop
        // at the body `{` or a terminating `;` (trait method declaration).
        let mut j = at + 2;
        let mut sig_floats: Vec<FloatSite> = Vec::new();
        let mut body: Option<(usize, usize)> = None;
        while j < end {
            match &self.toks[j].tok {
                Tok::Punct('<') if !self.prev_is(j, '-') => j = self.skip_group(j),
                Tok::Punct('(') | Tok::Punct('[') => {
                    let close = self.skip_group(j);
                    self.scan_floats(j, close, &mut sig_floats);
                    j = close;
                }
                Tok::Punct('{') => {
                    body = Some((j, self.skip_group(j)));
                    break;
                }
                Tok::Punct(';') => break,
                Tok::Ident(s) if s == "f32" || s == "f64" => {
                    sig_floats.push(FloatSite {
                        line: self.toks[j].line,
                        what: format!("{s} in fn signature"),
                    });
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let mut calls: Vec<String> = Vec::new();
        let mut floats = sig_floats;
        let mut end_line = line;
        if let Some((open, close)) = body {
            end_line = self.toks[close.saturating_sub(1).min(self.toks.len() - 1)].line;
            self.scan_floats(open, close, &mut floats);
            for k in open + 1..close.saturating_sub(1) {
                let Some(callee) = self.toks[k].ident() else {
                    continue;
                };
                if !self.toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                if CALL_KEYWORDS.contains(&callee) {
                    continue;
                }
                // `fn name(` is a nested definition, `name!(` never occurs
                // (the `!` sits between), but `#[cfg(` attrs do: skip when
                // preceded by `fn`, `[`, or another attr shape.
                if k > 0 && (self.toks[k - 1].ident() == Some("fn") || self.prev_is(k, '[')) {
                    continue;
                }
                calls.push(callee.to_string());
            }
            // Float format specs in literals within the body's line span.
            let first = self.toks[open].line;
            for &(l, ref s) in self.literals {
                if l >= first && l <= end_line && s.contains("{:.") {
                    floats.push(FloatSite {
                        line: l,
                        what: "float format spec in literal".into(),
                    });
                }
            }
        }
        calls.sort();
        calls.dedup();
        floats.sort_by_key(|f| f.line);
        self.out.fns.push(FnSym {
            name,
            line,
            end_line,
            is_pub,
            in_tests: in_ranges(line, self.tests),
            gate,
            calls,
            floats,
        });
        match body {
            Some((_, close)) => close,
            None => j + 1,
        }
    }

    fn scan_floats(&self, a: usize, b: usize, out: &mut Vec<FloatSite>) {
        for t in &self.toks[a..b.min(self.toks.len())] {
            match &t.tok {
                Tok::Ident(s) if s == "f32" || s == "f64" => out.push(FloatSite {
                    line: t.line,
                    what: format!("{s} type/cast"),
                }),
                Tok::Num { float: true, text } => out.push(FloatSite {
                    line: t.line,
                    what: format!("float literal {text}"),
                }),
                _ => {}
            }
        }
    }

    fn item_enum(&mut self, at: usize, end: usize) -> usize {
        let line = self.toks[at].line;
        let name = match self.toks.get(at + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return at + 1,
        };
        let mut j = at + 2;
        while j < end && !self.toks[j].is_punct('{') {
            if self.toks[j].is_punct('<') && !self.prev_is(j, '-') {
                j = self.skip_group(j);
            } else if self.toks[j].is_punct(';') {
                return j + 1;
            } else {
                j += 1;
            }
        }
        if j >= end {
            return end;
        }
        let close = self.skip_group(j);
        let mut variants = Vec::new();
        let mut k = j + 1;
        while k + 1 < close {
            match &self.toks[k].tok {
                Tok::Punct('#') => {
                    // Variant attribute.
                    let mut m = k + 1;
                    if m < close && self.toks[m].is_punct('[') {
                        m = self.skip_group(m);
                    }
                    k = m;
                }
                Tok::Ident(v) => {
                    variants.push(v.clone());
                    // Skip payload / discriminant to the next top-level `,`.
                    let mut m = k + 1;
                    while m + 1 < close {
                        match self.toks[m].tok {
                            Tok::Punct('(') | Tok::Punct('{') | Tok::Punct('[') => {
                                m = self.skip_group(m)
                            }
                            Tok::Punct(',') => break,
                            _ => m += 1,
                        }
                    }
                    k = m + 1;
                }
                _ => k += 1,
            }
        }
        self.out.enums.push(EnumSym {
            name,
            line,
            variants,
            in_tests: in_ranges(line, self.tests),
        });
        close
    }

    fn item_struct(&mut self, at: usize, end: usize) -> usize {
        let line = self.toks[at].line;
        let name = match self.toks.get(at + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return at + 1,
        };
        let mut j = at + 2;
        let mut floats = Vec::new();
        while j < end {
            match self.toks[j].tok {
                Tok::Punct('<') if !self.prev_is(j, '-') => j = self.skip_group(j),
                Tok::Punct('(') | Tok::Punct('{') => {
                    let close = self.skip_group(j);
                    self.scan_floats(j, close, &mut floats);
                    j = close;
                    if self.toks.get(j).is_some_and(|t| t.is_punct(';')) {
                        j += 1; // tuple struct
                    }
                    break;
                }
                Tok::Punct(';') => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        self.out.structs.push(StructSym {
            name,
            line,
            floats,
            in_tests: in_ranges(line, self.tests),
        });
        j
    }

    fn item_const(&mut self, at: usize, end: usize) -> usize {
        let line = self.toks[at].line;
        // `const fn` is a function, `const _` an anonymous assertion site.
        if self.toks.get(at + 1).and_then(|t| t.ident()) == Some("fn") {
            return at + 1;
        }
        let name = match self.toks.get(at + 1).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return at + 1,
        };
        let mut j = at + 2;
        let mut value = None;
        let mut seen_eq = false;
        while j < end && !self.toks[j].is_punct(';') {
            match &self.toks[j].tok {
                Tok::Punct('=') => seen_eq = true,
                Tok::Num { text, .. } if seen_eq && value.is_none() => {
                    value = Some(text.clone());
                }
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => {
                    j = self.skip_group(j);
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        self.out.consts.push(ConstSym { name, line, value });
        j + 1
    }

    fn item_impl(&mut self, at: usize, end: usize) -> usize {
        let line = self.toks[at].line;
        let mut j = at + 1;
        if j < end && self.toks[j].is_punct('<') {
            j = self.skip_group(j);
        }
        // Collect the path up to `for`, `{`, or `where`.
        let mut first_path: Vec<String> = Vec::new();
        let mut second_path: Vec<String> = Vec::new();
        let mut cur = &mut first_path;
        while j < end {
            match &self.toks[j].tok {
                Tok::Ident(s) if s == "for" => {
                    cur = &mut second_path;
                    j += 1;
                }
                Tok::Ident(s) if s == "where" => break,
                Tok::Ident(s) => {
                    cur.push(s.clone());
                    j += 1;
                }
                Tok::Punct('<') if !self.prev_is(j, '-') => j = self.skip_group(j),
                Tok::Punct('{') => break,
                Tok::Punct(';') => return j + 1,
                _ => j += 1,
            }
        }
        let (trait_name, type_name) = if second_path.is_empty() {
            (None, first_path.last().cloned().unwrap_or_default())
        } else {
            (
                first_path.last().cloned(),
                second_path.last().cloned().unwrap_or_default(),
            )
        };
        if !type_name.is_empty() {
            self.out.impls.push(ImplSym {
                trait_name,
                type_name,
                line,
            });
        }
        if j < end && self.toks[j].is_punct('{') {
            let close = self.skip_group(j);
            self.items(j + 1, close - 1);
            return close;
        }
        j + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{cfg_test_ranges, lex, string_literals};

    fn sym(src: &str) -> FileSymbols {
        let lexed = lex(src);
        let tests = cfg_test_ranges(&lexed.masked);
        let lits = string_literals(src);
        extract(&lexed, &tests, &lits)
    }

    #[test]
    fn fn_calls_and_floats() {
        let s = sym("pub fn a(x: u64) -> u64 { helper(x) + other::thing(x) }\n\
             fn b(r: f64) { let y = 1.5 * r; fmt(\"{:.1}\", y); }\n");
        assert_eq!(s.fns.len(), 2);
        assert!(s.fns[0].is_pub && !s.fns[1].is_pub);
        assert_eq!(s.fns[0].calls, vec!["helper", "thing"]);
        assert!(s.fns[0].floats.is_empty());
        let what: Vec<&str> = s.fns[1].floats.iter().map(|f| f.what.as_str()).collect();
        assert!(what.iter().any(|w| w.contains("f64")), "{what:?}");
        assert!(what.iter().any(|w| w.contains("1.5")), "{what:?}");
        assert!(what.iter().any(|w| w.contains("format spec")), "{what:?}");
    }

    #[test]
    fn enum_variant_order() {
        let s = sym(
            "pub enum Cmd {\n    #[doc = \"x\"]\n    A { x: u32 },\n    B(u64, u8),\n    C,\n}\n",
        );
        assert_eq!(s.enums.len(), 1);
        assert_eq!(s.enums[0].variants, vec!["A", "B", "C"]);
    }

    #[test]
    fn cfg_gates_attach_to_fns() {
        let s = sym("#[cfg(feature = \"obs\")]\nfn real() { x(); }\n\
             #[cfg(not(feature = \"obs\"))]\n#[inline(always)]\nfn real() {}\n\
             fn ungated() {}\n");
        assert_eq!(s.fns.len(), 3);
        assert_eq!(
            s.fns[0].gate,
            Some(CfgGate {
                feature: "obs".into(),
                not: false
            })
        );
        assert_eq!(
            s.fns[1].gate,
            Some(CfgGate {
                feature: "obs".into(),
                not: true
            })
        );
        assert_eq!(s.fns[2].gate, None);
    }

    #[test]
    fn consts_and_impls() {
        let s = sym("pub const SCHEMA_V: u64 = 3;\n\
             impl WireDescriptor for crate::msg::NetMsg { fn wire(&self) {} }\n\
             impl Plain { fn m(&self) { q(); } }\n");
        assert_eq!(s.consts[0].name, "SCHEMA_V");
        assert_eq!(s.consts[0].value.as_deref(), Some("3"));
        assert_eq!(s.impls[0].trait_name.as_deref(), Some("WireDescriptor"));
        assert_eq!(s.impls[0].type_name, "NetMsg");
        assert_eq!(s.impls[1].trait_name, None);
        assert_eq!(s.impls[1].type_name, "Plain");
        // Methods inside impls are visible as fns.
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"wire") && names.contains(&"m"));
    }

    #[test]
    fn struct_float_fields_and_test_marking() {
        let s = sym("struct P { ratio: f64, n: u64 }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { let x = 0.5; }\n}\n");
        assert_eq!(s.structs[0].floats.len(), 1);
        let t = s.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_tests);
    }

    #[test]
    fn generic_fn_and_arrow_in_generics() {
        let s = sym("fn g<F: Fn() -> u64>(f: F) -> u64 { f() + seed() }\n");
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "g");
        assert!(s.fns[0].calls.contains(&"seed".to_string()));
    }
}
