//! Repo-wide static analyzer for the Oasis workspace.
//!
//! Three passes, no external deps:
//!
//! 1. **Lexical** ([`lex`]): comments and string/char literals are masked to
//!    spaces (shape-preserving), comment text and string-literal contents
//!    are kept on the side. Everything downstream runs over masked text, so
//!    patterns inside strings or comments can never trigger (or suppress) a
//!    rule.
//! 2. **Token/symbol** ([`token`], [`symbols`]): the masked text becomes a
//!    token stream, and a recursive item walk builds a per-file symbol
//!    graph — fns with callee names, float sites, and cfg gates; enums with
//!    ordered variants; consts; `impl Trait for Type` sites; struct fields.
//! 3. **Rules** ([`rules`]): per-file families run over each file's masked
//!    lines; workspace families run once over the whole symbol graph.
//!
//! The per-file rule families (see `oasis-check --explain <rule>` or
//! [`registry::REGISTRY`]):
//!
//! - **no-panic**: no `unwrap()` / `expect()` / `panic!` family on runtime
//!   paths (the pod, engine, channel, and memory-model crates).
//! - **wire-assert**: every `impl WireDescriptor for T` is paired with an
//!   `assert_wire_size!(T)` compile-time 64-byte layout assertion.
//! - **pool-escape**: no raw `CxlPool` byte access outside `oasis-cxl`.
//! - **nondeterminism**: no wall-clock or randomly-seeded state in
//!   simulation crates — experiments must be bit-reproducible.
//! - **allow-comment**: every `#[allow(...)]` carries a justification.
//! - **metric-name**: metric-name literals live only in their crate's
//!   `src/metrics.rs`, as `const` declarations.
//! - **thread-discipline**: no unscoped `thread::spawn`; concurrency
//!   primitives in simulation crates carry coordination-state waivers.
//!
//! The symbol-graph families, which need the whole workspace:
//!
//! - **float-determinism**: no f32/f64 arithmetic or formatting in — or
//!   reachable from — replicated-state, metrics-snapshot, or
//!   stranding-integral modules. Integer-only counters are the invariant
//!   behind `consistent_with_log` and the figure byte-identity gates.
//! - **schema-evolution**: `AllocCommand`/`FleetCommand` variant order and
//!   the `WireDescriptor` impl set are pinned by the golden registry in
//!   [`policy`]; drift without a version bump is an error.
//! - **unchecked-epoch-arithmetic**: `+`/`*` on epoch/byte-integral
//!   operands in allocator and stranding paths must be `checked_` /
//!   `saturating_` or waived with the overflow bound.
//! - **cfg-pairing**: private `#[cfg(feature = "obs"/"sanitize")]` fns pair
//!   with their `#[cfg(not(...))]` inline stubs, and vice versa.
//! - **stale-waiver**: a waiver that no longer suppresses anything is
//!   itself an error.
//!
//! Test code is exempt: files under `tests/` and `benches/` are skipped
//! where appropriate, and `#[cfg(test)]` blocks are excluded by brace
//! matching. Deliberate exceptions in runtime code are waived in place:
//!
//! ```text
//! // oasis-check: allow(no-panic) <reason>          (next statement)
//! // oasis-check: allow-file(nondeterminism) <reason> (whole file)
//! ```
//!
//! A waiver without a reason is itself a finding, and — on workspace runs,
//! where every rule has had its chance to fire — so is a waiver that no
//! longer suppresses anything.
//!
//! Findings feed a committed ratchet baseline (`check_baseline.json`, see
//! [`baseline`]): CI fails on any count above baseline, and the baseline
//! may only shrink (explicitly, via `--update-baseline`).

pub mod baseline;
pub mod lex;
pub mod policy;
pub mod registry;
mod rules;
pub mod symbols;
pub mod token;

use std::cell::Cell;
use std::path::{Path, PathBuf};

pub use lex::{cfg_test_ranges, lex, string_literals, Lexed};

use symbols::FileSymbols;

/// The rule identifiers accepted in waiver comments, in display order.
/// Kept in sync with [`registry::REGISTRY`] by a unit test.
pub const RULES: &[&str] = &[
    "no-panic",
    "wire-assert",
    "pool-escape",
    "nondeterminism",
    "allow-comment",
    "metric-name",
    "thread-discipline",
    "float-determinism",
    "schema-evolution",
    "unchecked-epoch-arithmetic",
    "cfg-pairing",
    "stale-waiver",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where a file sits in its crate, which decides rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/` — runtime code.
    Src,
    /// Under `tests/`, `benches/`, or `examples/` — harness code.
    Harness,
}

/// Per-file context handed to the scanner.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Workspace-relative path (for reporting).
    pub rel_path: String,
    /// Directory name of the crate under `crates/`.
    pub crate_name: String,
    /// Src vs harness.
    pub kind: FileKind,
}

/// One parsed waiver with its liveness mark. `used` flips when the waiver
/// actually suppresses a finding; on workspace runs an unused waiver is a
/// `stale-waiver` finding.
struct Waiver {
    /// Rule being waived.
    rule: &'static str,
    /// Line of the waiver comment.
    line: usize,
    /// First covered line (== `line` for file-wide).
    first: usize,
    /// Last covered line (`usize::MAX` for file-wide).
    last: usize,
    /// Whole-file scope?
    file_wide: bool,
    /// Did this waiver suppress at least one finding?
    used: Cell<bool>,
}

/// Parsed waivers for one file.
#[derive(Default)]
pub struct Waivers {
    /// Every parsed waiver, in file order.
    entries: Vec<Waiver>,
    /// Malformed waivers (missing reason / unknown rule) become findings.
    pub(crate) bad: Vec<(usize, String)>,
}

impl Waivers {
    /// Is `rule` waived on `line`? Marks every matching waiver as live.
    pub fn waived(&self, rule: &str, line: usize) -> bool {
        let mut hit = false;
        for w in &self.entries {
            if w.rule == rule && (w.file_wide || (line >= w.first && line <= w.last)) {
                w.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Waivers that never suppressed a finding: (line, rule, file_wide).
    pub(crate) fn stale(&self) -> Vec<(usize, &'static str, bool)> {
        self.entries
            .iter()
            .filter(|w| !w.used.get())
            .map(|w| (w.line, w.rule, w.file_wide))
            .collect()
    }
}

/// Extract waiver comments (the `allow` / `allow-file` markers described
/// in the module docs) from the comment map. A line-scoped waiver covers
/// its comment line through the end of the next statement (the first
/// following line holding `;`, `{`, or `}`).
pub fn parse_waivers(lex: &Lexed) -> Waivers {
    let lines: Vec<&str> = lex.masked.lines().collect();
    let mut w = Waivers::default();
    for (&line, text) in &lex.comments {
        let Some(pos) = text.find("oasis-check:") else {
            continue;
        };
        let rest = text[pos + "oasis-check:".len()..].trim_start();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            w.bad.push((line, "malformed oasis-check waiver".into()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            w.bad.push((line, "unclosed oasis-check waiver".into()));
            continue;
        };
        let rule_txt = rest[..close].trim();
        let reason = rest[close + 1..].trim();
        let Some(rule) = RULES.iter().find(|&&r| r == rule_txt) else {
            w.bad
                .push((line, format!("unknown waiver rule '{rule_txt}'")));
            continue;
        };
        if reason.is_empty() {
            w.bad.push((
                line,
                format!("waiver for '{rule}' has no justification text"),
            ));
            continue;
        }
        if file_wide {
            w.entries.push(Waiver {
                rule,
                line,
                first: line,
                last: usize::MAX,
                file_wide: true,
                used: Cell::new(false),
            });
            continue;
        }
        // Scope: this line through the end of the next statement.
        let mut last = line;
        for (off, l) in lines.iter().enumerate().skip(line).take(12) {
            last = off + 1;
            if l.contains(';') || l.contains('{') || l.contains('}') {
                break;
            }
        }
        w.entries.push(Waiver {
            rule,
            line,
            first: line,
            last,
            file_wide: false,
            used: Cell::new(false),
        });
    }
    w
}

/// One file, fully analyzed through the lexical, token, and symbol passes —
/// the unit the workspace rules consume.
pub struct AnalyzedFile {
    /// File context.
    pub ctx: FileCtx,
    /// Raw source.
    pub src: String,
    /// Masked source + comments.
    pub lexed: Lexed,
    /// `#[cfg(test)]` line ranges.
    pub tests: Vec<(usize, usize)>,
    /// String literal contents with lines.
    pub literals: Vec<(usize, String)>,
    /// The symbol graph for this file.
    pub symbols: FileSymbols,
    /// Parsed waivers (with liveness marks).
    pub waivers: Waivers,
}

impl AnalyzedFile {
    /// Run every pass over one file's source.
    pub fn analyze(ctx: FileCtx, src: String) -> AnalyzedFile {
        let lexed = lex(&src);
        let tests = cfg_test_ranges(&lexed.masked);
        let literals = string_literals(&src);
        let symbols = symbols::extract(&lexed, &tests, &literals);
        let waivers = parse_waivers(&lexed);
        AnalyzedFile {
            ctx,
            src,
            lexed,
            tests,
            literals,
            symbols,
            waivers,
        }
    }
}

fn run_file_rules(f: &AnalyzedFile, out: &mut Vec<Finding>) {
    for &(line, ref msg) in &f.waivers.bad {
        out.push(Finding {
            file: f.ctx.rel_path.clone(),
            line,
            rule: "allow-comment",
            message: msg.clone(),
        });
    }
    rules::rule_no_panic(&f.ctx, &f.lexed, &f.tests, &f.waivers, out);
    rules::rule_wire_assert(&f.ctx, &f.lexed, &f.waivers, out);
    rules::rule_pool_escape(&f.ctx, &f.lexed, &f.tests, &f.waivers, out);
    rules::rule_nondeterminism(&f.ctx, &f.lexed, &f.tests, &f.waivers, out);
    rules::rule_allow_comment(&f.ctx, &f.lexed, &f.waivers, out);
    rules::rule_metric_name(&f.ctx, &f.src, &f.lexed, &f.tests, &f.waivers, out);
    rules::rule_thread_discipline(&f.ctx, &f.lexed, &f.tests, &f.waivers, out);
}

/// Run the per-file rules over one file's source.
///
/// This is the single-file entry point: the symbol-graph families
/// (`float-determinism`, `schema-evolution`, `unchecked-epoch-arithmetic`,
/// `cfg-pairing`, `stale-waiver`) need the whole analyzed set and only run
/// through [`analyze_files`] / [`check_workspace`].
pub fn check_source(ctx: &FileCtx, src: &str) -> Vec<Finding> {
    let f = AnalyzedFile::analyze(ctx.clone(), src.to_string());
    let mut out = Vec::new();
    run_file_rules(&f, &mut out);
    out
}

/// Run every rule — per-file and symbol-graph — over an in-memory set of
/// files. This is what [`check_workspace`] uses, and what the red-path
/// integration tests drive with seeded violations. Findings are sorted by
/// (file, line, rule).
pub fn analyze_files(inputs: Vec<(FileCtx, String)>) -> Vec<Finding> {
    let files: Vec<AnalyzedFile> = inputs
        .into_iter()
        .map(|(ctx, src)| AnalyzedFile::analyze(ctx, src))
        .collect();
    let mut out = Vec::new();
    for f in &files {
        run_file_rules(f, &mut out);
    }
    rules::rule_float_determinism(&files, &mut out);
    rules::rule_schema_evolution(&files, &mut out);
    rules::rule_epoch_arithmetic(&files, &mut out);
    rules::rule_cfg_pairing(&files, &mut out);
    // Last: every other rule has had its chance to mark waivers live.
    rules::rule_stale_waiver(&files, &mut out);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

/// Walk `root/crates` and analyze every `.rs` file. Paths are visited in
/// sorted order so output is stable.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut inputs: Vec<(FileCtx, String)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let mut parts = rel.split('/');
        let (Some("crates"), Some(krate)) = (parts.next(), parts.next()) else {
            continue;
        };
        let kind = match parts.next() {
            Some("src") => FileKind::Src,
            Some("tests") | Some("benches") | Some("examples") => FileKind::Harness,
            _ => continue,
        };
        let ctx = FileCtx {
            rel_path: rel.clone(),
            crate_name: krate.to_string(),
            kind,
        };
        inputs.push((ctx, std::fs::read_to_string(&path)?));
    }
    Ok(analyze_files(inputs))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_ctx(krate: &str) -> FileCtx {
        FileCtx {
            rel_path: format!("crates/{krate}/src/x.rs"),
            crate_name: krate.into(),
            kind: FileKind::Src,
        }
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn masking_strings_and_comments() {
        let l = lex("let a = \"panic!(x)\"; // .unwrap() here\nlet b = 1;");
        assert!(!l.masked.contains("panic!"));
        assert!(!l.masked.contains(".unwrap()"));
        assert!(l.comments[&1].contains(".unwrap() here"));
    }

    #[test]
    fn masking_raw_strings_and_chars() {
        let l =
            lex("let a = r#\"has .unwrap() inside\"#; let c = '\\'';\nlet lt: &'static str = x;");
        assert!(!l.masked.contains(".unwrap()"));
        assert!(l.masked.contains("'static"), "lifetimes survive masking");
    }

    #[test]
    fn no_panic_flags_runtime_only() {
        let f = check_source(&src_ctx("core"), "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_of(&f), ["no-panic"]);
        // Non-runtime crate: clean.
        let f = check_source(&src_ctx("sim"), "fn f() { x.unwrap(); }\n");
        assert!(f.is_empty());
        // Harness file: clean.
        let ctx = FileCtx {
            rel_path: "crates/core/tests/t.rs".into(),
            crate_name: "core".into(),
            kind: FileKind::Harness,
        };
        assert!(check_source(&ctx, "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn no_panic_skips_cfg_test_blocks() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(\"y\"); }\n}\n";
        assert!(check_source(&src_ctx("channel"), src).is_empty());
    }

    #[test]
    fn no_panic_waiver_covers_statement() {
        let src = "fn f() {\n    // oasis-check: allow(no-panic) construction-time contract.\n    let x = y\n        .iter()\n        .position(|v| v)\n        .expect(\"present\");\n    x\n}\n";
        assert!(check_source(&src_ctx("core"), src).is_empty());
        // The waiver does not leak past its statement.
        let src2 = format!("{src}fn g() {{ z.unwrap(); }}\n");
        assert_eq!(
            rules_of(&check_source(&src_ctx("core"), &src2)),
            ["no-panic"]
        );
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let src = "// oasis-check: allow(no-panic)\nfn f() { x.unwrap(); }\n";
        let f = check_source(&src_ctx("core"), src);
        assert_eq!(rules_of(&f), ["allow-comment", "no-panic"]);
    }

    #[test]
    fn wire_assert_pairing() {
        let bad = "impl WireDescriptor for Foo {\n    const WIRE_SIZE: usize = 64;\n}\n";
        let f = check_source(&src_ctx("core"), bad);
        assert_eq!(rules_of(&f), ["wire-assert"]);
        let good = format!("{bad}assert_wire_size!(Foo);\n");
        assert!(check_source(&src_ctx("core"), &good).is_empty());
    }

    #[test]
    fn pool_escape_outside_cxl() {
        let src = "fn f(pool: &mut CxlPool) { pool.poke(0, &[1]); }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("core"), src)),
            ["pool-escape"]
        );
        // Inside oasis-cxl the same access is the implementation.
        assert!(check_source(&src_ctx("cxl"), src).is_empty());
        // A heap's .peek() is not pool access.
        let heap = "fn g(q: &BinaryHeap<u64>) { q.peek(); }\n";
        assert!(check_source(&src_ctx("core"), heap).is_empty());
    }

    #[test]
    fn nondeterminism_sources_flagged() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let f = check_source(&src_ctx("sim"), src);
        assert_eq!(rules_of(&f), ["nondeterminism", "nondeterminism"]);
        // File-wide waiver silences the whole file.
        let waived =
            format!("// oasis-check: allow-file(nondeterminism) wall-clock reporter.\n{src}");
        assert!(check_source(&src_ctx("sim"), &waived).is_empty());
    }

    #[test]
    fn string_literal_extraction() {
        let lits = string_literals("let a = \"x.y\"; // \"not.this\"\nlet b = r#\"raw.one\"#;\n");
        assert_eq!(lits, vec![(1, "x.y".into()), (2, "raw.one".into())]);
    }

    #[test]
    fn metric_name_shape() {
        assert!(rules::is_metric_shaped("sim.sched_dispatches"));
        assert!(rules::is_metric_shaped("core.storage_fe_service_ns"));
        assert!(!rules::is_metric_shaped("nodots"));
        assert!(!rules::is_metric_shaped("Mixed.case"));
        assert!(!rules::is_metric_shaped("sim..double"));
        assert!(!rules::is_metric_shaped("trailing.dot."));
        assert!(!rules::is_metric_shaped("has-dash.x"));
    }

    #[test]
    fn metric_name_outside_registry_flagged() {
        let src = "fn f(s: &Snap) -> u64 { s.counter(\"core.net_fe_tx_packets\", 0) }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("bench"), src)),
            ["metric-name"]
        );
        // Non-registry prefixes (region labels etc.) are not metric names.
        let label = "fn g(p: &mut Pool) { p.alloc(\"storage.fe0.data\", 64); }\n";
        assert!(check_source(&src_ctx("core"), label).is_empty());
        // Tests may spot-check raw names.
        let test =
            "#[cfg(test)]\nmod t {\n    fn c() { s.counter(\"sim.sched_dispatches\", 0); }\n}\n";
        assert!(check_source(&src_ctx("sim"), test).is_empty());
    }

    #[test]
    fn metric_registry_prefix_and_const() {
        let reg = |krate: &str, src: &str| {
            check_source(
                &FileCtx {
                    rel_path: format!("crates/{krate}/src/metrics.rs"),
                    crate_name: krate.into(),
                    kind: FileKind::Src,
                },
                src,
            )
        };
        let good = "pub const X: &str = \"sim.sched_dispatches\";\n";
        assert!(reg("sim", good).is_empty());
        // Wrong prefix for the owning crate.
        assert_eq!(rules_of(&reg("cxl", good)), ["metric-name"]);
        // Registered name outside a const declaration.
        let loose = "pub fn x() -> &'static str { \"sim.sched_dispatches\" }\n";
        assert_eq!(rules_of(&reg("sim", loose)), ["metric-name"]);
    }

    #[test]
    fn thread_spawn_flagged_everywhere_scoped_spawn_clean() {
        // Unscoped spawn is a finding even outside the simulation crates.
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("apps"), src)),
            ["thread-discipline"]
        );
        // The vendored scoped helper's spawn does not match.
        let scoped = "fn g(s: &Scope) { s.spawn(|| {}); }\n";
        assert!(check_source(&src_ctx("apps"), scoped).is_empty());
        // Harness code may thread however it likes.
        let ctx = FileCtx {
            rel_path: "crates/bench/tests/t.rs".into(),
            crate_name: "bench".into(),
            kind: FileKind::Harness,
        };
        assert!(check_source(&ctx, src).is_empty());
    }

    #[test]
    fn thread_state_policed_in_simulation_crates() {
        let src = "fn f() { let m = Mutex::new(0); let c = AtomicUsize::new(0); }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("sim"), src)),
            ["thread-discipline", "thread-discipline"]
        );
        // Harness-side crates may hold wall-clock state.
        assert!(check_source(&src_ctx("bench"), src).is_empty());
        // A waiver with a reason covers the statement it precedes.
        let waived = "fn f() {\n    // oasis-check: allow(thread-discipline) claim counter, once per round.\n    let c = AtomicUsize::new(0);\n}\n";
        assert!(check_source(&src_ctx("sim"), waived).is_empty());
        // Imports alone are not state.
        let imports = "use std::sync::{Barrier, Mutex};\n";
        assert!(check_source(&src_ctx("sim"), imports).is_empty());
    }

    #[test]
    fn allow_needs_comment() {
        let bare = "#[allow(clippy::type_complexity)]\nfn f() {}\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("sim"), bare)),
            ["allow-comment"]
        );
        let ok = "// The tuple documents the exact projection.\n#[allow(clippy::type_complexity)]\nfn f() {}\n";
        assert!(check_source(&src_ctx("sim"), ok).is_empty());
        let trailing = "#[allow(dead_code)] // kept for the harness\nfn f() {}\n";
        assert!(check_source(&src_ctx("sim"), trailing).is_empty());
    }

    // -- symbol-graph families ------------------------------------------

    fn one(krate: &str, path: &str, src: &str) -> Vec<Finding> {
        analyze_files(vec![(
            FileCtx {
                rel_path: path.to_string(),
                crate_name: krate.into(),
                kind: FileKind::Src,
            },
            src.to_string(),
        )])
    }

    #[test]
    fn float_direct_site_in_policed_file() {
        let f = one(
            "core",
            "crates/core/src/allocator/thing.rs",
            "fn apply(&mut self, used: u64, cap: u64) { self.load = used as f64 / cap as f64; }\n",
        );
        assert!(f.iter().any(|x| x.rule == "float-determinism"), "{f:?}");
        // The same code outside a policed path is clean.
        let f = one(
            "core",
            "crates/core/src/pod.rs",
            "fn apply(&mut self, used: u64, cap: u64) { self.load = used as f64 / cap as f64; }\n",
        );
        assert!(f.iter().all(|x| x.rule != "float-determinism"), "{f:?}");
    }

    #[test]
    fn float_reachability_across_files() {
        let policed = (
            FileCtx {
                rel_path: "crates/core/src/allocator/svc.rs".into(),
                crate_name: "core".into(),
                kind: FileKind::Src,
            },
            "pub fn apply_cmd(x: u64) -> u64 { score_host(x) }\n".to_string(),
        );
        let helper = (
            FileCtx {
                rel_path: "crates/core/src/pod.rs".into(),
                crate_name: "core".into(),
                kind: FileKind::Src,
            },
            "pub fn score_host(x: u64) -> u64 { (x as f64 * 1.5) as u64 }\n".to_string(),
        );
        let f = analyze_files(vec![policed.clone(), helper]);
        let hit: Vec<&Finding> = f.iter().filter(|x| x.rule == "float-determinism").collect();
        assert_eq!(hit.len(), 1, "{f:?}");
        assert!(hit[0].message.contains("score_host"), "{}", hit[0].message);
        assert!(hit[0].file.ends_with("svc.rs"));
        // A waiver at the helper's float site silences all callers.
        let waived_helper = (
            FileCtx {
                rel_path: "crates/core/src/pod.rs".into(),
                crate_name: "core".into(),
                kind: FileKind::Src,
            },
            "pub fn score_host(x: u64) -> u64 {\n    // oasis-check: allow(float-determinism) display-only ranking, never persisted.\n    (x as f64 * 1.5) as u64\n}\n"
                .to_string(),
        );
        let f = analyze_files(vec![policed, waived_helper]);
        assert!(f.iter().all(|x| x.rule != "float-determinism"), "{f:?}");
    }

    #[test]
    fn schema_evolution_pins_variant_order() {
        let good = "pub const ALLOC_SCHEMA_VERSION: u32 = 1;\npub const FLEET_SCHEMA_VERSION: u32 = 2;\npub enum AllocCommand { RegisterNic, Assign, Unassign, MarkFailed, MarkRepaired, RegisterSsd, AssignVolume, ReleaseVolumes, MarkHostFailed, MarkHostRestarted, RegisterAccel }\npub enum FleetCommand { RegisterPod, AddLink, CreateInstance, ResizeInstance, KillInstance, QueryFleetState, MigrateInstance, FinishMigration }\npub enum TransferPath { Cxl, Nic }\n";
        let f = one("core", "crates/core/src/allocator/command.rs", good);
        assert!(f.iter().all(|x| x.rule != "schema-evolution"), "{f:?}");
        // Reordering two variants without touching the version: finding.
        let reordered = good.replace("RegisterNic, Assign,", "Assign, RegisterNic,");
        let f = one("core", "crates/core/src/allocator/command.rs", &reordered);
        assert!(f.iter().any(|x| x.rule == "schema-evolution"), "{f:?}");
        // Dropping the version const: finding.
        let no_const = good.replace("pub const ALLOC_SCHEMA_VERSION: u32 = 1;\n", "");
        let f = one("core", "crates/core/src/allocator/command.rs", &no_const);
        assert!(f
            .iter()
            .any(|x| x.rule == "schema-evolution" && x.message.contains("ALLOC_SCHEMA_VERSION")));
    }

    #[test]
    fn schema_evolution_pins_wire_impl_set() {
        let f = one(
            "core",
            "crates/core/src/other.rs",
            "impl WireDescriptor for BrandNewMsg { fn x(&self) {} }\nassert_wire_size!(BrandNewMsg);\n",
        );
        assert!(
            f.iter()
                .any(|x| x.rule == "schema-evolution" && x.message.contains("BrandNewMsg")),
            "{f:?}"
        );
    }

    #[test]
    fn epoch_arithmetic_checked_and_waived() {
        let bad = "fn tick(&mut self, dt: u64) { self.nic_acc += nic * dt; }\n";
        let f = one("trace", "crates/trace/src/stranding.rs", bad);
        assert!(
            f.iter().any(|x| x.rule == "unchecked-epoch-arithmetic"),
            "{f:?}"
        );
        let good = "fn tick(&mut self, dt: u64) { self.nic_acc = self.nic_acc.saturating_add(nic * dt); }\n";
        let f = one("trace", "crates/trace/src/stranding.rs", good);
        assert!(
            f.iter().all(|x| x.rule != "unchecked-epoch-arithmetic"),
            "{f:?}"
        );
        // Outside policed paths the same line is fine.
        let f = one("sim", "crates/sim/src/clock.rs", bad);
        assert!(f.iter().all(|x| x.rule != "unchecked-epoch-arithmetic"));
    }

    #[test]
    fn cfg_pairing_requires_stub() {
        let unpaired = "#[cfg(feature = \"obs\")]\nfn note_x(&mut self) { self.n += 1; }\n";
        let f = one("sim", "crates/sim/src/sched.rs", unpaired);
        assert!(f.iter().any(|x| x.rule == "cfg-pairing"), "{f:?}");
        let paired = format!(
            "{unpaired}#[cfg(not(feature = \"obs\"))]\n#[inline(always)]\nfn note_x(&mut self) {{}}\n"
        );
        let f = one("sim", "crates/sim/src/sched.rs", &paired);
        assert!(f.iter().all(|x| x.rule != "cfg-pairing"), "{f:?}");
        // Pub gated fns are caller-gated by convention: exempt.
        let pub_gated = "#[cfg(feature = \"obs\")]\npub fn stats(&self) -> u64 { self.n }\n";
        let f = one("sim", "crates/sim/src/sched.rs", pub_gated);
        assert!(f.iter().all(|x| x.rule != "cfg-pairing"), "{f:?}");
    }

    #[test]
    fn stale_waiver_detected_live_waiver_kept() {
        // Live: the waiver suppresses a real finding.
        let live = "fn f() {\n    // oasis-check: allow(no-panic) boot-time contract.\n    x.unwrap();\n}\n";
        let f = one("core", "crates/core/src/x.rs", live);
        assert!(f.is_empty(), "{f:?}");
        // Stale: nothing to suppress.
        let stale = "fn f() {\n    // oasis-check: allow(no-panic) boot-time contract.\n    let y = 1;\n}\n";
        let f = one("core", "crates/core/src/x.rs", stale);
        assert_eq!(rules_of(&f), ["stale-waiver"], "{f:?}");
        // check_source (single-file mode) never reports stale waivers.
        assert!(check_source(&src_ctx("core"), stale).is_empty());
    }
}
