//! Repo-wide invariant lint for the Oasis workspace.
//!
//! A plain source walker (no syn, no external deps) that enforces the
//! project's cross-cutting rules — the ones the compiler cannot:
//!
//! - **no-panic**: no `unwrap()` / `expect()` / `panic!` family on runtime
//!   paths (the pod, engine, channel, and memory-model crates). A crashed
//!   driver must degrade, not abort the whole simulated pod.
//! - **wire-assert**: every `impl WireDescriptor for T` is paired with an
//!   `assert_wire_size!(T)` compile-time 64-byte layout assertion in the
//!   same file.
//! - **pool-escape**: no raw `CxlPool` byte access (`poke`/`peek`) outside
//!   `oasis-cxl` — all runtime traffic goes through `HostCtx`, which is
//!   what the coherence model (and its sanitizer) observes.
//! - **nondeterminism**: no wall-clock or randomly-seeded state in
//!   simulation crates (`SystemTime::now`, `Instant::now`, `rand`,
//!   std `HashMap`/`HashSet`) — experiments must be bit-reproducible.
//! - **allow-comment**: every `#[allow(...)]` carries a justification
//!   comment on the attribute line or directly above it.
//! - **metric-name**: telemetry metric names (`"<crate>.<snake_case>"`
//!   string literals whose first segment names a crate with a metric
//!   registry) live only in that crate's `src/metrics.rs`, where the
//!   prefix must match the owning crate; everywhere else code must use
//!   the registered const.
//! - **thread-discipline**: no unscoped `thread::spawn` anywhere (worker
//!   pools go through the vendored crossbeam scoped helper), and every
//!   concurrency primitive constructed in a simulation crate (`Mutex`,
//!   `Barrier`, `Atomic*`, scoped thread pools, …) carries a waiver naming
//!   why it is coordination state — intra-shard hot paths stay lock-free.
//!
//! Test code is exempt: files under `tests/` and `benches/` are skipped
//! where appropriate, and `#[cfg(test)]` blocks are excluded by brace
//! matching. Deliberate exceptions in runtime code are waived in place:
//!
//! ```text
//! // oasis-check: allow(no-panic) <reason>          (next statement)
//! // oasis-check: allow-file(nondeterminism) <reason> (whole file)
//! ```
//!
//! A waiver without a reason is itself a finding.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees are runtime paths for the `no-panic` rule.
const RUNTIME_CRATES: &[&str] = &["cxl", "channel", "core", "storage", "accel"];

/// Crates that own a metric-name registry (`src/metrics.rs`). These are
/// also the only legal first segments of a metric name.
const METRIC_REGISTRY_CRATES: &[&str] = &["sim", "cxl", "channel", "core", "trace", "bench"];

/// The rule identifiers accepted in waiver comments.
pub const RULES: &[&str] = &[
    "no-panic",
    "wire-assert",
    "pool-escape",
    "nondeterminism",
    "allow-comment",
    "metric-name",
    "thread-discipline",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where a file sits in its crate, which decides rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/` — runtime code.
    Src,
    /// Under `tests/`, `benches/`, or `examples/` — harness code.
    Harness,
}

/// Per-file context handed to the scanner.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Workspace-relative path (for reporting).
    pub rel_path: String,
    /// Directory name of the crate under `crates/`.
    pub crate_name: String,
    /// Src vs harness.
    pub kind: FileKind,
}

// ---------------------------------------------------------------------------
// Lexical pass: mask comments/strings, collect comment text per line.
// ---------------------------------------------------------------------------

/// The source with every comment and string-literal character replaced by a
/// space (newlines preserved), plus the comment text found on each line.
/// All structural scanning happens on the masked text, so patterns inside
/// strings or comments can never trigger (or suppress) a rule.
pub struct Lexed {
    /// Masked source, byte-for-byte the same shape as the input.
    pub masked: String,
    /// Comment text per 1-indexed line (concatenated if several).
    pub comments: BTreeMap<usize, String>,
}

/// Mask comments and string/char literals out of `src`.
pub fn lex(src: &str) -> Lexed {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    let mut st = St::Code;
    let mut line = 1usize;
    let mut i = 0usize;
    let push_comment = |comments: &mut BTreeMap<usize, String>, line: usize, c: u8| {
        comments.entry(line).or_default().push(c as char);
    };
    while i < b.len() {
        let c = b[i];
        let nl = c == b'\n';
        match st {
            St::Code => match c {
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    st = St::Line;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    st = St::Block(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'"' => {
                    st = St::Str;
                    out.push(b' ');
                }
                b'r' | b'b'
                    if {
                        // r"...", r#"..."#, b"...", br#"..."# raw/byte strings.
                        let mut j = i + 1;
                        if c == b'b' && b.get(j) == Some(&b'r') {
                            j += 1;
                        }
                        let mut h = 0u32;
                        while b.get(j) == Some(&b'#') {
                            h += 1;
                            j += 1;
                        }
                        b.get(j) == Some(&b'"')
                            && (c != b'b' || h > 0 || b[i + 1] == b'"' || b[i + 1] == b'r')
                    } =>
                {
                    // Re-scan to find hash count and the opening quote.
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut h = 0u32;
                    while b.get(j) == Some(&b'#') {
                        h += 1;
                        j += 1;
                    }
                    // Emit the prefix as spaces, land on the quote.
                    out.extend(std::iter::repeat_n(b' ', j - i + 1));
                    i = j + 1;
                    st = if h > 0 || b[j] == b'"' {
                        St::RawStr(h)
                    } else {
                        St::Code
                    };
                    continue;
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal is '\...' or 'x'
                    // followed by a closing quote.
                    let is_char = match b.get(i + 1) {
                        Some(b'\\') => true,
                        Some(_) => b.get(i + 2) == Some(&b'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                        out.push(b' ');
                    } else {
                        out.push(c);
                    }
                }
                _ => out.push(c),
            },
            St::Line => {
                if nl {
                    st = St::Code;
                    out.push(c);
                } else {
                    push_comment(&mut comments, line, c);
                    out.push(b' ');
                }
            }
            St::Block(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if nl {
                    out.push(c);
                } else {
                    push_comment(&mut comments, line, c);
                    out.push(b' ');
                }
            }
            St::Str => match c {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if b.get(i - 1) == Some(&b'\n') {
                        line += 1;
                    }
                    continue;
                }
                b'"' => {
                    st = St::Code;
                    out.push(b' ');
                }
                _ => out.push(if nl { c } else { b' ' }),
            },
            St::RawStr(h) => {
                if c == b'"' {
                    let closes = (1..=h as usize).all(|k| b.get(i + k) == Some(&b'#'));
                    if closes {
                        out.extend(std::iter::repeat_n(b' ', h as usize + 1));
                        i += 1 + h as usize;
                        st = St::Code;
                        continue;
                    }
                }
                out.push(if nl { c } else { b' ' });
            }
            St::Char => match c {
                b'\\' => {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'\'' => {
                    st = St::Code;
                    out.push(b' ');
                }
                _ => out.push(if nl { c } else { b' ' }),
            },
        }
        if nl {
            line += 1;
        }
        i += 1;
    }
    Lexed {
        masked: String::from_utf8_lossy(&out).into_owned(),
        comments,
    }
}

/// Extract ordinary and raw string literal contents from `src` with their
/// 1-indexed starting lines. The inverse concern of [`lex`]: comments are
/// skipped, literal *contents* are kept. Escape sequences are passed
/// through raw — a literal containing one can never look like a metric
/// name, which is all this feeds.
pub fn string_literals(src: &str) -> Vec<(usize, String)> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b = src.as_bytes();
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut cur = String::new();
    let mut cur_line = 1usize;
    let mut st = St::Code;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => match c {
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    st = St::Line;
                    i += 2;
                    continue;
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    st = St::Block(1);
                    i += 2;
                    continue;
                }
                b'"' => {
                    st = St::Str;
                    cur.clear();
                    cur_line = line;
                }
                b'r' | b'b' => {
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut h = 0u32;
                    while b.get(j) == Some(&b'#') {
                        h += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') && (c != b'b' || h > 0 || b[i + 1] != b'\'') {
                        st = St::RawStr(h);
                        cur.clear();
                        cur_line = line;
                        i = j + 1;
                        continue;
                    }
                }
                b'\'' => {
                    let is_char = match b.get(i + 1) {
                        Some(b'\\') => true,
                        Some(_) => b.get(i + 2) == Some(&b'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                    }
                }
                _ => {}
            },
            St::Line => {
                if c == b'\n' {
                    st = St::Code;
                }
            }
            St::Block(depth) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                    continue;
                }
            }
            St::Str => match c {
                b'\\' => {
                    cur.push('\\');
                    if let Some(&e) = b.get(i + 1) {
                        cur.push(e as char);
                        if e == b'\n' {
                            line += 1;
                        }
                    }
                    i += 2;
                    continue;
                }
                b'"' => {
                    out.push((cur_line, std::mem::take(&mut cur)));
                    st = St::Code;
                }
                _ => cur.push(c as char),
            },
            St::RawStr(h) => {
                if c == b'"' && (1..=h as usize).all(|k| b.get(i + k) == Some(&b'#')) {
                    out.push((cur_line, std::mem::take(&mut cur)));
                    i += 1 + h as usize;
                    st = St::Code;
                    continue;
                }
                cur.push(c as char);
            }
            St::Char => match c {
                b'\\' => {
                    i += 2;
                    continue;
                }
                b'\'' => st = St::Code,
                _ => {}
            },
        }
        if c == b'\n' {
            line += 1;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Structural helpers on the masked text.
// ---------------------------------------------------------------------------

/// 1-indexed line ranges (inclusive) covered by `#[cfg(test)]` items,
/// found by brace matching from each attribute.
pub fn cfg_test_ranges(masked: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let bytes = masked.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = masked[search..].find("#[cfg(test)]") {
        let start = search + pos;
        search = start + 1;
        let start_line = line_of(masked, start);
        // Scan forward to the item's opening brace or terminating
        // semicolon, skipping further attributes and the item header.
        let mut j = start + "#[cfg(test)]".len();
        let mut end_line = start_line;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while k < bytes.len() && depth > 0 {
                        match bytes[k] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end_line = line_of(masked, k.saturating_sub(1));
                    break;
                }
                b';' => {
                    end_line = line_of(masked, j);
                    break;
                }
                _ => j += 1,
            }
        }
        ranges.push((start_line, end_line));
    }
    ranges
}

fn line_of(s: &str, byte_pos: usize) -> usize {
    s.as_bytes()[..byte_pos.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

fn in_ranges(line: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Parsed waivers for one file.
#[derive(Default)]
pub struct Waivers {
    /// Rules waived for the entire file.
    file_wide: Vec<&'static str>,
    /// (rule, first_line, last_line) spans waived by inline comments.
    spans: Vec<(&'static str, usize, usize)>,
    /// Malformed waivers (missing reason / unknown rule) become findings.
    bad: Vec<(usize, String)>,
}

impl Waivers {
    /// Is `rule` waived on `line`?
    pub fn waived(&self, rule: &str, line: usize) -> bool {
        self.file_wide.contains(&rule)
            || self
                .spans
                .iter()
                .any(|&(r, a, b)| r == rule && line >= a && line <= b)
    }
}

/// Extract waiver comments (the `allow` / `allow-file` markers described
/// in the module docs) from the comment map. A line-scoped waiver covers
/// its comment line through the end of the next statement (the first
/// following line holding `;`, `{`, or `}`).
pub fn parse_waivers(lex: &Lexed) -> Waivers {
    let lines: Vec<&str> = lex.masked.lines().collect();
    let mut w = Waivers::default();
    for (&line, text) in &lex.comments {
        let Some(pos) = text.find("oasis-check:") else {
            continue;
        };
        let rest = text[pos + "oasis-check:".len()..].trim_start();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            w.bad.push((line, "malformed oasis-check waiver".into()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            w.bad.push((line, "unclosed oasis-check waiver".into()));
            continue;
        };
        let rule_txt = rest[..close].trim();
        let reason = rest[close + 1..].trim();
        let Some(rule) = RULES.iter().find(|&&r| r == rule_txt) else {
            w.bad
                .push((line, format!("unknown waiver rule '{rule_txt}'")));
            continue;
        };
        if reason.is_empty() {
            w.bad.push((
                line,
                format!("waiver for '{rule}' has no justification text"),
            ));
            continue;
        }
        if file_wide {
            w.file_wide.push(rule);
            continue;
        }
        // Scope: this line through the end of the next statement.
        let mut last = line;
        for (off, l) in lines.iter().enumerate().skip(line).take(12) {
            last = off + 1;
            if l.contains(';') || l.contains('{') || l.contains('}') {
                break;
            }
        }
        w.spans.push((rule, line, last));
    }
    w
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

fn push(
    out: &mut Vec<Finding>,
    ctx: &FileCtx,
    waivers: &Waivers,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if !waivers.waived(rule, line) {
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line,
            rule,
            message,
        });
    }
}

/// Patterns whose presence on a runtime line is a `no-panic` finding.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap() on a runtime path"),
    (".expect(", "expect() on a runtime path"),
    ("panic!(", "panic! on a runtime path"),
    ("unreachable!(", "unreachable! on a runtime path"),
    ("todo!(", "todo! on a runtime path"),
    ("unimplemented!(", "unimplemented! on a runtime path"),
];

fn rule_no_panic(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src || !RUNTIME_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        for &(pat, msg) in PANIC_PATTERNS {
            // The trailing `(` in each pattern keeps `.expect(` from
            // matching `.expect_err(`.
            if l.contains(pat) {
                push(out, ctx, waivers, line, "no-panic", msg.to_string());
            }
        }
    }
}

fn rule_wire_assert(ctx: &FileCtx, lexed: &Lexed, waivers: &Waivers, out: &mut Vec<Finding>) {
    let masked = &lexed.masked;
    let mut search = 0usize;
    while let Some(pos) = masked[search..].find("impl WireDescriptor for ") {
        let start = search + pos + "impl WireDescriptor for ".len();
        search = start;
        let ty: String = masked[start..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':')
            .collect();
        if ty.is_empty() {
            continue;
        }
        let needle = format!("assert_wire_size!({ty})");
        if !masked.contains(&needle) {
            push(
                out,
                ctx,
                waivers,
                line_of(masked, start),
                "wire-assert",
                format!("impl WireDescriptor for {ty} lacks {needle}"),
            );
        }
    }
}

fn rule_pool_escape(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src || ctx.crate_name == "cxl" || ctx.crate_name == "check" {
        return;
    }
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        // `poke` exists only on CxlPool; `peek` is common (heaps), so it is
        // only flagged on a receiver literally named `pool`.
        if l.contains(".poke(") || l.contains("pool.peek(") {
            push(
                out,
                ctx,
                waivers,
                line,
                "pool-escape",
                "raw CxlPool byte access outside oasis-cxl (use HostCtx)".into(),
            );
        }
    }
}

/// Nondeterminism sources forbidden in simulation code.
const NONDET_PATTERNS: &[(&str, &str)] = &[
    ("SystemTime::now", "wall-clock time in simulation code"),
    ("Instant::now", "wall-clock time in simulation code"),
    ("thread_rng", "OS-seeded randomness in simulation code"),
    ("rand::", "external randomness in simulation code"),
    ("HashMap::new", "randomly-seeded std HashMap (use DetMap)"),
    ("HashSet::new", "randomly-seeded std HashSet (use DetSet)"),
    (
        "collections::HashMap",
        "randomly-seeded std HashMap (use DetMap)",
    ),
    (
        "collections::HashSet",
        "randomly-seeded std HashSet (use DetSet)",
    ),
];

fn rule_nondeterminism(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src {
        return;
    }
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        for &(pat, msg) in NONDET_PATTERNS {
            if l.contains(pat) {
                push(out, ctx, waivers, line, "nondeterminism", msg.to_string());
            }
        }
    }
}

/// Does `s` have the shape of a metric name: two or more non-empty
/// `snake_case` segments joined by dots?
fn is_metric_shaped(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

fn rule_metric_name(
    ctx: &FileCtx,
    src: &str,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    // Harness code reads snapshots through registered consts too, but only
    // src trees are policed; the check crate's own fixtures are exempt.
    if ctx.kind != FileKind::Src || ctx.crate_name == "check" {
        return;
    }
    let is_registry = ctx.rel_path.ends_with("src/metrics.rs");
    let masked_lines: Vec<&str> = lexed.masked.lines().collect();
    for (line, lit) in string_literals(src) {
        if !is_metric_shaped(&lit) {
            continue;
        }
        let prefix = lit.split('.').next().unwrap_or("");
        if !METRIC_REGISTRY_CRATES.contains(&prefix) {
            continue;
        }
        if in_ranges(line, tests) {
            continue;
        }
        if !is_registry {
            push(
                out,
                ctx,
                waivers,
                line,
                "metric-name",
                format!("metric name \"{lit}\" outside metrics.rs — use the registered const"),
            );
            continue;
        }
        if prefix != ctx.crate_name {
            push(
                out,
                ctx,
                waivers,
                line,
                "metric-name",
                format!(
                    "metric \"{lit}\" registered in crate '{}' but prefixed '{prefix}.'",
                    ctx.crate_name
                ),
            );
        }
        // Registry entries must be const declarations, so every user can
        // name them; the declaration and literal share a line.
        let declared = masked_lines
            .get(line - 1)
            .is_some_and(|l| l.contains("const "));
        if !declared {
            push(
                out,
                ctx,
                waivers,
                line,
                "metric-name",
                format!("metric \"{lit}\" in metrics.rs is not a `const` declaration"),
            );
        }
    }
}

/// Construction sites of shared-state concurrency primitives. The rule
/// audits state where it is *declared* (one waiver per primitive), not at
/// every load/store — `Ordering::` traffic downstream of a waived atomic
/// is already accounted for.
const THREAD_STATE_PATTERNS: &[&str] = &[
    "Mutex::new(",
    "RwLock::new(",
    "Condvar::new(",
    "Barrier::new(",
    "AtomicBool::new(",
    "AtomicUsize::new(",
    "AtomicIsize::new(",
    "AtomicU8::new(",
    "AtomicU16::new(",
    "AtomicU32::new(",
    "AtomicU64::new(",
    "AtomicI8::new(",
    "AtomicI16::new(",
    "AtomicI32::new(",
    "AtomicI64::new(",
    "OnceLock::new(",
    "mpsc::channel(",
    "thread::scope(",
];

fn rule_thread_discipline(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src || ctx.crate_name == "check" {
        return;
    }
    // The shared-state half polices the deterministic substrate and the
    // runtime crates built on it; harness crates (bench, apps, obs) may
    // hold wall-clock-side state freely.
    let policed = ctx.crate_name == "sim" || RUNTIME_CRATES.contains(&ctx.crate_name.as_str());
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        // Catches `std::thread::spawn` and a bare `thread::spawn` import in
        // every crate; the vendored scoped helper's `s.spawn(..)` does not
        // match, which is exactly the discipline being enforced.
        if l.contains("thread::spawn") {
            push(
                out,
                ctx,
                waivers,
                line,
                "thread-discipline",
                "unscoped thread::spawn (use the vendored crossbeam scoped helper)".into(),
            );
        }
        if !policed {
            continue;
        }
        for &pat in THREAD_STATE_PATTERNS {
            if l.contains(pat) {
                push(
                    out,
                    ctx,
                    waivers,
                    line,
                    "thread-discipline",
                    format!(
                        "{} in a simulation crate — waive as coordination state; \
                         intra-shard hot paths stay lock-free",
                        pat.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

fn rule_allow_comment(ctx: &FileCtx, lexed: &Lexed, waivers: &Waivers, out: &mut Vec<Finding>) {
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if !(l.contains("#[allow(") || l.contains("#![allow(")) {
            continue;
        }
        let justified = lexed
            .comments
            .get(&line)
            .is_some_and(|c| !c.trim().is_empty())
            || line > 1
                && lexed
                    .comments
                    .get(&(line - 1))
                    .is_some_and(|c| !c.trim().is_empty());
        if !justified {
            push(
                out,
                ctx,
                waivers,
                line,
                "allow-comment",
                "#[allow(...)] without a justification comment on or above it".into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Run every rule over one file's source.
pub fn check_source(ctx: &FileCtx, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let tests = cfg_test_ranges(&lexed.masked);
    let waivers = parse_waivers(&lexed);
    let mut out = Vec::new();
    for &(line, ref msg) in &waivers.bad {
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line,
            rule: "allow-comment",
            message: msg.clone(),
        });
    }
    rule_no_panic(ctx, &lexed, &tests, &waivers, &mut out);
    rule_wire_assert(ctx, &lexed, &waivers, &mut out);
    rule_pool_escape(ctx, &lexed, &tests, &waivers, &mut out);
    rule_nondeterminism(ctx, &lexed, &tests, &waivers, &mut out);
    rule_allow_comment(ctx, &lexed, &waivers, &mut out);
    rule_metric_name(ctx, src, &lexed, &tests, &waivers, &mut out);
    rule_thread_discipline(ctx, &lexed, &tests, &waivers, &mut out);
    out
}

/// Walk `root/crates` and lint every `.rs` file. Paths are visited in
/// sorted order so output is stable.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let mut parts = rel.split('/');
        let (Some("crates"), Some(krate)) = (parts.next(), parts.next()) else {
            continue;
        };
        let kind = match parts.next() {
            Some("src") => FileKind::Src,
            Some("tests") | Some("benches") | Some("examples") => FileKind::Harness,
            _ => continue,
        };
        let ctx = FileCtx {
            rel_path: rel.clone(),
            crate_name: krate.to_string(),
            kind,
        };
        let src = std::fs::read_to_string(&path)?;
        findings.extend(check_source(&ctx, &src));
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_ctx(krate: &str) -> FileCtx {
        FileCtx {
            rel_path: format!("crates/{krate}/src/x.rs"),
            crate_name: krate.into(),
            kind: FileKind::Src,
        }
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn masking_strings_and_comments() {
        let l = lex("let a = \"panic!(x)\"; // .unwrap() here\nlet b = 1;");
        assert!(!l.masked.contains("panic!"));
        assert!(!l.masked.contains(".unwrap()"));
        assert!(l.comments[&1].contains(".unwrap() here"));
    }

    #[test]
    fn masking_raw_strings_and_chars() {
        let l =
            lex("let a = r#\"has .unwrap() inside\"#; let c = '\\'';\nlet lt: &'static str = x;");
        assert!(!l.masked.contains(".unwrap()"));
        assert!(l.masked.contains("'static"), "lifetimes survive masking");
    }

    #[test]
    fn no_panic_flags_runtime_only() {
        let f = check_source(&src_ctx("core"), "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_of(&f), ["no-panic"]);
        // Non-runtime crate: clean.
        let f = check_source(&src_ctx("sim"), "fn f() { x.unwrap(); }\n");
        assert!(f.is_empty());
        // Harness file: clean.
        let ctx = FileCtx {
            rel_path: "crates/core/tests/t.rs".into(),
            crate_name: "core".into(),
            kind: FileKind::Harness,
        };
        assert!(check_source(&ctx, "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn no_panic_skips_cfg_test_blocks() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(\"y\"); }\n}\n";
        assert!(check_source(&src_ctx("channel"), src).is_empty());
    }

    #[test]
    fn no_panic_waiver_covers_statement() {
        let src = "fn f() {\n    // oasis-check: allow(no-panic) construction-time contract.\n    let x = y\n        .iter()\n        .position(|v| v)\n        .expect(\"present\");\n    x\n}\n";
        assert!(check_source(&src_ctx("core"), src).is_empty());
        // The waiver does not leak past its statement.
        let src2 = format!("{src}fn g() {{ z.unwrap(); }}\n");
        assert_eq!(
            rules_of(&check_source(&src_ctx("core"), &src2)),
            ["no-panic"]
        );
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let src = "// oasis-check: allow(no-panic)\nfn f() { x.unwrap(); }\n";
        let f = check_source(&src_ctx("core"), src);
        assert_eq!(rules_of(&f), ["allow-comment", "no-panic"]);
    }

    #[test]
    fn wire_assert_pairing() {
        let bad = "impl WireDescriptor for Foo {\n    const WIRE_SIZE: usize = 64;\n}\n";
        let f = check_source(&src_ctx("core"), bad);
        assert_eq!(rules_of(&f), ["wire-assert"]);
        let good = format!("{bad}assert_wire_size!(Foo);\n");
        assert!(check_source(&src_ctx("core"), &good).is_empty());
    }

    #[test]
    fn pool_escape_outside_cxl() {
        let src = "fn f(pool: &mut CxlPool) { pool.poke(0, &[1]); }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("core"), src)),
            ["pool-escape"]
        );
        // Inside oasis-cxl the same access is the implementation.
        assert!(check_source(&src_ctx("cxl"), src).is_empty());
        // A heap's .peek() is not pool access.
        let heap = "fn g(q: &BinaryHeap<u64>) { q.peek(); }\n";
        assert!(check_source(&src_ctx("core"), heap).is_empty());
    }

    #[test]
    fn nondeterminism_sources_flagged() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let f = check_source(&src_ctx("sim"), src);
        assert_eq!(rules_of(&f), ["nondeterminism", "nondeterminism"]);
        // File-wide waiver silences the whole file.
        let waived =
            format!("// oasis-check: allow-file(nondeterminism) wall-clock reporter.\n{src}");
        assert!(check_source(&src_ctx("sim"), &waived).is_empty());
    }

    #[test]
    fn string_literal_extraction() {
        let lits = string_literals("let a = \"x.y\"; // \"not.this\"\nlet b = r#\"raw.one\"#;\n");
        assert_eq!(lits, vec![(1, "x.y".into()), (2, "raw.one".into())]);
    }

    #[test]
    fn metric_name_shape() {
        assert!(is_metric_shaped("sim.sched_dispatches"));
        assert!(is_metric_shaped("core.storage_fe_service_ns"));
        assert!(!is_metric_shaped("nodots"));
        assert!(!is_metric_shaped("Mixed.case"));
        assert!(!is_metric_shaped("sim..double"));
        assert!(!is_metric_shaped("trailing.dot."));
        assert!(!is_metric_shaped("has-dash.x"));
    }

    #[test]
    fn metric_name_outside_registry_flagged() {
        let src = "fn f(s: &Snap) -> u64 { s.counter(\"core.net_fe_tx_packets\", 0) }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("bench"), src)),
            ["metric-name"]
        );
        // Non-registry prefixes (region labels etc.) are not metric names.
        let label = "fn g(p: &mut Pool) { p.alloc(\"storage.fe0.data\", 64); }\n";
        assert!(check_source(&src_ctx("core"), label).is_empty());
        // Tests may spot-check raw names.
        let test =
            "#[cfg(test)]\nmod t {\n    fn c() { s.counter(\"sim.sched_dispatches\", 0); }\n}\n";
        assert!(check_source(&src_ctx("sim"), test).is_empty());
    }

    #[test]
    fn metric_registry_prefix_and_const() {
        let reg = |krate: &str, src: &str| {
            check_source(
                &FileCtx {
                    rel_path: format!("crates/{krate}/src/metrics.rs"),
                    crate_name: krate.into(),
                    kind: FileKind::Src,
                },
                src,
            )
        };
        let good = "pub const X: &str = \"sim.sched_dispatches\";\n";
        assert!(reg("sim", good).is_empty());
        // Wrong prefix for the owning crate.
        assert_eq!(rules_of(&reg("cxl", good)), ["metric-name"]);
        // Registered name outside a const declaration.
        let loose = "pub fn x() -> &'static str { \"sim.sched_dispatches\" }\n";
        assert_eq!(rules_of(&reg("sim", loose)), ["metric-name"]);
    }

    #[test]
    fn thread_spawn_flagged_everywhere_scoped_spawn_clean() {
        // Unscoped spawn is a finding even outside the simulation crates.
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("apps"), src)),
            ["thread-discipline"]
        );
        // The vendored scoped helper's spawn does not match.
        let scoped = "fn g(s: &Scope) { s.spawn(|| {}); }\n";
        assert!(check_source(&src_ctx("apps"), scoped).is_empty());
        // Harness code may thread however it likes.
        let ctx = FileCtx {
            rel_path: "crates/bench/tests/t.rs".into(),
            crate_name: "bench".into(),
            kind: FileKind::Harness,
        };
        assert!(check_source(&ctx, src).is_empty());
    }

    #[test]
    fn thread_state_policed_in_simulation_crates() {
        let src = "fn f() { let m = Mutex::new(0); let c = AtomicUsize::new(0); }\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("sim"), src)),
            ["thread-discipline", "thread-discipline"]
        );
        // Harness-side crates may hold wall-clock state.
        assert!(check_source(&src_ctx("bench"), src).is_empty());
        // A waiver with a reason covers the statement it precedes.
        let waived = "fn f() {\n    // oasis-check: allow(thread-discipline) claim counter, once per round.\n    let c = AtomicUsize::new(0);\n}\n";
        assert!(check_source(&src_ctx("sim"), waived).is_empty());
        // Imports alone are not state.
        let imports = "use std::sync::{Barrier, Mutex};\n";
        assert!(check_source(&src_ctx("sim"), imports).is_empty());
    }

    #[test]
    fn allow_needs_comment() {
        let bare = "#[allow(clippy::type_complexity)]\nfn f() {}\n";
        assert_eq!(
            rules_of(&check_source(&src_ctx("sim"), bare)),
            ["allow-comment"]
        );
        let ok = "// The tuple documents the exact projection.\n#[allow(clippy::type_complexity)]\nfn f() {}\n";
        assert!(check_source(&src_ctx("sim"), ok).is_empty());
        let trailing = "#[allow(dead_code)] // kept for the harness\nfn f() {}\n";
        assert!(check_source(&src_ctx("sim"), trailing).is_empty());
    }
}
