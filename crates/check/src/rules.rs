//! Rule families.
//!
//! The first seven rules run per file over the masked text (exactly the
//! original masking-lexer behavior). The symbol-graph families below them
//! (`float-determinism`, `schema-evolution`, `unchecked-epoch-arithmetic`,
//! `cfg-pairing`, `stale-waiver`) run once over the whole analyzed set,
//! because what they police — reachability, cross-file schema pins, waiver
//! liveness — cannot be seen one file at a time.

use crate::lex::{in_ranges, line_of, string_literals, Lexed};
use crate::policy;
use crate::symbols::FnSym;
use crate::token::{tokenize, Tok};
use crate::{AnalyzedFile, FileCtx, FileKind, Finding, Waivers};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose `src/` trees are runtime paths for the `no-panic` rule.
pub(crate) const RUNTIME_CRATES: &[&str] = &["cxl", "channel", "core", "storage", "accel"];

/// Crates that own a metric-name registry (`src/metrics.rs`). These are
/// also the only legal first segments of a metric name.
pub(crate) const METRIC_REGISTRY_CRATES: &[&str] =
    &["sim", "cxl", "channel", "core", "trace", "bench"];

pub(crate) fn push(
    out: &mut Vec<Finding>,
    ctx: &FileCtx,
    waivers: &Waivers,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if !waivers.waived(rule, line) {
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line,
            rule,
            message,
        });
    }
}

// ---------------------------------------------------------------------------
// Per-file rules (the original masking-pass families).
// ---------------------------------------------------------------------------

/// Patterns whose presence on a runtime line is a `no-panic` finding.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap() on a runtime path"),
    (".expect(", "expect() on a runtime path"),
    ("panic!(", "panic! on a runtime path"),
    ("unreachable!(", "unreachable! on a runtime path"),
    ("todo!(", "todo! on a runtime path"),
    ("unimplemented!(", "unimplemented! on a runtime path"),
];

pub(crate) fn rule_no_panic(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src || !RUNTIME_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        for &(pat, msg) in PANIC_PATTERNS {
            // The trailing `(` in each pattern keeps `.expect(` from
            // matching `.expect_err(`.
            if l.contains(pat) {
                push(out, ctx, waivers, line, "no-panic", msg.to_string());
            }
        }
    }
}

pub(crate) fn rule_wire_assert(
    ctx: &FileCtx,
    lexed: &Lexed,
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    let masked = &lexed.masked;
    let mut search = 0usize;
    while let Some(pos) = masked[search..].find("impl WireDescriptor for ") {
        let start = search + pos + "impl WireDescriptor for ".len();
        search = start;
        let ty: String = masked[start..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':')
            .collect();
        if ty.is_empty() {
            continue;
        }
        let needle = format!("assert_wire_size!({ty})");
        if !masked.contains(&needle) {
            push(
                out,
                ctx,
                waivers,
                line_of(masked, start),
                "wire-assert",
                format!("impl WireDescriptor for {ty} lacks {needle}"),
            );
        }
    }
}

pub(crate) fn rule_pool_escape(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src || ctx.crate_name == "cxl" || ctx.crate_name == "check" {
        return;
    }
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        // `poke` exists only on CxlPool; `peek` is common (heaps), so it is
        // only flagged on a receiver literally named `pool`.
        if l.contains(".poke(") || l.contains("pool.peek(") {
            push(
                out,
                ctx,
                waivers,
                line,
                "pool-escape",
                "raw CxlPool byte access outside oasis-cxl (use HostCtx)".into(),
            );
        }
    }
}

/// Nondeterminism sources forbidden in simulation code.
const NONDET_PATTERNS: &[(&str, &str)] = &[
    ("SystemTime::now", "wall-clock time in simulation code"),
    ("Instant::now", "wall-clock time in simulation code"),
    ("thread_rng", "OS-seeded randomness in simulation code"),
    ("rand::", "external randomness in simulation code"),
    ("HashMap::new", "randomly-seeded std HashMap (use DetMap)"),
    ("HashSet::new", "randomly-seeded std HashSet (use DetSet)"),
    (
        "collections::HashMap",
        "randomly-seeded std HashMap (use DetMap)",
    ),
    (
        "collections::HashSet",
        "randomly-seeded std HashSet (use DetSet)",
    ),
];

pub(crate) fn rule_nondeterminism(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src {
        return;
    }
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        for &(pat, msg) in NONDET_PATTERNS {
            if l.contains(pat) {
                push(out, ctx, waivers, line, "nondeterminism", msg.to_string());
            }
        }
    }
}

/// Does `s` have the shape of a metric name: two or more non-empty
/// `snake_case` segments joined by dots?
pub(crate) fn is_metric_shaped(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

pub(crate) fn rule_metric_name(
    ctx: &FileCtx,
    src: &str,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    // Harness code reads snapshots through registered consts too, but only
    // src trees are policed; the check crate's own fixtures are exempt.
    if ctx.kind != FileKind::Src || ctx.crate_name == "check" {
        return;
    }
    let is_registry = ctx.rel_path.ends_with("src/metrics.rs");
    let masked_lines: Vec<&str> = lexed.masked.lines().collect();
    for (line, lit) in string_literals(src) {
        if !is_metric_shaped(&lit) {
            continue;
        }
        let prefix = lit.split('.').next().unwrap_or("");
        if !METRIC_REGISTRY_CRATES.contains(&prefix) {
            continue;
        }
        if in_ranges(line, tests) {
            continue;
        }
        if !is_registry {
            push(
                out,
                ctx,
                waivers,
                line,
                "metric-name",
                format!("metric name \"{lit}\" outside metrics.rs — use the registered const"),
            );
            continue;
        }
        if prefix != ctx.crate_name {
            push(
                out,
                ctx,
                waivers,
                line,
                "metric-name",
                format!(
                    "metric \"{lit}\" registered in crate '{}' but prefixed '{prefix}.'",
                    ctx.crate_name
                ),
            );
        }
        // Registry entries must be const declarations, so every user can
        // name them; the declaration and literal share a line.
        let declared = masked_lines
            .get(line - 1)
            .is_some_and(|l| l.contains("const "));
        if !declared {
            push(
                out,
                ctx,
                waivers,
                line,
                "metric-name",
                format!("metric \"{lit}\" in metrics.rs is not a `const` declaration"),
            );
        }
    }
}

/// Construction sites of shared-state concurrency primitives. The rule
/// audits state where it is *declared* (one waiver per primitive), not at
/// every load/store — `Ordering::` traffic downstream of a waived atomic
/// is already accounted for.
const THREAD_STATE_PATTERNS: &[&str] = &[
    "Mutex::new(",
    "RwLock::new(",
    "Condvar::new(",
    "Barrier::new(",
    "AtomicBool::new(",
    "AtomicUsize::new(",
    "AtomicIsize::new(",
    "AtomicU8::new(",
    "AtomicU16::new(",
    "AtomicU32::new(",
    "AtomicU64::new(",
    "AtomicI8::new(",
    "AtomicI16::new(",
    "AtomicI32::new(",
    "AtomicI64::new(",
    "OnceLock::new(",
    "mpsc::channel(",
    "thread::scope(",
];

pub(crate) fn rule_thread_discipline(
    ctx: &FileCtx,
    lexed: &Lexed,
    tests: &[(usize, usize)],
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != FileKind::Src || ctx.crate_name == "check" {
        return;
    }
    // The shared-state half polices the deterministic substrate and the
    // runtime crates built on it; harness crates (bench, apps, obs) may
    // hold wall-clock-side state freely.
    let policed = ctx.crate_name == "sim" || RUNTIME_CRATES.contains(&ctx.crate_name.as_str());
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if in_ranges(line, tests) {
            continue;
        }
        // Catches `std::thread::spawn` and a bare `thread::spawn` import in
        // every crate; the vendored scoped helper's `s.spawn(..)` does not
        // match, which is exactly the discipline being enforced.
        if l.contains("thread::spawn") {
            push(
                out,
                ctx,
                waivers,
                line,
                "thread-discipline",
                "unscoped thread::spawn (use the vendored crossbeam scoped helper)".into(),
            );
        }
        if !policed {
            continue;
        }
        for &pat in THREAD_STATE_PATTERNS {
            if l.contains(pat) {
                push(
                    out,
                    ctx,
                    waivers,
                    line,
                    "thread-discipline",
                    format!(
                        "{} in a simulation crate — waive as coordination state; \
                         intra-shard hot paths stay lock-free",
                        pat.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

pub(crate) fn rule_allow_comment(
    ctx: &FileCtx,
    lexed: &Lexed,
    waivers: &Waivers,
    out: &mut Vec<Finding>,
) {
    for (i, l) in lexed.masked.lines().enumerate() {
        let line = i + 1;
        if !(l.contains("#[allow(") || l.contains("#![allow(")) {
            continue;
        }
        let justified = lexed
            .comments
            .get(&line)
            .is_some_and(|c| !c.trim().is_empty())
            || line > 1
                && lexed
                    .comments
                    .get(&(line - 1))
                    .is_some_and(|c| !c.trim().is_empty());
        if !justified {
            push(
                out,
                ctx,
                waivers,
                line,
                "allow-comment",
                "#[allow(...)] without a justification comment on or above it".into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Symbol-graph rules (workspace scope).
// ---------------------------------------------------------------------------

/// Is this file part of the call/symbol graph? Harness files, the check
/// crate itself, and `#[cfg(test)]`-included sibling files are not.
fn in_graph(f: &AnalyzedFile) -> bool {
    let name = f.ctx.rel_path.rsplit('/').next().unwrap_or("");
    f.ctx.kind == FileKind::Src
        && f.ctx.crate_name != "check"
        && !name.ends_with("_tests.rs")
        && name != "tests.rs"
}

/// `float-determinism`: no f32/f64 arithmetic or formatting in — or
/// reachable from — the float-policed modules (replicated state, metrics
/// snapshots, stranding integrals).
pub(crate) fn rule_float_determinism(files: &[AnalyzedFile], out: &mut Vec<Finding>) {
    // Name → fn sites, for call resolution.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !in_graph(f) {
            continue;
        }
        for (fj, fun) in f.symbols.fns.iter().enumerate() {
            if !fun.in_tests {
                by_name.entry(fun.name.as_str()).or_default().push((fi, fj));
            }
        }
    }
    let resolve = |caller_crate: &str, name: &str| -> Vec<(usize, usize)> {
        if policy::CALL_IGNORE.contains(&name) {
            return Vec::new();
        }
        let Some(cands) = by_name.get(name) else {
            return Vec::new();
        };
        let same: Vec<(usize, usize)> = cands
            .iter()
            .copied()
            .filter(|&(fi, _)| files[fi].ctx.crate_name == caller_crate)
            .collect();
        let chosen = if same.is_empty() { cands.clone() } else { same };
        // More than a few candidates means the name is too generic to
        // resolve honestly; stay silent rather than guess.
        if chosen.len() > 3 {
            Vec::new()
        } else {
            chosen
        }
    };

    // An "offender" is a non-policed graph fn with an unwaived float site;
    // policed fns report their own sites directly below.
    let offender_site = |fi: usize, fj: usize| -> Option<(usize, String)> {
        let f = &files[fi];
        if policy::policed(&f.ctx.rel_path, policy::FLOAT_POLICED) {
            return None;
        }
        let fun = &f.symbols.fns[fj];
        fun.floats
            .iter()
            .find(|s| !f.waivers.waived("float-determinism", s.line))
            .map(|s| (s.line, s.what.clone()))
    };

    for (fi, f) in files.iter().enumerate() {
        if !in_graph(f) || !policy::policed(&f.ctx.rel_path, policy::FLOAT_POLICED) {
            continue;
        }
        // Float-typed fields in policed structs.
        for st in &f.symbols.structs {
            if st.in_tests {
                continue;
            }
            for site in &st.floats {
                push(
                    out,
                    &f.ctx,
                    &f.waivers,
                    site.line,
                    "float-determinism",
                    format!(
                        "float-typed field in struct '{}' on a float-policed path ({})",
                        st.name, site.what
                    ),
                );
            }
        }
        for (fj, fun) in f.symbols.fns.iter().enumerate() {
            if fun.in_tests {
                continue;
            }
            // Direct sites.
            let mut direct = false;
            for site in &fun.floats {
                direct = true;
                push(
                    out,
                    &f.ctx,
                    &f.waivers,
                    site.line,
                    "float-determinism",
                    format!("{} in float-policed fn '{}'", site.what, fun.name),
                );
            }
            if direct {
                continue; // already flagged at the sites themselves
            }
            // Transitive reachability over the name-resolved call graph.
            let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut frontier: Vec<(usize, usize)> = vec![(fi, fj)];
            visited.insert((fi, fj));
            let mut offender: Option<(String, String, usize, String)> = None;
            for _depth in 0..4 {
                if offender.is_some() {
                    break;
                }
                let mut next = Vec::new();
                for &(ci, cj) in &frontier {
                    let caller: &FnSym = &files[ci].symbols.fns[cj];
                    let crate_name = files[ci].ctx.crate_name.clone();
                    for callee in &caller.calls {
                        for tgt in resolve(&crate_name, callee) {
                            if !visited.insert(tgt) {
                                continue;
                            }
                            if let Some((line, what)) = offender_site(tgt.0, tgt.1) {
                                offender = Some((
                                    files[tgt.0].symbols.fns[tgt.1].name.clone(),
                                    files[tgt.0].ctx.rel_path.clone(),
                                    line,
                                    what,
                                ));
                            }
                            next.push(tgt);
                        }
                    }
                    if offender.is_some() {
                        break;
                    }
                }
                frontier = next;
            }
            if let Some((name, file, line, what)) = offender {
                push(
                    out,
                    &f.ctx,
                    &f.waivers,
                    fun.line,
                    "float-determinism",
                    format!(
                        "float-policed fn '{}' reaches {what} in '{name}' ({file}:{line})",
                        fun.name
                    ),
                );
            }
        }
    }
}

/// `schema-evolution`: command enums and the WireDescriptor impl set must
/// match the golden registry in `policy.rs`; any drift is a finding until
/// the registry (and the golden-bytes test) are updated with a version
/// bump.
pub(crate) fn rule_schema_evolution(files: &[AnalyzedFile], out: &mut Vec<Finding>) {
    for g in policy::ENUM_GOLDENS {
        let Some(f) = files.iter().find(|f| f.ctx.rel_path.ends_with(g.file)) else {
            continue; // partial analysis set (tests); workspace runs always include it
        };
        match f.symbols.enums.iter().find(|e| e.name == g.enum_name) {
            None => push(
                out,
                &f.ctx,
                &f.waivers,
                1,
                "schema-evolution",
                format!(
                    "enum {} is pinned by the golden registry but no longer declared here",
                    g.enum_name
                ),
            ),
            Some(e) => {
                let found: Vec<&str> = e.variants.iter().map(String::as_str).collect();
                if found != g.variants {
                    push(
                        out,
                        &f.ctx,
                        &f.waivers,
                        e.line,
                        "schema-evolution",
                        format!(
                            "{} variants diverged from pinned schema v{}: expected [{}], \
                             found [{}] — bump {} and update the golden registry and \
                             golden-bytes test together",
                            g.enum_name,
                            g.version,
                            g.variants.join(", "),
                            found.join(", "),
                            g.version_const,
                        ),
                    );
                }
            }
        }
        match f.symbols.consts.iter().find(|c| c.name == g.version_const) {
            None => push(
                out,
                &f.ctx,
                &f.waivers,
                1,
                "schema-evolution",
                format!(
                    "missing schema version const {} (golden registry pins v{})",
                    g.version_const, g.version
                ),
            ),
            Some(c) => {
                if c.value.as_deref() != Some(g.version) {
                    push(
                        out,
                        &f.ctx,
                        &f.waivers,
                        c.line,
                        "schema-evolution",
                        format!(
                            "{} = {} but the golden registry pins v{} — update the \
                             registry entry alongside the bump",
                            g.version_const,
                            c.value.as_deref().unwrap_or("?"),
                            g.version
                        ),
                    );
                }
            }
        }
    }

    // WireDescriptor impl set: pinned types, pinned file.
    let golden_file_present = files
        .iter()
        .any(|f| f.ctx.rel_path.ends_with(policy::WIRE_GOLDEN_FILE));
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        if !in_graph(f) {
            continue;
        }
        for im in &f.symbols.impls {
            if im.trait_name.as_deref() != Some("WireDescriptor") {
                continue;
            }
            let ty = im.type_name.as_str();
            if !policy::WIRE_GOLDEN_TYPES.contains(&ty) {
                push(
                    out,
                    &f.ctx,
                    &f.waivers,
                    im.line,
                    "schema-evolution",
                    format!(
                        "WireDescriptor impl for {ty} is not pinned — add it to the \
                         golden registry and the golden-bytes test"
                    ),
                );
            } else if !f.ctx.rel_path.ends_with(policy::WIRE_GOLDEN_FILE) {
                push(
                    out,
                    &f.ctx,
                    &f.waivers,
                    im.line,
                    "schema-evolution",
                    format!(
                        "WireDescriptor impl for {ty} outside the pinned registry \
                         file {}",
                        policy::WIRE_GOLDEN_FILE
                    ),
                );
            }
            if let Some(known) = policy::WIRE_GOLDEN_TYPES.iter().find(|&&t| t == ty) {
                seen.insert(known);
            }
        }
    }
    if golden_file_present {
        for &ty in policy::WIRE_GOLDEN_TYPES {
            if !seen.contains(ty) {
                let f = files
                    .iter()
                    .find(|f| f.ctx.rel_path.ends_with(policy::WIRE_GOLDEN_FILE))
                    .expect("checked above");
                push(
                    out,
                    &f.ctx,
                    &f.waivers,
                    1,
                    "schema-evolution",
                    format!(
                        "pinned WireDescriptor impl for {ty} not found — remove the \
                         golden registry entry with a version note if retired"
                    ),
                );
            }
        }
    }
}

/// `unchecked-epoch-arithmetic`: `+`/`*` (including `+=`/`*=`) on lines
/// whose operands look epoch/byte-integral, in the policed allocator and
/// stranding-integral paths, must be `checked_`/`saturating_`/`wrapping_`
/// or carry a waiver.
pub(crate) fn rule_epoch_arithmetic(files: &[AnalyzedFile], out: &mut Vec<Finding>) {
    for f in files {
        if !in_graph(f) || !policy::policed(&f.ctx.rel_path, policy::EPOCH_POLICED) {
            continue;
        }
        let toks = tokenize(&f.lexed.masked);
        // Idents per line, for the operand-shape test.
        let mut line_idents: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for t in &toks {
            if let Some(id) = t.ident() {
                line_idents.entry(t.line).or_default().push(id);
            }
        }
        let masked_lines: Vec<&str> = f.lexed.masked.lines().collect();
        let mut reported: BTreeSet<usize> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            let op = match t.tok {
                Tok::Punct('+') => '+',
                Tok::Punct('*') => '*',
                _ => continue,
            };
            let line = t.line;
            if reported.contains(&line) || in_ranges(line, &f.tests) {
                continue;
            }
            // Binary-operator shape: the left operand ends in an ident,
            // number, or closing bracket (rules out derefs, `&*`, generic
            // arrows, unary positions).
            let prev_ok = i > 0
                && match &toks[i - 1].tok {
                    Tok::Num { .. } => true,
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    Tok::Ident(id) => !matches!(
                        id.as_str(),
                        "return" | "break" | "in" | "if" | "while" | "match" | "move" | "impl"
                    ),
                    _ => false,
                };
            if !prev_ok {
                continue;
            }
            let epochy = line_idents
                .get(&line)
                .is_some_and(|ids| ids.iter().any(|id| policy::is_epoch_ident(id)));
            if !epochy {
                continue;
            }
            let text = masked_lines.get(line - 1).copied().unwrap_or("");
            if text.contains("checked_")
                || text.contains("saturating_")
                || text.contains("wrapping_")
            {
                continue;
            }
            reported.insert(line);
            push(
                out,
                &f.ctx,
                &f.waivers,
                line,
                "unchecked-epoch-arithmetic",
                format!(
                    "unchecked '{op}' on epoch/byte-integral operands — use \
                     checked_/saturating_ or waive with the overflow bound"
                ),
            );
        }
    }
}

/// `cfg-pairing`: every private `#[cfg(feature = ...)]` fn (for the paired
/// features) has its `#[cfg(not(feature = ...))]` inline stub in the same
/// file, and every stub has its implementation. Pub gated fns are exempt —
/// callers gate themselves by convention.
pub(crate) fn rule_cfg_pairing(files: &[AnalyzedFile], out: &mut Vec<Finding>) {
    for f in files {
        if !in_graph(f) {
            continue;
        }
        for fun in &f.symbols.fns {
            let Some(gate) = &fun.gate else {
                continue;
            };
            if fun.in_tests
                || fun.is_pub
                || !policy::PAIRED_FEATURES.contains(&gate.feature.as_str())
            {
                continue;
            }
            let paired = f.symbols.fns.iter().any(|g| {
                g.name == fun.name
                    && g.gate
                        .as_ref()
                        .is_some_and(|h| h.feature == gate.feature && h.not != gate.not)
            });
            if paired {
                continue;
            }
            let message = if gate.not {
                format!(
                    "stub '{}' has no #[cfg(feature = \"{}\")] implementation — dead \
                     stub or deleted impl",
                    fun.name, gate.feature
                )
            } else {
                format!(
                    "gated fn '{}' has no #[cfg(not(feature = \"{}\"))] inline stub — \
                     the no-feature build breaks at its call sites",
                    fun.name, gate.feature
                )
            };
            push(out, &f.ctx, &f.waivers, fun.line, "cfg-pairing", message);
        }
    }
}

/// `stale-waiver`: after every other rule has run, any waiver that never
/// suppressed a finding is itself a finding. Not waivable — delete the
/// waiver instead. The check crate is exempt: its docs and fixtures quote
/// waiver syntax.
pub(crate) fn rule_stale_waiver(files: &[AnalyzedFile], out: &mut Vec<Finding>) {
    for f in files {
        if f.ctx.crate_name == "check" {
            continue;
        }
        for (line, rule, file_wide) in f.waivers.stale() {
            let scope = if file_wide {
                "file-wide waiver"
            } else {
                "waiver"
            };
            out.push(Finding {
                file: f.ctx.rel_path.clone(),
                line,
                rule: "stale-waiver",
                message: format!(
                    "{scope} for '{rule}' no longer suppresses any finding — delete it"
                ),
            });
        }
    }
}
