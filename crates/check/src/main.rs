//! `oasis-check`: repo-wide static analyzer. Run from the workspace root
//! (or pass it as the first argument).
//!
//! ```text
//! oasis-check [ROOT] [--json] [--no-ratchet] [--update-baseline]
//!             [--baseline PATH] [--explain RULE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (no findings beyond the ratchet baseline, baseline
//! not stale), 1 violations or stale baseline, 2 usage/IO errors.

use oasis_check::baseline::{json_string, Baseline};
use oasis_check::{registry, Finding, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    json: bool,
    ratchet: bool,
    update_baseline: bool,
    baseline_path: Option<PathBuf>,
    explain: Option<String>,
    list_rules: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        ratchet: true,
        update_baseline: false,
        baseline_path: None,
        explain: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--no-ratchet" => opts.ratchet = false,
            "--update-baseline" => opts.update_baseline = true,
            "--baseline" => {
                opts.baseline_path =
                    Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule id")?);
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: oasis-check [ROOT] [--json] [--no-ratchet] [--update-baseline] \
                     [--baseline PATH] [--explain RULE] [--list-rules]"
                        .into(),
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => opts.root = PathBuf::from(path),
        }
    }
    Ok(opts)
}

fn findings_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{ \"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {} }}",
            json_string(&f.file),
            f.line,
            json_string(f.rule),
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push(']');
    s
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("oasis-check: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in registry::REGISTRY {
            println!(
                "{:28} {}",
                r.id,
                r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &opts.explain {
        match registry::find(rule) {
            Some(info) => {
                print!("{}", registry::explain(info));
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "oasis-check: unknown rule '{rule}'. Rules: {}",
                    RULES.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    if !opts.root.join("crates").is_dir() {
        eprintln!(
            "oasis-check: {} has no crates/ directory (run from the workspace root)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }
    let findings = match oasis_check::check_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("oasis-check: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("check_baseline.json"));
    let current = Baseline::from_findings(&findings);

    if opts.update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
            eprintln!("oasis-check: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        if !opts.json {
            println!(
                "oasis-check: baseline refreshed ({} entries) at {}",
                current.entries.len(),
                baseline_path.display()
            );
        }
    }

    let report = if opts.ratchet && !opts.update_baseline {
        let base = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("oasis-check: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            // No baseline yet: everything counts as new debt.
            Err(_) => Baseline::default(),
        };
        Some(base.compare(&current))
    } else {
        None
    };

    if opts.json {
        let mut s = String::from("{\n  \"schema\": 1,\n  \"findings\": ");
        s.push_str(&findings_json(&findings));
        if let Some(rep) = &report {
            s.push_str(&format!(
                ",\n  \"ratchet\": {{ \"regressions\": {}, \"improvements\": {} }}",
                rep.regressions.len(),
                rep.improvements.len()
            ));
        }
        s.push_str("\n}");
        println!("{s}");
    } else {
        for f in &findings {
            println!("{f}");
        }
    }

    match report {
        Some(rep) => {
            if !rep.regressions.is_empty() {
                for d in &rep.regressions {
                    eprintln!(
                        "oasis-check: ratchet: {}:[{}] {} finding(s), baseline allows {}",
                        d.file, d.rule, d.now, d.was
                    );
                }
                eprintln!(
                    "oasis-check: {} (file, rule) count(s) above baseline — fix or waive \
                     with a reason",
                    rep.regressions.len()
                );
                ExitCode::FAILURE
            } else if !rep.improvements.is_empty() {
                for d in &rep.improvements {
                    eprintln!(
                        "oasis-check: ratchet: {}:[{}] improved {} -> {}",
                        d.file, d.rule, d.was, d.now
                    );
                }
                eprintln!(
                    "oasis-check: baseline is stale (debt shrank) — run with \
                     --update-baseline and commit check_baseline.json"
                );
                ExitCode::FAILURE
            } else {
                if !opts.json {
                    println!(
                        "oasis-check: clean ({} rules, {} baselined finding(s))",
                        RULES.len(),
                        findings.len()
                    );
                }
                ExitCode::SUCCESS
            }
        }
        None => {
            // No ratchet: plain pass/fail on findings (red-path CI mode).
            if findings.is_empty() {
                if !opts.json {
                    println!("oasis-check: clean ({} rules)", RULES.len());
                }
                ExitCode::SUCCESS
            } else if opts.update_baseline {
                ExitCode::SUCCESS
            } else {
                if !opts.json {
                    println!("oasis-check: {} finding(s)", findings.len());
                }
                ExitCode::FAILURE
            }
        }
    }
}
