//! `oasis-check`: repo-wide invariant lint. Run from the workspace root
//! (or pass it as the first argument); exits non-zero on any finding.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    if !root.join("crates").is_dir() {
        eprintln!(
            "oasis-check: {} has no crates/ directory (run from the workspace root)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let findings = match oasis_check::check_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("oasis-check: walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("oasis-check: clean ({} rules)", oasis_check::RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("oasis-check: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
