//! Red-path coverage: every new rule family must fire on a seeded
//! violation. CI runs the same experiment against the *real* workspace
//! (inject one violation per family into a policed file, assert the rule
//! id appears in `oasis-check --json`, restore); this test pins the same
//! guarantee in-process so a silently dead rule cannot pass the suite.

use oasis_check::{analyze_files, FileCtx, FileKind};

fn src(rel_path: &str, crate_name: &str, body: &str) -> (FileCtx, String) {
    (
        FileCtx {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Src,
        },
        body.to_string(),
    )
}

fn rules_fired(findings: &[oasis_check::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn float_determinism_fires_on_seeded_float() {
    let findings = analyze_files(vec![src(
        "crates/core/src/fleet.rs",
        "core",
        "pub fn drift(x: u64) -> u64 { (x as f64 * 1.5) as u64 }\n",
    )]);
    assert!(
        rules_fired(&findings).contains(&"float-determinism"),
        "{findings:?}"
    );
}

#[test]
fn float_determinism_fires_via_call_graph() {
    // The float lives in an unpoliced helper crate; only reachability from
    // the policed root can find it.
    let findings = analyze_files(vec![
        src(
            "crates/core/src/fleet.rs",
            "core",
            "pub fn spill_rate(x: u64) -> u64 { scale_helper(x) }\n",
        ),
        src(
            "crates/trace/src/helpers.rs",
            "trace",
            "pub fn scale_helper(x: u64) -> u64 { (x as f64 * 0.5) as u64 }\n",
        ),
    ]);
    assert!(
        rules_fired(&findings).contains(&"float-determinism"),
        "{findings:?}"
    );
}

#[test]
fn schema_evolution_fires_on_reordered_variants() {
    // AllocCommand with its first two variants swapped: the discriminant
    // bytes silently change, which is exactly the drift the golden pins.
    let findings = analyze_files(vec![src(
        "crates/core/src/allocator/command.rs",
        "core",
        "pub const ALLOC_SCHEMA_VERSION: u32 = 1;\n\
         pub const FLEET_SCHEMA_VERSION: u32 = 1;\n\
         pub enum AllocCommand {\n\
             Assign { ip: u32 },\n\
             RegisterNic { nic: u32 },\n\
             Unassign { ip: u32 },\n\
             MarkFailed { nic: u32 },\n\
             MarkRepaired { nic: u32 },\n\
             RegisterSsd { ssd: u32 },\n\
             AssignVolume { ip: u32 },\n\
             ReleaseVolumes { ip: u32 },\n\
             MarkHostFailed { host: u32 },\n\
             MarkHostRestarted { host: u32 },\n\
             RegisterAccel { accel: u32 },\n\
         }\n\
         pub enum FleetCommand {\n\
             RegisterPod { pod: u32 },\n\
             AddLink { a: u32 },\n\
             CreateInstance { at: u64 },\n\
             ResizeInstance { at: u64 },\n\
             KillInstance { at: u64 },\n\
             QueryFleetState,\n\
         }\n",
    )]);
    let schema: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "schema-evolution")
        .collect();
    assert!(!schema.is_empty(), "{findings:?}");
    assert!(
        schema.iter().any(|f| f.message.contains("AllocCommand")),
        "{schema:?}"
    );
}

#[test]
fn schema_evolution_fires_on_version_bump_without_golden() {
    // Variant added at the tail AND version const untouched: the rule
    // demands the version bump accompany any shape change.
    let findings = analyze_files(vec![src(
        "crates/core/src/allocator/command.rs",
        "core",
        "pub const ALLOC_SCHEMA_VERSION: u32 = 2;\n\
         pub const FLEET_SCHEMA_VERSION: u32 = 1;\n",
    )]);
    assert!(
        rules_fired(&findings).contains(&"schema-evolution"),
        "{findings:?}"
    );
}

#[test]
fn epoch_arithmetic_fires_on_unchecked_add() {
    let findings = analyze_files(vec![src(
        "crates/core/src/allocator/lease.rs",
        "core",
        "pub fn extend(expiry_ns: u64, ttl_ns: u64) -> u64 { expiry_ns + ttl_ns }\n",
    )]);
    assert!(
        rules_fired(&findings).contains(&"unchecked-epoch-arithmetic"),
        "{findings:?}"
    );
}

#[test]
fn cfg_pairing_fires_on_unpaired_gated_fn() {
    let findings = analyze_files(vec![src(
        "crates/core/src/obs_glue.rs",
        "core",
        "struct T;\n\
         impl T {\n\
             #[cfg(feature = \"obs\")]\n\
             fn note(&mut self) { }\n\
         }\n",
    )]);
    assert!(
        rules_fired(&findings).contains(&"cfg-pairing"),
        "{findings:?}"
    );
}

#[test]
fn stale_waiver_fires_on_dead_waiver() {
    let findings = analyze_files(vec![src(
        "crates/core/src/clean.rs",
        "core",
        "// oasis-check: allow(no-panic) nothing here panics\n\
         pub fn fine() -> u32 { 7 }\n",
    )]);
    assert!(
        rules_fired(&findings).contains(&"stale-waiver"),
        "{findings:?}"
    );
}

#[test]
fn clean_seed_produces_no_findings() {
    // The green path: an innocuous policed file stays quiet, so the red
    // assertions above are attributable to the seeded violations alone.
    let findings = analyze_files(vec![src(
        "crates/core/src/fleet.rs",
        "core",
        "pub fn add(a: u64, b: u64) -> u64 { a.saturating_add(b) }\n",
    )]);
    assert!(findings.is_empty(), "{findings:?}");
}
