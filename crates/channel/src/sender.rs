//! Channel sender.
//!
//! The sender writes messages into ring slots through its CPU cache and
//! issues `CLWB` whenever it fills a cache line (or explicitly via
//! [`Sender::flush`] when the sending rate is low), making the line visible
//! in pool memory. Flow control uses the receiver-published consumed
//! counter; per §4 of the paper, the sender *caches* the counter value and
//! re-reads it (with `CLFLUSHOPT` + `MFENCE`, since the pool is not
//! coherent) only when all slots indicated by the cached value are
//! exhausted.

use oasis_cxl::{line_base, CxlPool, HostCtx};

use crate::error::ChannelError;
use crate::layout::ChannelLayout;
use crate::{epoch_bit, EPOCH_MASK};

/// Sending half of a channel. Exactly one sender per channel.
pub struct Sender {
    layout: ChannelLayout,
    /// Next absolute sequence number to write.
    head: u64,
    /// Last value of the consumed counter read from the pool.
    cached_consumed: u64,
    /// Line (base address) holding messages not yet written back. At most
    /// one line can be dirty because messages are written sequentially;
    /// tracking the address (not a count) keeps the write-back correct even
    /// when `flush` happens mid-line.
    dirty_line: Option<u64>,
    /// Total counter refreshes (stats).
    pub counter_refreshes: u64,
}

impl Sender {
    /// Create a sender over a laid-out channel. The channel memory must be
    /// zero-initialized (freshly allocated pool regions are).
    pub fn new(layout: ChannelLayout) -> Self {
        Sender {
            layout,
            head: 0,
            cached_consumed: 0,
            dirty_line: None,
            counter_refreshes: 0,
        }
    }

    /// The channel layout.
    pub fn layout(&self) -> &ChannelLayout {
        &self.layout
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.head
    }

    /// Slots free according to the cached consumed counter (may
    /// underestimate until the next refresh).
    pub fn cached_free_slots(&self) -> u64 {
        self.layout.slots - (self.head - self.cached_consumed)
    }

    fn refresh_consumed(
        &mut self,
        host: &mut HostCtx,
        pool: &mut CxlPool,
    ) -> Result<(), ChannelError> {
        // The receiver updates this counter through its own cache; we must
        // invalidate our copy and fence before re-reading (§4).
        host.clflushopt(pool, self.layout.counter_addr);
        host.mfence(pool);
        let read = host.read_u64(pool, self.layout.counter_addr);
        self.counter_refreshes += 1;
        if read > self.head {
            // Torn write-back or corruption: a receiver cannot have
            // consumed messages that were never sent. Keep the old cached
            // value (conservative — at worst the ring looks full).
            return Err(ChannelError::CounterCorrupt {
                read,
                sent: self.head,
            });
        }
        self.cached_consumed = read;
        Ok(())
    }

    /// Try to enqueue one message. `msg` must be exactly `msg_size` bytes
    /// with the epoch bit (MSB of the last byte) clear; the sender owns that
    /// bit. Returns `Ok(false)` if the ring is full even after refreshing
    /// the consumed counter, and `Err` for malformed messages or a
    /// corrupted consumed counter (both recoverable: nothing was enqueued).
    pub fn try_send(
        &mut self,
        host: &mut HostCtx,
        pool: &mut CxlPool,
        msg: &[u8],
    ) -> Result<bool, ChannelError> {
        if msg.len() as u64 != self.layout.msg_size {
            return Err(ChannelError::BadMessageSize {
                got: msg.len(),
                expected: self.layout.msg_size as usize,
            });
        }
        if msg[msg.len() - 1] & EPOCH_MASK != 0 {
            return Err(ChannelError::EpochBitSet);
        }
        host.advance(host.costs.send_overhead_ns);
        if self.head - self.cached_consumed >= self.layout.slots {
            self.refresh_consumed(host, pool)?;
            if self.head - self.cached_consumed >= self.layout.slots {
                return Ok(false);
            }
        }
        let addr = self.layout.slot_addr(self.head);
        let line = line_base(addr);
        // Crossing into a new line: write back any straggler from the
        // previous one first so slots are published in order.
        if let Some(d) = self.dirty_line {
            if d != line {
                host.clwb(pool, d);
                host.publish(pool, d, 1);
                self.dirty_line = None;
            }
        }
        let epoch = epoch_bit(self.layout.lap(self.head));
        let mut stamped = [0u8; 64];
        let n = msg.len();
        stamped[..n].copy_from_slice(msg);
        stamped[n - 1] |= epoch;
        host.write(pool, addr, &stamped[..n]);
        let last_in_line =
            (self.head % self.layout.msgs_per_line()) == self.layout.msgs_per_line() - 1;
        self.head += 1;

        // CLWB once the line is full (4 msgs for 16 B, every msg for 64 B).
        if last_in_line {
            host.clwb(pool, addr);
            host.publish(pool, line, 1);
            self.dirty_line = None;
        } else {
            self.dirty_line = Some(line);
        }
        Ok(true)
    }

    /// Write back a partially filled line (called when the sending rate is
    /// low so messages don't linger invisibly in the sender's cache).
    pub fn flush(&mut self, host: &mut HostCtx, pool: &mut CxlPool) {
        if let Some(d) = self.dirty_line.take() {
            host.clwb(pool, d);
            host.publish(pool, d, 1);
        }
    }

    /// True if messages are written but not yet visible in the pool.
    pub fn has_unflushed(&self) -> bool {
        self.dirty_line.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_cxl::pool::{PortId, TrafficClass};
    use oasis_cxl::RegionAllocator;

    fn setup(slots: u64, msg: u64) -> (CxlPool, HostCtx, Sender) {
        let mut pool = CxlPool::new(1 << 20, 2);
        let mut ra = RegionAllocator::new(&pool);
        let r = ra.alloc(
            &mut pool,
            "chan",
            ChannelLayout::bytes_needed(slots, msg),
            TrafficClass::Message,
        );
        let layout = ChannelLayout::in_region(&r, slots, msg);
        let host = HostCtx::new(PortId(0), 0);
        (pool, host, Sender::new(layout))
    }

    #[test]
    fn send_stamps_epoch_and_flushes_full_lines() {
        let (mut pool, mut host, mut s) = setup(8, 16);
        let msg = [7u8; 16];
        for _ in 0..4 {
            assert!(s.try_send(&mut host, &mut pool, &msg).unwrap());
        }
        assert!(!s.has_unflushed(), "full line must be written back");
        pool.flush_pending();
        let mut slot = [0u8; 16];
        pool.peek(s.layout().slot_addr(0), &mut slot);
        assert_eq!(slot[15] & EPOCH_MASK, EPOCH_MASK, "lap-0 epoch set");
        assert_eq!(&slot[..15], &[7u8; 15][..]);
    }

    #[test]
    fn partial_line_needs_explicit_flush() {
        let (mut pool, mut host, mut s) = setup(8, 16);
        s.try_send(&mut host, &mut pool, &[1u8; 16]).unwrap();
        assert!(s.has_unflushed());
        pool.flush_pending();
        let mut slot = [0u8; 16];
        pool.peek(s.layout().slot_addr(0), &mut slot);
        assert_eq!(slot, [0u8; 16], "invisible before flush");
        s.flush(&mut host, &mut pool);
        pool.flush_pending();
        pool.peek(s.layout().slot_addr(0), &mut slot);
        assert_eq!(slot[0], 1);
    }

    #[test]
    fn ring_full_blocks_until_consumed_counter_moves() {
        let (mut pool, mut host, mut s) = setup(4, 16);
        for _ in 0..4 {
            assert!(s.try_send(&mut host, &mut pool, &[2u8; 16]).unwrap());
        }
        assert!(!s.try_send(&mut host, &mut pool, &[2u8; 16]).unwrap());
        assert_eq!(s.counter_refreshes, 1);
        // Simulate the receiver consuming 2 messages.
        pool.poke(s.layout().counter_addr, &2u64.to_le_bytes());
        assert!(s.try_send(&mut host, &mut pool, &[3u8; 16]).unwrap());
        assert_eq!(s.counter_refreshes, 2);
        assert_eq!(s.sent(), 5);
    }

    #[test]
    fn epoch_toggles_on_wrap() {
        let (mut pool, mut host, mut s) = setup(4, 16);
        for _ in 0..4 {
            s.try_send(&mut host, &mut pool, &[0u8; 16]).unwrap();
        }
        pool.poke(s.layout().counter_addr, &4u64.to_le_bytes());
        for _ in 0..4 {
            assert!(s.try_send(&mut host, &mut pool, &[0u8; 16]).unwrap());
        }
        pool.flush_pending();
        let mut slot = [0u8; 16];
        pool.peek(s.layout().slot_addr(4), &mut slot);
        assert_eq!(slot[15] & EPOCH_MASK, 0, "lap-1 epoch clear");
    }

    #[test]
    fn rejects_messages_with_epoch_bit_set() {
        let (mut pool, mut host, mut s) = setup(4, 16);
        let mut msg = [0u8; 16];
        msg[15] = 0x80;
        assert_eq!(
            s.try_send(&mut host, &mut pool, &msg),
            Err(ChannelError::EpochBitSet)
        );
        assert_eq!(s.sent(), 0, "nothing was enqueued");
    }

    #[test]
    fn rejects_wrong_message_size() {
        let (mut pool, mut host, mut s) = setup(4, 16);
        assert_eq!(
            s.try_send(&mut host, &mut pool, &[0u8; 8]),
            Err(ChannelError::BadMessageSize {
                got: 8,
                expected: 16
            })
        );
    }

    #[test]
    fn corrupted_counter_surfaces_as_error() {
        let (mut pool, mut host, mut s) = setup(4, 16);
        for _ in 0..4 {
            s.try_send(&mut host, &mut pool, &[1u8; 16]).unwrap();
        }
        // Corrupt the consumed counter beyond the send head (a torn
        // write-back would look like this).
        pool.poke(s.layout().counter_addr, &999u64.to_le_bytes());
        assert_eq!(
            s.try_send(&mut host, &mut pool, &[1u8; 16]),
            Err(ChannelError::CounterCorrupt { read: 999, sent: 4 })
        );
        // The cached value was not poisoned: repairing the counter heals
        // the channel.
        pool.poke(s.layout().counter_addr, &2u64.to_le_bytes());
        assert!(s.try_send(&mut host, &mut pool, &[1u8; 16]).unwrap());
    }

    #[test]
    fn mid_line_flush_then_burst_publishes_every_slot() {
        // Regression: a flush in the middle of a line used to desync the
        // dirty tracking, so a later burst crossing a line boundary left
        // the first line's tail slots dirty in the sender's cache forever,
        // deadlocking the receiver.
        let (mut pool, mut host, mut s) = setup(16, 16);
        // Two messages, flush mid-line.
        s.try_send(&mut host, &mut pool, &[1u8; 16]).unwrap();
        s.try_send(&mut host, &mut pool, &[2u8; 16]).unwrap();
        s.flush(&mut host, &mut pool);
        // Burst of four crossing into line 1 (slots 2,3,4,5).
        for v in 3u8..7 {
            s.try_send(&mut host, &mut pool, &[v; 16]).unwrap();
        }
        s.flush(&mut host, &mut pool);
        pool.flush_pending();
        // Every sent slot must be visible in pool memory with its epoch.
        for slot in 0..6u64 {
            let mut b = [0u8; 16];
            pool.peek(s.layout().slot_addr(slot), &mut b);
            assert_eq!(
                b[15] & EPOCH_MASK,
                EPOCH_MASK,
                "slot {slot} never written back"
            );
            assert_eq!(b[0], slot as u8 + 1, "slot {slot} payload");
        }
    }

    #[test]
    fn msg64_flushes_every_message() {
        let (mut pool, mut host, mut s) = setup(8, 64);
        s.try_send(&mut host, &mut pool, &[9u8; 64]).unwrap();
        assert!(!s.has_unflushed());
    }
}
