//! Memory layout of one message channel.
//!
//! ```text
//! region.base                                     counter (own line)
//! | slot 0 | slot 1 | ... | slot N-1 | pad-to-line | consumed: u64 |
//! ```
//!
//! The consumed counter gets its own cache line so sender polling of the
//! counter and receiver updates to it never false-share with message slots.

use oasis_cxl::region::Region;
use oasis_cxl::LINE;

/// Addressing for a channel placed inside a pool region.
#[derive(Clone, Debug)]
pub struct ChannelLayout {
    /// First byte of slot 0.
    pub base: u64,
    /// Number of message slots.
    pub slots: u64,
    /// Bytes per message (16 or 64).
    pub msg_size: u64,
    /// Address of the 8 B consumed counter.
    pub counter_addr: u64,
}

impl ChannelLayout {
    /// Bytes of pool memory a channel with these parameters needs.
    pub fn bytes_needed(slots: u64, msg_size: u64) -> u64 {
        let slot_bytes = slots * msg_size;
        let padded = (slot_bytes + LINE - 1) & !(LINE - 1);
        padded + LINE // one full line for the counter
    }

    /// Lay a channel out at the start of `region`. Panics if the region is
    /// too small or the message size does not divide the line size.
    pub fn in_region(region: &Region, slots: u64, msg_size: u64) -> Self {
        assert!(
            LINE.is_multiple_of(msg_size),
            "message size {msg_size} must divide the {LINE} B line"
        );
        assert!(slots > 0, "channel needs at least one slot");
        let needed = Self::bytes_needed(slots, msg_size);
        assert!(
            region.size >= needed,
            "region {} too small: {} < {needed}",
            region.name,
            region.size
        );
        let slot_bytes = slots * msg_size;
        let padded = (slot_bytes + LINE - 1) & !(LINE - 1);
        ChannelLayout {
            base: region.base,
            slots,
            msg_size,
            counter_addr: region.base + padded,
        }
    }

    /// Address of a slot by absolute sequence number (wraps around the
    /// ring).
    #[inline]
    pub fn slot_addr(&self, seq: u64) -> u64 {
        self.base + (seq % self.slots) * self.msg_size
    }

    /// Which lap around the ring a sequence number is on.
    #[inline]
    pub fn lap(&self, seq: u64) -> u64 {
        seq / self.slots
    }

    /// Messages per cache line (4 for 16 B, 1 for 64 B).
    #[inline]
    pub fn msgs_per_line(&self) -> u64 {
        LINE / self.msg_size
    }

    /// Base address of the cache line holding a slot.
    #[inline]
    pub fn line_of(&self, seq: u64) -> u64 {
        oasis_cxl::line_base(self.slot_addr(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_cxl::pool::TrafficClass;
    use oasis_cxl::{CxlPool, RegionAllocator};

    fn region(bytes: u64) -> (CxlPool, Region) {
        let mut pool = CxlPool::new(1 << 20, 1);
        let mut ra = RegionAllocator::new(&pool);
        let r = ra.alloc(&mut pool, "chan", bytes, TrafficClass::Message);
        (pool, r)
    }

    #[test]
    fn bytes_needed_includes_counter_line() {
        assert_eq!(ChannelLayout::bytes_needed(4, 16), 64 + 64);
        assert_eq!(ChannelLayout::bytes_needed(8192, 16), 8192 * 16 + 64);
        assert_eq!(ChannelLayout::bytes_needed(3, 16), 64 + 64); // 48 pads to 64
    }

    #[test]
    fn slot_addresses_wrap() {
        let (_pool, r) = region(ChannelLayout::bytes_needed(8, 16));
        let l = ChannelLayout::in_region(&r, 8, 16);
        assert_eq!(l.slot_addr(0), r.base);
        assert_eq!(l.slot_addr(7), r.base + 7 * 16);
        assert_eq!(l.slot_addr(8), r.base); // wrapped
        assert_eq!(l.lap(7), 0);
        assert_eq!(l.lap(8), 1);
    }

    #[test]
    fn counter_has_its_own_line() {
        let (_pool, r) = region(ChannelLayout::bytes_needed(8, 16));
        let l = ChannelLayout::in_region(&r, 8, 16);
        assert_eq!(l.counter_addr % LINE, 0);
        assert!(l.counter_addr >= l.slot_addr(7) + 16);
    }

    #[test]
    fn msgs_per_line_by_size() {
        let (_p1, r1) = region(ChannelLayout::bytes_needed(8, 16));
        assert_eq!(ChannelLayout::in_region(&r1, 8, 16).msgs_per_line(), 4);
        let (_p2, r2) = region(ChannelLayout::bytes_needed(8, 64));
        assert_eq!(ChannelLayout::in_region(&r2, 8, 64).msgs_per_line(), 1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_region_panics() {
        let (_pool, r) = region(64);
        ChannelLayout::in_region(&r, 8192, 16);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_msg_size_panics() {
        let (_pool, r) = region(1024);
        ChannelLayout::in_region(&r, 8, 24);
    }
}
