//! Channel receiver with the four polling policies of Fig. 6.
//!
//! The receiver's problem: after the sender overwrites a slot in pool
//! memory, a stale copy of that line may still sit in the receiver's CPU
//! cache, and — because the pool is not coherent — nothing will ever
//! invalidate it. Each policy draws the invalidation lines differently:
//!
//! * **BypassCache** (①): `CLFLUSHOPT` + `MFENCE` before *every* poll, so
//!   every read goes to the pool. Correct but slow (every message pays full
//!   CXL latency) and prefetch-hostile.
//! * **NaivePrefetch** (②): keep lines cached, software-prefetch ahead,
//!   invalidate the current line only after an empty poll. Fails to scale:
//!   consumed lines from the previous lap linger in the cache, and
//!   prefetches *skip lines that are already present*, so the stale copies
//!   block the fast path.
//! * **InvalidateConsumed** (③): also flush each line the moment all its
//!   messages are consumed. Prefetching now works across laps → order of
//!   magnitude more throughput. But at moderate load, prefetching itself
//!   brings in lines the sender has not written yet; those stale prefetched
//!   lines cause a latency spike.
//! * **InvalidatePrefetched** (④): after an empty poll, also flush the
//!   entire speculatively prefetched window so it is re-fetched fresh. This
//!   is the design Oasis ships.

use oasis_cxl::{CxlPool, HostCtx};

use crate::layout::ChannelLayout;
use crate::{epoch_bit, EPOCH_MASK};

/// Receiver polling/invalidation policy (Fig. 6 designs ①–④).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// ① Invalidate + fence before every poll; never rely on the cache.
    BypassCache,
    /// ② Cache + prefetch; invalidate current line only after empty polls.
    NaivePrefetch,
    /// ③ ② plus invalidating each fully consumed line.
    InvalidateConsumed,
    /// ④ ③ plus invalidating the prefetched window after empty polls.
    InvalidatePrefetched,
}

impl Policy {
    /// All policies in Fig. 6 order.
    pub const ALL: [Policy; 4] = [
        Policy::BypassCache,
        Policy::NaivePrefetch,
        Policy::InvalidateConsumed,
        Policy::InvalidatePrefetched,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::BypassCache => "bypass-cache",
            Policy::NaivePrefetch => "naive-prefetch",
            Policy::InvalidateConsumed => "+invalidate-consumed",
            Policy::InvalidatePrefetched => "+invalidate-prefetched",
        }
    }
}

/// Receiving half of a channel. Exactly one receiver per channel.
pub struct Receiver {
    layout: ChannelLayout,
    policy: Policy,
    /// Next absolute sequence number to consume.
    tail: u64,
    /// Prefetch window depth in cache lines (paper: 16 performs best).
    prefetch_depth: u64,
    /// Publish the consumed counter after this many messages (paper
    /// default: half the channel capacity).
    publish_batch: u64,
    /// Messages consumed since the counter was last published.
    unpublished: u64,
    /// Highest absolute line index for which a prefetch has been issued.
    prefetched_until: u64,
    /// Empty polls observed (stats).
    pub empty_polls: u64,
}

impl Receiver {
    /// Receiver with the paper's defaults: 16-line prefetch window,
    /// counter published every `slots / 2` messages.
    pub fn new(layout: ChannelLayout, policy: Policy) -> Self {
        let batch = (layout.slots / 2).max(1);
        Self::with_params(layout, policy, 16, batch)
    }

    /// Receiver with explicit prefetch depth and publish batch.
    pub fn with_params(
        layout: ChannelLayout,
        policy: Policy,
        prefetch_depth: u64,
        publish_batch: u64,
    ) -> Self {
        assert!(publish_batch >= 1 && publish_batch <= layout.slots);
        Receiver {
            layout,
            policy,
            tail: 0,
            prefetch_depth,
            publish_batch,
            unpublished: 0,
            prefetched_until: 0,
            empty_polls: 0,
        }
    }

    /// The channel layout.
    pub fn layout(&self) -> &ChannelLayout {
        &self.layout
    }

    /// Messages consumed so far.
    pub fn consumed(&self) -> u64 {
        self.tail
    }

    /// The policy in use.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    #[inline]
    fn line_index(&self, seq: u64) -> u64 {
        seq / self.layout.msgs_per_line()
    }

    #[inline]
    fn line_addr_of_index(&self, line_idx: u64) -> u64 {
        let lines_in_ring = self.layout.slots / self.layout.msgs_per_line();
        self.layout.base + (line_idx % lines_in_ring) * oasis_cxl::LINE
    }

    /// Publish the consumed counter so the sender can reuse slots. Called
    /// automatically every `publish_batch` messages; engines may also call
    /// it when going idle so a slow channel never stalls its sender
    /// indefinitely.
    pub fn publish_consumed(&mut self, host: &mut HostCtx, pool: &mut CxlPool) {
        if self.unpublished == 0 {
            return;
        }
        host.write_u64(pool, self.layout.counter_addr, self.tail);
        host.clwb(pool, self.layout.counter_addr);
        host.publish(pool, self.layout.counter_addr, 8);
        self.unpublished = 0;
    }

    /// Poll for one message. On success copies the message (with the epoch
    /// bit cleared) into `out` and returns `true`.
    pub fn try_recv(&mut self, host: &mut HostCtx, pool: &mut CxlPool, out: &mut [u8]) -> bool {
        let msg_size = self.layout.msg_size as usize;
        assert_eq!(out.len(), msg_size, "output buffer size");
        host.advance(host.costs.poll_overhead_ns);
        let seq = self.tail;
        let addr = self.layout.slot_addr(seq);
        let expected = epoch_bit(self.layout.lap(seq));

        if self.policy == Policy::BypassCache {
            host.clflushopt(pool, addr);
            host.mfence(pool);
        }

        let mut buf = [0u8; 64];
        host.read(pool, addr, &mut buf[..msg_size]);
        let valid = (buf[msg_size - 1] & EPOCH_MASK) == expected;

        if valid {
            out.copy_from_slice(&buf[..msg_size]);
            out[msg_size - 1] &= !EPOCH_MASK;
            self.tail += 1;
            self.unpublished += 1;
            if self.unpublished >= self.publish_batch {
                self.publish_consumed(host, pool);
            }
            if self.policy != Policy::BypassCache {
                // Flush a line the moment its last message is consumed so the
                // next lap's prefetch can pull fresh data (③ and ④).
                if matches!(
                    self.policy,
                    Policy::InvalidateConsumed | Policy::InvalidatePrefetched
                ) && self.tail.is_multiple_of(self.layout.msgs_per_line())
                {
                    host.clflushopt(pool, self.layout.line_of(self.tail - 1));
                }
                // Extend the prefetch window.
                let target = self.line_index(self.tail) + self.prefetch_depth;
                while self.prefetched_until < target {
                    self.prefetched_until += 1;
                    let la = self.line_addr_of_index(self.prefetched_until);
                    host.prefetch(pool, la);
                }
            }
            true
        } else {
            self.empty_polls += 1;
            match self.policy {
                Policy::BypassCache => {}
                Policy::NaivePrefetch | Policy::InvalidateConsumed => {
                    // Invalidate only the current line so the next poll
                    // re-fetches it from the pool.
                    host.clflushopt(pool, addr);
                    host.mfence(pool);
                }
                Policy::InvalidatePrefetched => {
                    // Invalidate the current line *and* every speculatively
                    // prefetched line ahead of it (④): those lines were
                    // fetched before the sender wrote them and would
                    // otherwise serve stale data when we advance into them.
                    host.clflushopt(pool, addr);
                    let cur = self.line_index(seq);
                    let mut l = cur + 1;
                    while l <= self.prefetched_until {
                        host.clflushopt(pool, self.line_addr_of_index(l));
                        l += 1;
                    }
                    self.prefetched_until = cur;
                    host.mfence(pool);
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::Sender;
    use oasis_cxl::pool::{PortId, TrafficClass};
    use oasis_cxl::RegionAllocator;

    fn setup(
        slots: u64,
        msg: u64,
        policy: Policy,
    ) -> (CxlPool, HostCtx, HostCtx, Sender, Receiver) {
        let mut pool = CxlPool::new(1 << 20, 2);
        let mut ra = RegionAllocator::new(&pool);
        let r = ra.alloc(
            &mut pool,
            "chan",
            ChannelLayout::bytes_needed(slots, msg),
            TrafficClass::Message,
        );
        let layout = ChannelLayout::in_region(&r, slots, msg);
        let tx_host = HostCtx::new(PortId(0), 0);
        let rx_host = HostCtx::new(PortId(1), 0);
        let s = Sender::new(layout.clone());
        let r = Receiver::new(layout, policy);
        (pool, tx_host, rx_host, s, r)
    }

    /// End-to-end transfer of `n` messages for a policy, stepping hosts in
    /// clock order and advancing the idle side when it stalls.
    fn transfer(policy: Policy, n: u64, slots: u64) {
        let (mut pool, mut th, mut rh, mut s, mut r) = setup(slots, 16, policy);
        let mut sent = 0u64;
        let mut received = Vec::new();
        let mut spins = 0u64;
        while (received.len() as u64) < n {
            spins += 1;
            assert!(spins < 50 * n + 10_000, "transfer stuck: {policy:?}");
            // Keep host clocks roughly in lockstep like the co-sim runner.
            if sent < n && th.clock <= rh.clock {
                let mut msg = [0u8; 16];
                msg[..8].copy_from_slice(&sent.to_le_bytes());
                if s.try_send(&mut th, &mut pool, &msg).unwrap() {
                    sent += 1;
                    s.flush(&mut th, &mut pool);
                }
            } else if sent < n {
                // Let the receiver catch up.
                let mut out = [0u8; 16];
                if r.try_recv(&mut rh, &mut pool, &mut out) {
                    received.push(u64::from_le_bytes(out[..8].try_into().unwrap()));
                }
            } else {
                // Everything sent; drain. Advance the receiver clock past
                // any write-visibility delay.
                rh.advance(100);
                let mut out = [0u8; 16];
                if r.try_recv(&mut rh, &mut pool, &mut out) {
                    received.push(u64::from_le_bytes(out[..8].try_into().unwrap()));
                }
            }
        }
        // FIFO order, no loss, no duplication — for every policy.
        assert_eq!(received, (0..n).collect::<Vec<_>>(), "{policy:?}");
    }

    #[test]
    fn all_policies_deliver_fifo_within_one_lap() {
        for p in Policy::ALL {
            transfer(p, 6, 8);
        }
    }

    #[test]
    fn all_policies_deliver_fifo_across_many_laps() {
        for p in Policy::ALL {
            transfer(p, 100, 8);
        }
    }

    #[test]
    fn empty_channel_polls_empty() {
        let (mut pool, _th, mut rh, _s, mut r) = setup(8, 16, Policy::InvalidatePrefetched);
        let mut out = [0u8; 16];
        assert!(!r.try_recv(&mut rh, &mut pool, &mut out));
        assert_eq!(r.empty_polls, 1);
        assert_eq!(r.consumed(), 0);
    }

    #[test]
    fn consumed_counter_published_in_batches() {
        let (mut pool, mut th, mut rh, mut s, mut r) = setup(8, 16, Policy::BypassCache);
        // publish_batch = slots/2 = 4.
        for i in 0..6u64 {
            let mut m = [0u8; 16];
            m[0] = i as u8;
            assert!(s.try_send(&mut th, &mut pool, &m).unwrap());
        }
        s.flush(&mut th, &mut pool);
        rh.advance(10_000);
        let mut out = [0u8; 16];
        for _ in 0..3 {
            assert!(r.try_recv(&mut rh, &mut pool, &mut out));
        }
        pool.flush_pending();
        let mut c = [0u8; 8];
        pool.peek(r.layout().counter_addr, &mut c);
        assert_eq!(u64::from_le_bytes(c), 0, "below batch: not yet published");
        assert!(r.try_recv(&mut rh, &mut pool, &mut out));
        pool.flush_pending();
        pool.peek(r.layout().counter_addr, &mut c);
        assert_eq!(u64::from_le_bytes(c), 4, "published at batch boundary");
    }

    #[test]
    fn explicit_publish_flushes_partial_batch() {
        let (mut pool, mut th, mut rh, mut s, mut r) = setup(8, 16, Policy::BypassCache);
        let m = [0u8; 16];
        s.try_send(&mut th, &mut pool, &m).unwrap();
        s.flush(&mut th, &mut pool);
        rh.advance(10_000);
        let mut out = [0u8; 16];
        assert!(r.try_recv(&mut rh, &mut pool, &mut out));
        r.publish_consumed(&mut rh, &mut pool);
        pool.flush_pending();
        let mut c = [0u8; 8];
        pool.peek(r.layout().counter_addr, &mut c);
        assert_eq!(u64::from_le_bytes(c), 1);
    }

    #[test]
    fn epoch_bit_cleared_in_delivered_message() {
        let (mut pool, mut th, mut rh, mut s, mut r) = setup(8, 16, Policy::BypassCache);
        let mut m = [0xAAu8; 16];
        m[15] = 0x7F; // all payload bits set, epoch clear
        s.try_send(&mut th, &mut pool, &m).unwrap();
        s.flush(&mut th, &mut pool);
        rh.advance(10_000);
        let mut out = [0u8; 16];
        assert!(r.try_recv(&mut rh, &mut pool, &mut out));
        assert_eq!(out, m);
    }

    #[test]
    fn naive_prefetch_reads_stale_line_until_empty_poll_invalidation() {
        // This test pins down the exact mechanism of Fig. 6 ②: a consumed
        // line is overwritten by the sender, but the receiver's stale copy
        // masks it until an empty poll triggers invalidation.
        let (mut pool, mut th, mut rh, mut s, mut r) = setup(4, 16, Policy::NaivePrefetch);
        let m = [1u8; 16];
        for _ in 0..4 {
            s.try_send(&mut th, &mut pool, &m).unwrap();
        }
        rh.advance(10_000);
        let mut out = [0u8; 16];
        for _ in 0..4 {
            assert!(r.try_recv(&mut rh, &mut pool, &mut out));
        }
        // Receiver published consumed=4 at batch boundary (batch=2); the
        // counter write-back becomes visible after the CXL propagation
        // delay, so move the sender's clock past it before it refreshes.
        th.advance(30_000);
        // Sender wraps and overwrites slot 0 (lap 1, epoch flips).
        let m2 = [2u8; 16];
        for _ in 0..4 {
            assert!(s.try_send(&mut th, &mut pool, &m2).unwrap());
        }
        rh.advance(10_000);
        // First poll: stale cached line (lap-0 epoch) -> empty poll.
        assert!(!r.try_recv(&mut rh, &mut pool, &mut out));
        // The empty poll invalidated the line; once the sender's write-back
        // has propagated, the new message appears.
        rh.advance(40_000);
        assert!(r.try_recv(&mut rh, &mut pool, &mut out));
        assert_eq!(out[0], 2);
    }
}
