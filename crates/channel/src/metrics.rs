//! Metric name registry for `oasis-channel` (`oasis-check` `metric-name`
//! rule: all metric name literals live here, `snake_case`, crate-prefixed).
//!
//! Tags are channel/endpoint indices chosen by the harness (0 for a single
//! co-simulated pair).

/// Messages sent during the measurement window.
pub const SENT: &str = "channel.sent";
/// Messages received during the measurement window.
pub const RECEIVED: &str = "channel.received";
/// Histogram: one-way message latency in nanoseconds.
pub const LATENCY_NS: &str = "channel.latency_ns";
/// Lifetime messages the sender has enqueued.
pub const SENDER_SENT_TOTAL: &str = "channel.sender_sent_total";
/// Lifetime messages the receiver has consumed.
pub const RECEIVER_CONSUMED_TOTAL: &str = "channel.receiver_consumed_total";
/// Ring depth at export time (sent minus consumed).
pub const DEPTH: &str = "channel.depth";
/// Consumed-counter refreshes the sender performed (ring-full probes).
pub const COUNTER_REFRESHES: &str = "channel.counter_refreshes";
/// Receiver polls that found no message.
pub const EMPTY_POLLS: &str = "channel.empty_polls";
/// Duplicate sequence numbers dropped by a receive-side dedup window.
pub const DEDUP_DROPS: &str = "channel.dedup_drops";
