//! Metric export for message-channel endpoints (always compiled; the
//! figures' snapshot-sourced numbers depend on it with `obs` off too).

use oasis_obs::MetricSink;

use crate::metrics;
use crate::receiver::Receiver;
use crate::sender::Sender;

/// Export one sender/receiver pair's lifetime tallies into `sink` under
/// `tag` (the harness's channel index).
pub fn export_endpoint_metrics(
    sender: &Sender,
    receiver: &Receiver,
    tag: u32,
    sink: &mut MetricSink,
) {
    sink.set(metrics::SENDER_SENT_TOTAL, tag, sender.sent());
    sink.set(metrics::RECEIVER_CONSUMED_TOTAL, tag, receiver.consumed());
    sink.set(
        metrics::DEPTH,
        tag,
        sender.sent().saturating_sub(receiver.consumed()),
    );
    sink.set(metrics::COUNTER_REFRESHES, tag, sender.counter_refreshes);
    sink.set(metrics::EMPTY_POLLS, tag, receiver.empty_polls);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ChannelLayout;
    use crate::receiver::Policy;
    use oasis_cxl::pool::{PortId, TrafficClass};
    use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};

    #[test]
    fn endpoint_export_tracks_traffic() {
        let mut pool = CxlPool::new(1 << 20, 2);
        let mut ra = RegionAllocator::new(&pool);
        let region = ra.alloc(
            &mut pool,
            "t",
            ChannelLayout::bytes_needed(64, 16),
            TrafficClass::Message,
        );
        let layout = ChannelLayout::in_region(&region, 64, 16);
        let mut tx_host = HostCtx::new(PortId(0), 0);
        let mut rx_host = HostCtx::new(PortId(1), 0);
        let mut tx = Sender::new(layout.clone());
        let mut rx = Receiver::new(layout, Policy::InvalidatePrefetched);

        let msg = [7u8; 16];
        for _ in 0..5 {
            assert!(matches!(
                tx.try_send(&mut tx_host, &mut pool, &msg),
                Ok(true)
            ));
        }
        tx.flush(&mut tx_host, &mut pool);
        pool.flush_pending();
        let mut out = [0u8; 16];
        rx_host.clock = tx_host.clock;
        let mut got = 0;
        for _ in 0..32 {
            if rx.try_recv(&mut rx_host, &mut pool, &mut out) {
                got += 1;
            }
        }
        assert!(got >= 1, "at least one message must arrive");

        let mut sink = MetricSink::new();
        export_endpoint_metrics(&tx, &rx, 3, &mut sink);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(metrics::SENDER_SENT_TOTAL, 3), 5);
        assert_eq!(snap.counter(metrics::RECEIVER_CONSUMED_TOTAL, 3), got);
        assert_eq!(snap.counter(metrics::DEPTH, 3), 5 - got);
    }
}
