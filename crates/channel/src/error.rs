//! Typed channel errors.
//!
//! The engine/channel message paths used to `assert!`/`unwrap()` on
//! malformed input; with fault injection in the picture (ISSUE 2), a
//! corrupted or replayed message must surface as a *recoverable* error the
//! driver can count and drop, not a panic that kills the whole pod
//! simulation.

use std::fmt;

/// An error on the channel message path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// The caller handed a message whose length does not match the
    /// channel's fixed message size.
    BadMessageSize {
        /// Offered length.
        got: usize,
        /// The channel's message size.
        expected: usize,
    },
    /// The caller's message already has the epoch bit set; that bit is
    /// owned by the channel and a set bit indicates a corrupted or
    /// replayed buffer.
    EpochBitSet,
    /// The consumed counter read from pool memory ran *backwards* (or past
    /// the send head) — torn write-back or corruption of the counter line.
    CounterCorrupt {
        /// Counter value read from the pool.
        read: u64,
        /// Messages actually sent.
        sent: u64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::BadMessageSize { got, expected } => {
                write!(f, "message is {got} bytes, channel carries {expected}")
            }
            ChannelError::EpochBitSet => {
                write!(f, "epoch bit is owned by the channel but arrived set")
            }
            ChannelError::CounterCorrupt { read, sent } => {
                write!(f, "consumed counter {read} exceeds sent count {sent}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}
