//! Reliability helpers layered over the raw SPSC rings: retry pacing with
//! exponential backoff, and sequence-number deduplication.
//!
//! The channels themselves never lose messages — pool memory is reliable —
//! but the *peers* can: a crashed-and-restarted host replays the commands
//! it had in flight (its intent log survives locally, the acknowledgements
//! did not), and an SSD in a fault window swallows commands whole. The
//! storage engine composes these two pieces: the frontend arms a
//! [`RetryState`] per in-flight command and resubmits on expiry; the
//! backend keeps a [`SeqWindow`] of recently completed command ids and
//! answers replays from its completion cache instead of re-executing them
//! (exactly-once execution, at-least-once delivery).

use oasis_sim::time::{SimDuration, SimTime};

/// Retry pacing policy: a base timeout, an exponential backoff multiplier,
/// and an attempt cap.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Time to wait for a completion before the first resubmission.
    pub timeout: SimDuration,
    /// Each further wait is multiplied by this (≥ 1).
    pub backoff: u32,
    /// Total attempts (first try included) before giving up.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// A policy that never retries (timeout effectively infinite).
    pub fn off() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_nanos(u64::MAX / 4),
            backoff: 1,
            max_attempts: 1,
        }
    }
}

/// Live retry state for one in-flight command.
#[derive(Clone, Copy, Debug)]
pub struct RetryState {
    /// Attempts made so far (1 after the first send).
    pub attempts: u32,
    /// When the current attempt expires.
    pub deadline: SimTime,
    /// The wait armed for the current attempt.
    wait: SimDuration,
}

impl RetryState {
    /// Arm the first attempt at `now`.
    pub fn armed(policy: &RetryPolicy, now: SimTime) -> Self {
        RetryState {
            attempts: 1,
            deadline: now + policy.timeout,
            wait: policy.timeout,
        }
    }

    /// Has the current attempt expired?
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.deadline
    }

    /// Are more attempts allowed?
    pub fn can_retry(&self, policy: &RetryPolicy) -> bool {
        self.attempts < policy.max_attempts
    }

    /// Record a resubmission at `now`: bump the attempt count and arm the
    /// next (backed-off) deadline.
    pub fn rearm(&mut self, policy: &RetryPolicy, now: SimTime) {
        self.attempts += 1;
        self.wait = SimDuration::from_nanos(
            self.wait
                .as_nanos()
                .saturating_mul(policy.backoff.max(1) as u64),
        );
        self.deadline = now + self.wait;
    }

    /// Decompose into `(attempts, deadline, current wait)` for snapshot
    /// serialization; [`RetryState::from_parts`] inverts it exactly.
    pub fn to_parts(&self) -> (u32, SimTime, SimDuration) {
        (self.attempts, self.deadline, self.wait)
    }

    /// Rebuild from [`RetryState::to_parts`] output (snapshot restore).
    pub fn from_parts(attempts: u32, deadline: SimTime, wait: SimDuration) -> Self {
        RetryState {
            attempts,
            deadline,
            wait,
        }
    }
}

/// A sliding dedup window over `u16` sequence numbers (NVMe-style command
/// ids that wrap). Remembers the most recent `capacity` ids seen; `insert`
/// returns `false` for a duplicate. Eviction is FIFO, so as long as fewer
/// than `capacity` commands are issued between a command and its replay,
/// the replay is recognized.
#[derive(Clone, Debug)]
pub struct SeqWindow {
    /// Insertion order, oldest first.
    order: std::collections::VecDeque<u16>,
    /// Presence bitmap over the full u16 space (8 KiB — cheap and O(1)).
    present: Vec<u64>,
    capacity: usize,
    /// Duplicates rejected over the window's lifetime (telemetry; exported
    /// as `channel.dedup_drops`).
    pub dup_hits: u64,
}

impl SeqWindow {
    /// Window remembering the last `capacity` sequence numbers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        SeqWindow {
            order: std::collections::VecDeque::with_capacity(capacity),
            present: vec![0u64; 1024],
            capacity,
            dup_hits: 0,
        }
    }

    #[inline]
    fn bit(seq: u16) -> (usize, u64) {
        ((seq >> 6) as usize, 1u64 << (seq & 63))
    }

    /// Has `seq` been seen within the window?
    pub fn contains(&self, seq: u16) -> bool {
        let (w, m) = Self::bit(seq);
        self.present[w] & m != 0
    }

    /// Record `seq`. Returns `true` if it is new, `false` for a duplicate.
    pub fn insert(&mut self, seq: u16) -> bool {
        self.insert_evicting(seq).0
    }

    /// Record `seq`, also reporting the id the full window pushed out (if
    /// any) so callers can keep a side table in lockstep with the window.
    pub fn insert_evicting(&mut self, seq: u16) -> (bool, Option<u16>) {
        if self.contains(seq) {
            self.dup_hits += 1;
            return (false, None);
        }
        let mut evicted = None;
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                let (w, m) = Self::bit(old);
                self.present[w] &= !m;
                evicted = Some(old);
            }
        }
        let (w, m) = Self::bit(seq);
        self.present[w] |= m;
        self.order.push_back(seq);
        (true, evicted)
    }

    /// Sequence numbers currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// The window's fixed capacity (set at construction).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Decompose into `(capacity, remembered ids oldest-first, dup_hits)`
    /// for snapshot serialization; [`SeqWindow::from_parts`] inverts it.
    /// The presence bitmap is derived state and is rebuilt on restore.
    pub fn to_parts(&self) -> (usize, Vec<u16>, u64) {
        (
            self.capacity,
            self.order.iter().copied().collect(),
            self.dup_hits,
        )
    }

    /// Rebuild from [`SeqWindow::to_parts`] output (snapshot restore).
    /// Ids beyond `capacity` are ignored; duplicates collapse, preserving
    /// the window's invariant that every remembered id is present once.
    pub fn from_parts(capacity: usize, order: &[u16], dup_hits: u64) -> Self {
        let mut w = SeqWindow::new(capacity.max(1));
        for &seq in order.iter().take(w.capacity) {
            w.insert(seq);
        }
        // `insert` above counted any malformed duplicates; the lifetime
        // tally is authoritative from the snapshot.
        w.dup_hits = dup_hits;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_doubles_waits() {
        let policy = RetryPolicy {
            timeout: SimDuration::from_micros(100),
            backoff: 2,
            max_attempts: 4,
        };
        let t0 = SimTime::from_millis(1);
        let mut st = RetryState::armed(&policy, t0);
        assert!(!st.expired(t0));
        assert!(st.expired(t0 + SimDuration::from_micros(100)));
        let t1 = st.deadline;
        st.rearm(&policy, t1);
        assert_eq!(st.attempts, 2);
        assert_eq!(st.deadline, t1 + SimDuration::from_micros(200));
        let t2 = st.deadline;
        st.rearm(&policy, t2);
        assert_eq!(st.deadline, t2 + SimDuration::from_micros(400));
        assert!(st.can_retry(&policy));
        st.rearm(&policy, st.deadline);
        assert!(!st.can_retry(&policy), "attempt cap reached");
    }

    #[test]
    fn retry_off_never_expires_in_practice() {
        let policy = RetryPolicy::off();
        let st = RetryState::armed(&policy, SimTime::ZERO);
        assert!(!st.expired(SimTime::from_secs(1_000_000)));
        assert!(!st.can_retry(&policy));
    }

    #[test]
    fn seq_window_detects_duplicates() {
        let mut w = SeqWindow::new(4);
        assert!(w.insert(10));
        assert!(w.insert(11));
        assert!(!w.insert(10), "duplicate detected");
        assert!(w.contains(11));
        assert!(!w.contains(12));
    }

    #[test]
    fn seq_window_evicts_fifo() {
        let mut w = SeqWindow::new(2);
        assert!(w.insert(1));
        assert!(w.insert(2));
        assert!(w.insert(3)); // evicts 1
        assert_eq!(w.len(), 2);
        assert!(!w.contains(1), "oldest evicted");
        assert!(w.insert(1), "forgotten ids count as new again");
        assert!(!w.contains(2), "2 evicted in turn");
    }

    #[test]
    fn seq_window_reports_evictions() {
        let mut w = SeqWindow::new(2);
        assert_eq!(w.insert_evicting(5), (true, None));
        assert_eq!(w.insert_evicting(5), (false, None));
        assert_eq!(w.insert_evicting(6), (true, None));
        assert_eq!(w.insert_evicting(7), (true, Some(5)));
        assert_eq!(w.insert_evicting(8), (true, Some(6)));
    }

    #[test]
    fn retry_state_parts_roundtrip() {
        let policy = RetryPolicy {
            timeout: SimDuration::from_micros(50),
            backoff: 3,
            max_attempts: 5,
        };
        let mut st = RetryState::armed(&policy, SimTime::from_millis(2));
        st.rearm(&policy, st.deadline);
        let (attempts, deadline, wait) = st.to_parts();
        let mut back = RetryState::from_parts(attempts, deadline, wait);
        assert_eq!(back.attempts, st.attempts);
        assert_eq!(back.deadline, st.deadline);
        // The private wait survives: the next rearm backs off identically.
        back.rearm(&policy, back.deadline);
        st.rearm(&policy, st.deadline);
        assert_eq!(back.deadline, st.deadline);
    }

    #[test]
    fn seq_window_parts_roundtrip() {
        let mut w = SeqWindow::new(4);
        for seq in [9u16, 65_535, 0, 9, 3] {
            w.insert(seq);
        }
        assert_eq!(w.dup_hits, 1);
        let (cap, order, dups) = w.to_parts();
        let back = SeqWindow::from_parts(cap, &order, dups);
        assert_eq!(back.to_parts(), (cap, order, dups));
        assert!(back.contains(65_535));
        assert!(!back.contains(7));
    }

    #[test]
    fn seq_window_handles_wraparound_ids() {
        let mut w = SeqWindow::new(8);
        for seq in [65_533u16, 65_534, 65_535, 0, 1, 2] {
            assert!(w.insert(seq));
        }
        for seq in [65_533u16, 65_535, 0, 2] {
            assert!(!w.insert(seq));
        }
    }
}
