//! Co-simulated one-way message-passing microbenchmark (Fig. 6).
//!
//! The paper measures one-way throughput and latency on a two-socket host
//! whose sockets share a time source but *not* cache coherence over the CXL
//! device. We reproduce that setup by co-simulating a paced sender and a
//! busy-polling receiver: whichever host has the lower local clock steps
//! next, so their clocks stay interleaved exactly like two real cores
//! sharing a wall clock.
//!
//! The sender embeds its local clock in each message; the receiver records
//! `receive_time - send_time` into a histogram. The first 20 % of the run
//! is warm-up and excluded.

use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};
use oasis_obs::{MetricSink, MetricsSnapshot};
use oasis_sim::time::{SimDuration, SimTime};

use crate::layout::ChannelLayout;
use crate::metrics;
use crate::receiver::{Policy, Receiver};
use crate::sender::Sender;

/// Results of one offered-load point, derived from a
/// [`MetricsSnapshot`] (see [`PairReport::from_snapshot`]) — the runner
/// keeps no private tallies.
#[derive(Clone, Debug)]
pub struct PairReport {
    /// The policy measured.
    pub policy: Policy,
    /// Offered load in million messages per second (`f64::INFINITY` for a
    /// saturation run).
    pub offered_mops: f64,
    /// Achieved throughput in million messages per second.
    pub achieved_mops: f64,
    /// Median one-way latency in nanoseconds.
    pub p50_latency_ns: u64,
    /// P99 one-way latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Messages sent / received during the measurement window.
    pub sent: u64,
    /// Messages received during the measurement window.
    pub received: u64,
}

impl PairReport {
    /// Derive the figure-facing numbers from a measurement snapshot: the
    /// counters under `channel.*` tag 0 and the one-way latency histogram.
    pub fn from_snapshot(
        policy: Policy,
        offered_mops: f64,
        duration: SimDuration,
        snap: &MetricsSnapshot,
    ) -> PairReport {
        let warmup_ns = duration.as_nanos() / 5;
        let measured_secs = (duration.as_nanos() - warmup_ns) as f64 / 1e9;
        let received = snap.counter(metrics::RECEIVED, 0);
        let (p50, p99) = match snap.hist(metrics::LATENCY_NS, 0) {
            Some(h) => (h.percentile(50.0), h.percentile(99.0)),
            None => (0, 0),
        };
        PairReport {
            policy,
            offered_mops,
            achieved_mops: received as f64 / measured_secs / 1e6,
            p50_latency_ns: p50,
            p99_latency_ns: p99,
            sent: snap.counter(metrics::SENT, 0),
            received,
        }
    }
}

/// Run a sender/receiver pair at a given offered load for `duration` of
/// simulated time and report achieved throughput and latency.
///
/// * `offered_mops = f64::INFINITY` sends as fast as the channel allows
///   (saturation throughput).
/// * 16 B messages, first 8 B carry the send timestamp.
pub fn run_offered_load(
    policy: Policy,
    slots: u64,
    offered_mops: f64,
    duration: SimDuration,
) -> PairReport {
    run_offered_load_sized(policy, slots, 16, offered_mops, duration)
}

/// Like [`run_offered_load`] but with an explicit message size (64 B for
/// the storage engine's NVMe-mirroring channels, §3.4).
pub fn run_offered_load_sized(
    policy: Policy,
    slots: u64,
    msg_size: u64,
    offered_mops: f64,
    duration: SimDuration,
) -> PairReport {
    run_offered_load_snap(policy, slots, msg_size, offered_mops, duration).0
}

/// Like [`run_offered_load_sized`], also returning the full measurement
/// snapshot the report was derived from (endpoint tallies, latency
/// histogram buckets) for exporters and the bench-regression artifacts.
pub fn run_offered_load_snap(
    policy: Policy,
    slots: u64,
    msg_size: u64,
    offered_mops: f64,
    duration: SimDuration,
) -> (PairReport, MetricsSnapshot) {
    let mut pool = CxlPool::new(
        (ChannelLayout::bytes_needed(slots, msg_size) + 4096).next_power_of_two(),
        2,
    );
    assert!(msg_size >= 9, "timestamp + epoch byte must fit");
    let mut ra = RegionAllocator::new(&pool);
    let region = ra.alloc(
        &mut pool,
        "bench-chan",
        ChannelLayout::bytes_needed(slots, msg_size),
        TrafficClass::Message,
    );
    let layout = ChannelLayout::in_region(&region, slots, msg_size);
    let mut tx_host = HostCtx::new(PortId(0), 0);
    let mut rx_host = HostCtx::new(PortId(1), 0);
    let mut sender = Sender::new(layout.clone());
    let mut receiver = Receiver::new(layout, policy);

    let end = SimTime::ZERO + duration;
    let warmup = SimTime::ZERO + SimDuration::from_nanos(duration.as_nanos() / 5);
    let gap_ns = if offered_mops.is_finite() {
        (1e3 / offered_mops).max(0.0)
    } else {
        0.0
    };
    // "The sender performs a CLWB ... when the sending rate is low": flush a
    // partial line whenever the next send is further away than a line-fill
    // would take at the offered rate.
    let low_rate = gap_ns > 100.0;

    let mut msg_buf = vec![0u8; msg_size as usize];
    let mut out_buf = vec![0u8; msg_size as usize];
    let mut next_send = SimTime::ZERO;
    let mut send_credit = 0.0f64; // fractional ns carry for non-integer gaps
    let mut sink = MetricSink::new();

    loop {
        let s_done = tx_host.clock >= end;
        let r_done = rx_host.clock >= end;
        if s_done && r_done {
            break;
        }
        // Step whichever host is earlier (receiver on ties, so it drains).
        if !s_done && (r_done || tx_host.clock < rx_host.clock) {
            if tx_host.clock < next_send {
                // Idle until the next paced send; flush a straggling
                // partial line first so it doesn't sit invisible.
                if low_rate && sender.has_unflushed() {
                    sender.flush(&mut tx_host, &mut pool);
                }
                tx_host.clock = tx_host.clock.max(next_send.min(end));
                continue;
            }
            msg_buf[..8].copy_from_slice(&tx_host.clock.as_nanos().to_le_bytes());
            // Bench messages are well-formed by construction; a send error
            // here just means no message was enqueued this step.
            if matches!(sender.try_send(&mut tx_host, &mut pool, &msg_buf), Ok(true)) {
                if tx_host.clock >= warmup {
                    sink.incr(metrics::SENT, 0);
                }
                if low_rate && sender.has_unflushed() {
                    sender.flush(&mut tx_host, &mut pool);
                }
                send_credit += gap_ns;
                let whole = send_credit.floor();
                send_credit -= whole;
                next_send += SimDuration::from_nanos(whole as u64);
                if next_send < tx_host.clock && gap_ns == 0.0 {
                    next_send = tx_host.clock;
                }
            }
            // On failure (ring full) try_send already charged the counter
            // refresh; just loop.
        } else if !r_done && receiver.try_recv(&mut rx_host, &mut pool, &mut out_buf) {
            let mut ts_bytes = [0u8; 8];
            ts_bytes.copy_from_slice(&out_buf[..8]);
            let ts = u64::from_le_bytes(ts_bytes);
            if rx_host.clock >= warmup {
                sink.incr(metrics::RECEIVED, 0);
                // Latency samples only for messages sent after warm-up so
                // the cold-start transient does not skew tails.
                if SimTime::from_nanos(ts) >= warmup {
                    let span = sink.span(SimTime::from_nanos(ts));
                    span.end(&mut sink, metrics::LATENCY_NS, 0, rx_host.clock);
                }
            }
        }
    }

    crate::obs::export_endpoint_metrics(&sender, &receiver, 0, &mut sink);
    let snap = sink.snapshot();
    let report = PairReport::from_snapshot(policy, offered_mops, duration, &snap);
    (report, snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SLOTS;

    const MS5: SimDuration = SimDuration(5_000_000);

    #[test]
    fn bypass_cache_saturates_near_3_mops() {
        let r = run_offered_load(Policy::BypassCache, 8192, f64::INFINITY, MS5);
        assert!(
            (2.0..=4.5).contains(&r.achieved_mops),
            "bypass throughput {:.1} MOp/s (paper: 3.0)",
            r.achieved_mops
        );
    }

    #[test]
    fn naive_prefetch_beats_bypass_but_stalls_early() {
        let bypass = run_offered_load(Policy::BypassCache, 8192, f64::INFINITY, MS5);
        let naive = run_offered_load(Policy::NaivePrefetch, 8192, f64::INFINITY, MS5);
        assert!(
            naive.achieved_mops > bypass.achieved_mops * 1.5,
            "naive {:.1} vs bypass {:.1}",
            naive.achieved_mops,
            bypass.achieved_mops
        );
        assert!(
            naive.achieved_mops < 25.0,
            "naive prefetch must stay an order of magnitude below ③: {:.1}",
            naive.achieved_mops
        );
    }

    #[test]
    fn invalidate_consumed_reaches_tens_of_mops() {
        let r = run_offered_load(Policy::InvalidateConsumed, 8192, f64::INFINITY, MS5);
        assert!(
            r.achieved_mops > 50.0,
            "③ throughput {:.1} MOp/s (paper: 87)",
            r.achieved_mops
        );
    }

    #[test]
    fn invalidate_prefetched_matches_consumed_at_saturation() {
        let c = run_offered_load(Policy::InvalidateConsumed, 8192, f64::INFINITY, MS5);
        let p = run_offered_load(Policy::InvalidatePrefetched, 8192, f64::INFINITY, MS5);
        let ratio = p.achieved_mops / c.achieved_mops;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "④ {:.1} vs ③ {:.1} MOp/s",
            p.achieved_mops,
            c.achieved_mops
        );
    }

    #[test]
    fn idle_latency_near_600ns() {
        // 0.5 MOp/s is well below every design's capacity; latency should be
        // near the 0.6us two-CXL-access floor for the shipping design.
        let r = run_offered_load(Policy::InvalidatePrefetched, 8192, 0.5, MS5);
        assert!(
            (350..=1_100).contains(&r.p50_latency_ns),
            "idle p50 {}ns (paper: ~600ns)",
            r.p50_latency_ns
        );
    }

    #[test]
    fn moderate_load_latency_spike_fixed_by_invalidate_prefetched() {
        // Fig. 6: at moderate load ③ spikes in latency; ④ fixes it. The
        // paper's target throughput of 14 MOp/s sits in the spike.
        let load = 14.0;
        let c = run_offered_load(Policy::InvalidateConsumed, 8192, load, MS5);
        let p = run_offered_load(Policy::InvalidatePrefetched, 8192, load, MS5);
        assert!(
            p.p50_latency_ns < c.p50_latency_ns,
            "④ p50 {}ns must beat ③ p50 {}ns at moderate load",
            p.p50_latency_ns,
            c.p50_latency_ns
        );
    }

    #[test]
    fn storage_sized_messages_cover_the_io_target() {
        // 64 B NVMe-mirroring messages (§3.4): the channel must carry well
        // over 2 x 7 MOp/s (request + completion for the Table 1 I/O rate).
        let r = run_offered_load_sized(
            Policy::InvalidatePrefetched,
            DEFAULT_SLOTS,
            64,
            f64::INFINITY,
            MS5,
        );
        assert!(
            r.achieved_mops > 14.0,
            "64B channel throughput {:.1} MOp/s",
            r.achieved_mops
        );
        // Latency at the storage engine's actual rate stays sub-1.2us.
        let r = run_offered_load_sized(Policy::InvalidatePrefetched, DEFAULT_SLOTS, 64, 1.0, MS5);
        assert!(
            r.p50_latency_ns < 1_200,
            "64B p50 {}ns at 1 MOp/s",
            r.p50_latency_ns
        );
    }

    #[test]
    fn no_message_loss_at_fixed_load() {
        let r = run_offered_load(Policy::InvalidatePrefetched, 8192, 5.0, MS5);
        // Every measured sent message is eventually received; allow the
        // small in-flight window at the measurement edge.
        assert!(r.received >= r.sent.saturating_sub(8192));
        assert!((r.achieved_mops - 5.0).abs() < 0.5, "{}", r.achieved_mops);
    }
}
