//! Oasis message channels over non-coherent shared CXL memory (§3.2.2).
//!
//! A channel is a single-producer single-consumer circular buffer of
//! fixed-size messages (16 B for the network engine, 64 B for the storage
//! engine) living in shared CXL memory, plus an 8 B *consumed counter* the
//! receiver publishes so the sender never overwrites unread slots. The most
//! significant bit of each message is an *epoch bit* that the sender toggles
//! every lap around the ring; the receiver uses it to detect whether a slot
//! holds a new message.
//!
//! Because the pool is not cache-coherent, the receiver's polling strategy
//! determines both correctness and performance. The paper evaluates four
//! designs (Fig. 6), all implemented here as [`Policy`]:
//!
//! 1. [`Policy::BypassCache`] — invalidate + fence before every poll
//!    (prior work's approach; ≈ 3 MOp/s).
//! 2. [`Policy::NaivePrefetch`] — cache the ring, software-prefetch ahead,
//!    invalidate the current line only after an empty poll (≈ 8.6 MOp/s —
//!    stale lines from the previous lap block prefetching).
//! 3. [`Policy::InvalidateConsumed`] — additionally invalidate each line
//!    once fully consumed so the next lap's prefetches work (≈ 87 MOp/s,
//!    but with a latency spike at moderate load from stale *prefetched*
//!    lines).
//! 4. [`Policy::InvalidatePrefetched`] — additionally invalidate the
//!    speculatively prefetched window after an empty poll, fixing the
//!    latency spike (the design Oasis ships).
//!
//! [`runner`] co-simulates a sender and a receiver on two hosts to measure
//! one-way throughput and latency exactly as the paper's two-socket
//! microbenchmark does.

pub mod error;
pub mod layout;
pub mod metrics;
pub mod obs;
pub mod receiver;
pub mod reliable;
pub mod runner;
pub mod sender;

pub use error::ChannelError;
pub use layout::ChannelLayout;
pub use receiver::{Policy, Receiver};
pub use reliable::{RetryPolicy, RetryState, SeqWindow};
pub use runner::{run_offered_load, run_offered_load_snap, PairReport};
pub use sender::Sender;

/// Message size used by the network engine (§3.3): 8 B buffer pointer, 2 B
/// size, 1 B opcode, 4 B instance IP, 1 B epoch/flags.
pub const MSG16: usize = 16;

/// Message size used by the storage engine (§3.4): mirrors a 64 B NVMe
/// command.
pub const MSG64: usize = 64;

/// Default number of slots per channel (§3.2.2).
pub const DEFAULT_SLOTS: u64 = 8192;

/// The epoch bit lives in the most significant bit of the last byte of each
/// message.
pub const EPOCH_MASK: u8 = 0x80;

/// Epoch bit value for a given lap around the ring. Lap 0 uses `1` so that
/// zero-initialized slots are never mistaken for valid messages.
#[inline]
pub fn epoch_bit(lap: u64) -> u8 {
    if lap & 1 == 0 {
        EPOCH_MASK
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_alternates_and_lap0_is_nonzero() {
        assert_eq!(epoch_bit(0), EPOCH_MASK);
        assert_eq!(epoch_bit(1), 0);
        assert_eq!(epoch_bit(2), EPOCH_MASK);
        // Zeroed memory (epoch bits 0) must not look valid on lap 0.
        assert_ne!(epoch_bit(0), 0);
    }
}
