//! Synthetic datacenter traces.
//!
//! The paper's utilization study (§2.2) uses two production artifacts we do
//! not have: an Azure allocation trace (instance arrivals/departures with
//! multi-dimensional resource requests) and rack-level packet captures. This
//! crate generates synthetic equivalents calibrated to every statistic the
//! paper publishes about those traces, which are the only quantities the
//! experiments consume:
//!
//! * [`packet_trace`] — per-host ON/OFF bursty traffic whose 10 µs-binned
//!   utilization matches Table 2 (per-host P99.99 of 23–79 %, P99 < 3 % for
//!   the burstiest host, aggregated P99.99 ≈ 10–20 %). Used by Fig. 3,
//!   Table 2, and the Fig. 12 replay.
//! * [`alloc_trace`] — heterogeneous instance arrivals/departures bin-packed
//!   onto hosts by CPU/memory, leaving NIC bandwidth and SSD capacity
//!   stranded the way §2.2 reports (27 % NIC, 33 % SSD at pod size 1).
//! * [`stranding`] — the Fig. 2 pooling simulation: group hosts into pods,
//!   pool their NICs/SSDs, and measure how stranding falls with pod size.

pub mod alloc_trace;
pub mod metrics;
pub mod packet_trace;
pub mod stranding;
pub mod stranding_sweep;

pub use alloc_trace::{
    AllocTrace, ArrivalStream, FleetPlacement, FleetReplay, HomePolicy, HostCapacity, Instance,
    InstanceType, ReplaySession,
};
pub use packet_trace::{HostProfile, PacketTrace};
pub use stranding::{
    export_fleet_stranding, export_stranding, fleet_stranding_from_snapshot,
    measure_fleet_stranding, stranding_by_pod_size, stranding_from_snapshot, PodStranding,
    StrandingPoint,
};
