//! Metric name registry for `oasis-trace` (see `oasis-check`'s
//! `metric-name` rule: every metric name literal in the workspace lives in
//! its crate's `metrics.rs`, is `snake_case`, and carries the crate
//! prefix).
//!
//! Stranding fractions are stored as parts-per-billion fixed point
//! (snapshots are integer-only); at the figures' one-decimal percentage
//! resolution the round trip is lossless. Tag = pod size.

/// Fraction of NIC bandwidth stranded, in parts per billion.
pub const STRANDED_NIC_PPB: &str = "trace.stranded_nic_ppb";
/// Fraction of SSD capacity stranded, in parts per billion.
pub const STRANDED_SSD_PPB: &str = "trace.stranded_ssd_ppb";
/// Fraction of CPU cores stranded, in parts per billion.
pub const STRANDED_CPU_PPB: &str = "trace.stranded_cpu_ppb";
/// Fraction of memory stranded, in parts per billion.
pub const STRANDED_MEM_PPB: &str = "trace.stranded_mem_ppb";
/// Placement requests rejected.
pub const PLACEMENT_REJECTED: &str = "trace.placement_rejected";

/// Per-pod NIC bandwidth stranded during a fleet replay, parts per
/// billion. Tag = pod index; attribution is by *device* pod, so spilled
/// instances count against the pod that serves their devices.
pub const STRANDING_POD_NIC_PPB: &str = "trace.stranding_pod_nic_ppb";
/// Per-pod SSD capacity stranded during a fleet replay, parts per billion.
/// Tag = pod index (device-pod attribution, like the NIC metric).
pub const STRANDING_POD_SSD_PPB: &str = "trace.stranding_pod_ssd_ppb";
/// Instances whose device backends each pod served during a fleet replay.
/// Tag = pod index.
pub const STRANDING_POD_PLACED: &str = "trace.stranding_pod_placed";
