//! Metric name registry for `oasis-trace` (see `oasis-check`'s
//! `metric-name` rule: every metric name literal in the workspace lives in
//! its crate's `metrics.rs`, is `snake_case`, and carries the crate
//! prefix).
//!
//! Stranding fractions are stored as parts-per-billion fixed point
//! (snapshots are integer-only); at the figures' one-decimal percentage
//! resolution the round trip is lossless. Tag = pod size.

/// Fraction of NIC bandwidth stranded, in parts per billion.
pub const STRANDED_NIC_PPB: &str = "trace.stranded_nic_ppb";
/// Fraction of SSD capacity stranded, in parts per billion.
pub const STRANDED_SSD_PPB: &str = "trace.stranded_ssd_ppb";
/// Fraction of CPU cores stranded, in parts per billion.
pub const STRANDED_CPU_PPB: &str = "trace.stranded_cpu_ppb";
/// Fraction of memory stranded, in parts per billion.
pub const STRANDED_MEM_PPB: &str = "trace.stranded_mem_ppb";
/// Placement requests rejected.
pub const PLACEMENT_REJECTED: &str = "trace.placement_rejected";
