//! Synthetic allocation traces and pod-aware placement.
//!
//! §2.2 Reason 1: a production allocation trace shows hosts filling up along
//! one dimension while others strand. Two mechanisms matter and both are
//! modelled:
//!
//! * instances are packed by CPU/memory, so device resources on CPU-full
//!   hosts cannot be allocated, and
//! * device requests are *chunky* (a storage-optimized instance wants
//!   terabytes of local SSD; a network-optimized one wants tens of Gbit/s),
//!   so free device capacity fragments: no single host can fit the request
//!   even though the rack has plenty.
//!
//! Pooling (§2.2, Fig. 2) attacks the second mechanism: an instance's
//! NIC/SSD request may be satisfied by *pod*-level capacity. Placement here
//! therefore takes a pod size: CPU/memory must fit on the chosen host,
//! NIC/SSD must fit in the host's pod.

use oasis_sim::rng::SimRng;
use oasis_sim::time::{SimDuration, SimTime};

/// One instance type in the catalog (an "SKU").
#[derive(Clone, Debug)]
pub struct InstanceType {
    /// Human-readable name.
    pub name: &'static str,
    /// vCPUs requested.
    pub vcpus: u32,
    /// Memory, GiB.
    pub mem_gb: u32,
    /// Local SSD capacity, GiB.
    pub ssd_gb: u32,
    /// NIC bandwidth allocation, Gbit/s.
    pub nic_gbps: f64,
    /// Relative popularity weight.
    pub weight: f64,
}

/// A catalog resembling public-cloud offerings. Most demand is
/// compute/memory bound; storage- and network-optimized SKUs make chunky
/// device requests that fragment per-host capacity.
pub fn azure_like_catalog() -> Vec<InstanceType> {
    vec![
        InstanceType {
            name: "gp-small",
            vcpus: 4,
            mem_gb: 16,
            ssd_gb: 0,
            nic_gbps: 2.0,
            weight: 20.0,
        },
        InstanceType {
            name: "gp-large",
            vcpus: 16,
            mem_gb: 64,
            ssd_gb: 200,
            nic_gbps: 8.0,
            weight: 14.0,
        },
        InstanceType {
            name: "compute-opt",
            vcpus: 32,
            mem_gb: 64,
            ssd_gb: 0,
            nic_gbps: 10.0,
            weight: 10.0,
        },
        InstanceType {
            name: "memory-opt",
            vcpus: 16,
            mem_gb: 128,
            ssd_gb: 100,
            nic_gbps: 8.0,
            weight: 10.0,
        },
        InstanceType {
            name: "storage-opt",
            vcpus: 8,
            mem_gb: 64,
            ssd_gb: 5500,
            nic_gbps: 16.0,
            weight: 24.0,
        },
        InstanceType {
            name: "net-opt",
            vcpus: 8,
            mem_gb: 32,
            ssd_gb: 200,
            nic_gbps: 45.0,
            weight: 12.0,
        },
        InstanceType {
            name: "burst-micro",
            vcpus: 2,
            mem_gb: 8,
            ssd_gb: 0,
            nic_gbps: 1.0,
            weight: 10.0,
        },
    ]
}

/// Per-host capacity. Defaults follow §2.1: dual-socket host with one
/// 100 Gbit NIC and six 2 TB NVMe drives.
#[derive(Clone, Copy, Debug)]
pub struct HostCapacity {
    /// vCPUs.
    pub vcpus: u32,
    /// Memory, GiB.
    pub mem_gb: u32,
    /// SSD capacity, GiB.
    pub ssd_gb: u32,
    /// NIC bandwidth, Gbit/s.
    pub nic_gbps: f64,
}

impl Default for HostCapacity {
    fn default() -> Self {
        HostCapacity {
            vcpus: 96,
            mem_gb: 512,
            ssd_gb: 6 * 2048,
            nic_gbps: 100.0,
        }
    }
}

/// One arrival in the request stream (placement-independent, so the same
/// stream can be replayed against different pod sizes).
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Arrival time, ns.
    pub at: u64,
    /// Departure time, ns.
    pub ends: u64,
    /// Index into the catalog.
    pub type_idx: usize,
}

/// A placement-independent request stream.
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Arrivals sorted by time.
    pub arrivals: Vec<Arrival>,
    /// Stream horizon.
    pub duration: SimDuration,
}

impl ArrivalStream {
    /// Generate a stream sized to keep `hosts` hosts saturated (offered CPU
    /// demand ≈ 2× capacity, so the cluster is always full and stranding
    /// is visible).
    pub fn generate(hosts: usize, duration: SimDuration, seed: u64) -> ArrivalStream {
        Self::generate_with_load(hosts, duration, 2.0, seed)
    }

    /// Generate a stream with an explicit offered-load factor (offered CPU
    /// demand as a multiple of cluster CPU capacity). Use ~1.0 for the
    /// "utilized but not pegged" regime of the provisioning analysis.
    pub fn generate_with_load(
        hosts: usize,
        duration: SimDuration,
        load: f64,
        seed: u64,
    ) -> ArrivalStream {
        let catalog = azure_like_catalog();
        let cap = HostCapacity::default();
        let mut rng = SimRng::new(seed);
        let total_w: f64 = catalog.iter().map(|t| t.weight).sum();
        let mean_vcpus: f64 = catalog
            .iter()
            .map(|t| t.vcpus as f64 * t.weight / total_w)
            .sum();
        let mean_life = SimDuration::from_secs(3600);
        let target_concurrent = hosts as f64 * cap.vcpus as f64 * load / mean_vcpus;
        let gap = mean_life.as_nanos() as f64 / target_concurrent;

        let end = duration.as_nanos() as f64;
        let mut arrivals = Vec::new();
        let mut t = rng.exp(gap);
        while t < end {
            let mut pick = rng.f64() * total_w;
            let mut ti = 0;
            for (i, ty) in catalog.iter().enumerate() {
                if pick < ty.weight {
                    ti = i;
                    break;
                }
                pick -= ty.weight;
            }
            let life = rng.lognormal((mean_life.as_nanos() as f64).ln() - 0.5, 1.0);
            arrivals.push(Arrival {
                at: t as u64,
                ends: ((t + life).min(end)) as u64,
                type_idx: ti,
            });
            t += rng.exp(gap);
        }
        ArrivalStream {
            catalog,
            arrivals,
            duration,
        }
    }
}

/// One placed instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Index into the catalog.
    pub type_idx: usize,
    /// Arrival time.
    pub start: SimTime,
    /// Departure time.
    pub end: SimTime,
    /// Host the scheduler placed it on.
    pub host: usize,
}

/// A placement of a stream onto hosts (possibly with pooled devices).
#[derive(Clone, Debug)]
pub struct AllocTrace {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Host capacity used during placement.
    pub host_cap: HostCapacity,
    /// Number of hosts.
    pub hosts: usize,
    /// Pod size used for device pooling during placement (1 = no pooling).
    pub pod_size: usize,
    /// Placed instances.
    pub instances: Vec<Instance>,
    /// Requests rejected (no feasible host).
    pub rejected: usize,
    /// Trace horizon.
    pub duration: SimTime,
}

struct Load {
    vcpus: u32,
    mem_gb: u32,
}

struct PodLoad {
    ssd_gb: u64,
    nic_gbps: f64,
}

impl AllocTrace {
    /// Convenience: generate a stream and place it without pooling.
    pub fn generate(hosts: usize, duration: SimDuration, seed: u64) -> AllocTrace {
        let stream = ArrivalStream::generate(hosts, duration, seed);
        Self::place(&stream, hosts, 1)
    }

    /// Place a stream onto `hosts` hosts grouped into pods of `pod_size`.
    /// CPU/memory must fit on the chosen host; SSD/NIC must fit within the
    /// host's pod (this is what Oasis pooling enables). Placement is
    /// best-fit by CPU slack, which is how device resources get stranded.
    pub fn place(stream: &ArrivalStream, hosts: usize, pod_size: usize) -> AllocTrace {
        assert!(pod_size >= 1);
        let cap = HostCapacity::default();
        let catalog = stream.catalog.clone();
        let pods = hosts.div_ceil(pod_size);
        let mut host_load: Vec<Load> = (0..hosts)
            .map(|_| Load {
                vcpus: 0,
                mem_gb: 0,
            })
            .collect();
        let mut pod_load: Vec<PodLoad> = (0..pods)
            .map(|_| PodLoad {
                ssd_gb: 0,
                nic_gbps: 0.0,
            })
            .collect();
        let pod_of = |h: usize| h / pod_size;
        let pod_hosts = |p: usize| {
            let lo = p * pod_size;
            let hi = ((p + 1) * pod_size).min(hosts);
            hi - lo
        };

        // Departure queue sorted by time: (ends, host, type_idx).
        let mut departures: Vec<(u64, usize, usize)> = Vec::new();
        let mut instances = Vec::new();
        let mut rejected = 0usize;

        for arr in &stream.arrivals {
            let now = arr.at;
            departures.retain(|&(dt, host, ti)| {
                if dt <= now {
                    let ty = &catalog[ti];
                    host_load[host].vcpus -= ty.vcpus;
                    host_load[host].mem_gb -= ty.mem_gb;
                    let p = pod_of(host);
                    pod_load[p].ssd_gb -= ty.ssd_gb as u64;
                    pod_load[p].nic_gbps -= ty.nic_gbps;
                    false
                } else {
                    true
                }
            });
            let ty = &catalog[arr.type_idx];
            let fit = (0..hosts)
                .filter(|&h| {
                    let p = pod_of(h);
                    let n = pod_hosts(p) as f64;
                    host_load[h].vcpus + ty.vcpus <= cap.vcpus
                        && host_load[h].mem_gb + ty.mem_gb <= cap.mem_gb
                        && pod_load[p].ssd_gb + ty.ssd_gb as u64 <= (n * cap.ssd_gb as f64) as u64
                        && pod_load[p].nic_gbps + ty.nic_gbps <= n * cap.nic_gbps
                })
                .min_by_key(|&h| {
                    (
                        cap.vcpus - host_load[h].vcpus - ty.vcpus,
                        cap.mem_gb - host_load[h].mem_gb - ty.mem_gb,
                    )
                });
            match fit {
                Some(h) => {
                    host_load[h].vcpus += ty.vcpus;
                    host_load[h].mem_gb += ty.mem_gb;
                    let p = pod_of(h);
                    pod_load[p].ssd_gb += ty.ssd_gb as u64;
                    pod_load[p].nic_gbps += ty.nic_gbps;
                    departures.push((arr.ends, h, arr.type_idx));
                    instances.push(Instance {
                        type_idx: arr.type_idx,
                        start: SimTime::from_nanos(arr.at),
                        end: SimTime::from_nanos(arr.ends),
                        host: h,
                    });
                }
                None => rejected += 1,
            }
        }

        AllocTrace {
            catalog,
            host_cap: cap,
            hosts,
            pod_size,
            instances,
            rejected,
            duration: SimTime::ZERO + stream.duration,
        }
    }

    /// Time-averaged allocated fraction of a resource across the whole
    /// cluster, measured over the steady-state window `[warmup, end]`.
    pub fn mean_allocated_fraction(
        &self,
        capacity_per_host: f64,
        resource: impl Fn(&InstanceType) -> f64,
    ) -> f64 {
        let end = self.duration.as_nanos();
        let warmup = end / 4;
        let window = (end - warmup) as f64;
        let provisioned = self.hosts as f64 * capacity_per_host;
        let mut acc = 0.0;
        for inst in &self.instances {
            let s = inst.start.as_nanos().max(warmup);
            let e = inst.end.as_nanos().min(end);
            if e > s {
                acc += resource(&self.catalog[inst.type_idx]) * (e - s) as f64;
            }
        }
        acc / window / provisioned
    }

    /// Peak concurrent demand of a resource on a set of hosts.
    pub fn peak_demand(&self, hosts: &[usize], resource: impl Fn(&InstanceType) -> f64) -> f64 {
        let mut events: Vec<(u64, f64)> = Vec::new();
        for inst in &self.instances {
            if hosts.contains(&inst.host) {
                let r = resource(&self.catalog[inst.type_idx]);
                events.push((inst.start.as_nanos(), r));
                events.push((inst.end.as_nanos(), -r));
            }
        }
        events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).unwrap()));
        let mut cur = 0.0;
        let mut peak = 0.0f64;
        for (_, delta) in events {
            cur += delta;
            peak = peak.max(cur);
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> ArrivalStream {
        ArrivalStream::generate(16, SimDuration::from_secs(3 * 3600), 42)
    }

    #[test]
    fn cluster_fills_and_rejects() {
        let t = AllocTrace::place(&stream(), 16, 1);
        assert!(!t.instances.is_empty());
        assert!(t.rejected > 0, "cluster must reach saturation");
        assert!(t.instances.iter().all(|i| i.host < t.hosts));
        assert!(t.instances.iter().all(|i| i.start <= i.end));
    }

    #[test]
    fn devices_strand_harder_than_cpu() {
        let t = AllocTrace::place(&stream(), 16, 1);
        let cap = t.host_cap;
        let cpu = t.mean_allocated_fraction(cap.vcpus as f64, |ty| ty.vcpus as f64);
        let nic = t.mean_allocated_fraction(cap.nic_gbps, |ty| ty.nic_gbps);
        let ssd = t.mean_allocated_fraction(cap.ssd_gb as f64, |ty| ty.ssd_gb as f64);
        assert!(cpu > 0.80, "cpu allocated {cpu}");
        assert!(nic < cpu, "nic {nic} vs cpu {cpu}");
        assert!(ssd < cpu, "ssd {ssd} vs cpu {cpu}");
    }

    #[test]
    fn pooling_reduces_rejections() {
        let s = stream();
        let unpooled = AllocTrace::place(&s, 16, 1);
        let pooled = AllocTrace::place(&s, 16, 8);
        assert!(
            pooled.rejected < unpooled.rejected,
            "pooled {} vs unpooled {}",
            pooled.rejected,
            unpooled.rejected
        );
    }

    #[test]
    fn pooling_never_violates_pod_capacity() {
        let s = stream();
        let t = AllocTrace::place(&s, 16, 4);
        let cap = t.host_cap;
        for pod in 0..4 {
            let hosts: Vec<usize> = (pod * 4..(pod + 1) * 4).collect();
            let peak_ssd = t.peak_demand(&hosts, |ty| ty.ssd_gb as f64);
            let peak_nic = t.peak_demand(&hosts, |ty| ty.nic_gbps);
            assert!(peak_ssd <= 4.0 * cap.ssd_gb as f64 + 1e-9);
            assert!(peak_nic <= 4.0 * cap.nic_gbps + 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AllocTrace::generate(8, SimDuration::from_secs(3600), 9);
        let b = AllocTrace::generate(8, SimDuration::from_secs(3600), 9);
        assert_eq!(a.instances.len(), b.instances.len());
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn catalog_is_heterogeneous_and_fits_hosts() {
        let cat = azure_like_catalog();
        assert!(cat.iter().any(|t| t.ssd_gb == 0));
        assert!(cat.iter().any(|t| t.ssd_gb > 1000));
        let cap = HostCapacity::default();
        for t in &cat {
            assert!(t.vcpus <= cap.vcpus && t.mem_gb <= cap.mem_gb);
            assert!(t.ssd_gb <= cap.ssd_gb && t.nic_gbps <= cap.nic_gbps);
        }
    }
}
