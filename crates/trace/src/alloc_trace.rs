//! Synthetic allocation traces and pod-aware placement.
//!
//! §2.2 Reason 1: a production allocation trace shows hosts filling up along
//! one dimension while others strand. Two mechanisms matter and both are
//! modelled:
//!
//! * instances are packed by CPU/memory, so device resources on CPU-full
//!   hosts cannot be allocated, and
//! * device requests are *chunky* (a storage-optimized instance wants
//!   terabytes of local SSD; a network-optimized one wants tens of Gbit/s),
//!   so free device capacity fragments: no single host can fit the request
//!   even though the rack has plenty.
//!
//! Pooling (§2.2, Fig. 2) attacks the second mechanism: an instance's
//! NIC/SSD request may be satisfied by *pod*-level capacity. Placement here
//! therefore takes a pod size: CPU/memory must fit on the chosen host,
//! NIC/SSD must fit in the host's pod.
//!
//! Placement is no longer hand-rolled here: every arrival and departure is
//! replayed as a typed [`FleetCommand`] through `oasis-core`'s replicated
//! [`FleetAllocator`] — the same control-plane path a live [`Fleet`] uses —
//! so the trace study and the runtime share one placement policy.
//! [`AllocTrace::place`] drives an *unlinked* fleet (one pod per
//! `pod_size` hosts, no uplinks), which reduces exactly to the pod-scoped
//! best-fit policy this module always implemented; [`AllocTrace::replay_fleet`]
//! replays against a linked [`FleetTopology`], letting stranded device
//! requests spill to the nearest neighbor pod.
//!
//! [`Fleet`]: oasis_core::fleet::Fleet

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use oasis_core::allocator::{FleetAllocator, FleetCommand, FleetResponse, FleetState, ANY_POD};
use oasis_core::error::FleetError;
use oasis_cxl::topology::{FleetTopology, PodTopology};
use oasis_sim::rng::SimRng;
use oasis_sim::time::{SimDuration, SimTime};

/// One instance type in the catalog (an "SKU").
#[derive(Clone, Debug)]
pub struct InstanceType {
    /// Human-readable name.
    pub name: &'static str,
    /// vCPUs requested.
    pub vcpus: u32,
    /// Memory, GiB.
    pub mem_gb: u32,
    /// Local SSD capacity, GiB.
    pub ssd_gb: u32,
    /// NIC bandwidth allocation, Gbit/s.
    pub nic_gbps: f64,
    /// Relative popularity weight.
    pub weight: f64,
}

impl InstanceType {
    /// NIC allocation in integer Mbit/s — the form every control-plane
    /// command and integer integral consumes. The float multiply happens
    /// exactly here, once, on catalog constants, so downstream arithmetic
    /// is integer-only.
    pub fn nic_mbps(&self) -> u64 {
        // oasis-check: allow(float-determinism) catalog constants convert to fixed point at this single boundary
        (self.nic_gbps * 1000.0) as u64
    }
}

/// A catalog resembling public-cloud offerings. Most demand is
/// compute/memory bound; storage- and network-optimized SKUs make chunky
/// device requests that fragment per-host capacity.
pub fn azure_like_catalog() -> Vec<InstanceType> {
    vec![
        InstanceType {
            name: "gp-small",
            vcpus: 4,
            mem_gb: 16,
            ssd_gb: 0,
            nic_gbps: 2.0,
            weight: 20.0,
        },
        InstanceType {
            name: "gp-large",
            vcpus: 16,
            mem_gb: 64,
            ssd_gb: 200,
            nic_gbps: 8.0,
            weight: 14.0,
        },
        InstanceType {
            name: "compute-opt",
            vcpus: 32,
            mem_gb: 64,
            ssd_gb: 0,
            nic_gbps: 10.0,
            weight: 10.0,
        },
        InstanceType {
            name: "memory-opt",
            vcpus: 16,
            mem_gb: 128,
            ssd_gb: 100,
            nic_gbps: 8.0,
            weight: 10.0,
        },
        InstanceType {
            name: "storage-opt",
            vcpus: 8,
            mem_gb: 64,
            ssd_gb: 5500,
            nic_gbps: 16.0,
            weight: 24.0,
        },
        InstanceType {
            name: "net-opt",
            vcpus: 8,
            mem_gb: 32,
            ssd_gb: 200,
            nic_gbps: 45.0,
            weight: 12.0,
        },
        InstanceType {
            name: "burst-micro",
            vcpus: 2,
            mem_gb: 8,
            ssd_gb: 0,
            nic_gbps: 1.0,
            weight: 10.0,
        },
    ]
}

/// Per-host capacity. Defaults follow §2.1: dual-socket host with one
/// 100 Gbit NIC and six 2 TB NVMe drives.
#[derive(Clone, Copy, Debug)]
pub struct HostCapacity {
    /// vCPUs.
    pub vcpus: u32,
    /// Memory, GiB.
    pub mem_gb: u32,
    /// SSD capacity, GiB.
    pub ssd_gb: u32,
    /// NIC bandwidth, Gbit/s.
    pub nic_gbps: f64,
}

impl HostCapacity {
    /// Host NIC capacity in integer Mbit/s (see [`InstanceType::nic_mbps`]).
    pub fn nic_mbps(&self) -> u64 {
        // oasis-check: allow(float-determinism) capacity constants convert to fixed point at this single boundary
        (self.nic_gbps * 1000.0) as u64
    }
}

impl Default for HostCapacity {
    fn default() -> Self {
        HostCapacity {
            vcpus: 96,
            mem_gb: 512,
            ssd_gb: 6 * 2048,
            nic_gbps: 100.0,
        }
    }
}

/// One arrival in the request stream (placement-independent, so the same
/// stream can be replayed against different pod sizes).
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Arrival time, ns.
    pub at: u64,
    /// Departure time, ns.
    pub ends: u64,
    /// Index into the catalog.
    pub type_idx: usize,
}

/// A placement-independent request stream.
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Arrivals sorted by time.
    pub arrivals: Vec<Arrival>,
    /// Stream horizon.
    pub duration: SimDuration,
}

impl ArrivalStream {
    /// Generate a stream sized to keep `hosts` hosts saturated (offered CPU
    /// demand ≈ 2× capacity, so the cluster is always full and stranding
    /// is visible).
    pub fn generate(hosts: usize, duration: SimDuration, seed: u64) -> ArrivalStream {
        Self::generate_with_load(hosts, duration, 2.0, seed)
    }

    /// Generate a stream with an explicit offered-load factor (offered CPU
    /// demand as a multiple of cluster CPU capacity). Use ~1.0 for the
    /// "utilized but not pegged" regime of the provisioning analysis.
    pub fn generate_with_load(
        hosts: usize,
        duration: SimDuration,
        load: f64,
        seed: u64,
    ) -> ArrivalStream {
        let catalog = azure_like_catalog();
        let cap = HostCapacity::default();
        let mut rng = SimRng::new(seed);
        let total_w: f64 = catalog.iter().map(|t| t.weight).sum();
        let mean_vcpus: f64 = catalog
            .iter()
            .map(|t| t.vcpus as f64 * t.weight / total_w)
            .sum();
        let mean_life = SimDuration::from_secs(3600);
        let target_concurrent = hosts as f64 * cap.vcpus as f64 * load / mean_vcpus;
        let gap = mean_life.as_nanos() as f64 / target_concurrent;

        let end = duration.as_nanos() as f64;
        let mut arrivals = Vec::new();
        let mut t = rng.exp(gap);
        while t < end {
            let mut pick = rng.f64() * total_w;
            let mut ti = 0;
            for (i, ty) in catalog.iter().enumerate() {
                if pick < ty.weight {
                    ti = i;
                    break;
                }
                pick -= ty.weight;
            }
            let life = rng.lognormal((mean_life.as_nanos() as f64).ln() - 0.5, 1.0);
            arrivals.push(Arrival {
                at: t as u64,
                ends: ((t + life).min(end)) as u64,
                type_idx: ti,
            });
            t += rng.exp(gap);
        }
        ArrivalStream {
            catalog,
            arrivals,
            duration,
        }
    }
}

/// One placed instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Index into the catalog.
    pub type_idx: usize,
    /// Arrival time.
    pub start: SimTime,
    /// Departure time.
    pub end: SimTime,
    /// Host the scheduler placed it on.
    pub host: usize,
}

/// A placement of a stream onto hosts (possibly with pooled devices).
#[derive(Clone, Debug)]
pub struct AllocTrace {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Host capacity used during placement.
    pub host_cap: HostCapacity,
    /// Number of hosts.
    pub hosts: usize,
    /// Pod size used for device pooling during placement (1 = no pooling).
    pub pod_size: usize,
    /// Placed instances.
    pub instances: Vec<Instance>,
    /// Requests rejected (no feasible host).
    pub rejected: usize,
    /// Trace horizon.
    pub duration: SimTime,
}

/// How a fleet replay picks the home-pod scope of each arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HomePolicy {
    /// Any pod may run the instance (the classic trace-study scope): the
    /// allocator best-fits across the whole fleet, so devices only spill
    /// when every CPU/memory-feasible host sits in a device-exhausted pod.
    AnyPod,
    /// Arrivals are pinned round-robin to a home pod (tenant affinity):
    /// CPU/memory must fit in the home pod, and chunky device requests
    /// spill to the nearest linked neighbor when the home pod strands.
    RoundRobin,
}

/// One placed instance from a fleet replay, with full pod attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetPlacement {
    /// Index into the catalog.
    pub type_idx: usize,
    /// Arrival time.
    pub start: SimTime,
    /// Departure time.
    pub end: SimTime,
    /// Pod whose host runs the instance.
    pub pod: usize,
    /// Host index within `pod`.
    pub host: usize,
    /// Pod serving the device backends (== `pod` unless spilled).
    pub device_pod: usize,
}

/// The result of replaying an [`ArrivalStream`] through the fleet
/// control-plane command API.
#[derive(Clone, Debug)]
pub struct FleetReplay {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Host capacity used during placement.
    pub host_cap: HostCapacity,
    /// Hosts per pod, by pod index.
    pub pod_hosts: Vec<usize>,
    /// Placed instances.
    pub placements: Vec<FleetPlacement>,
    /// Requests rejected (no feasible host in scope).
    pub rejected: usize,
    /// Trace horizon.
    pub duration: SimTime,
    /// Final allocator state machine: every instance has been killed at
    /// its departure time, so the per-pod spill-traffic byte counters are
    /// fully closed out and `state.report().live == 0`.
    pub state: FleetState,
}

impl AllocTrace {
    /// Convenience: generate a stream and place it without pooling.
    pub fn generate(hosts: usize, duration: SimDuration, seed: u64) -> AllocTrace {
        let stream = ArrivalStream::generate(hosts, duration, seed);
        Self::place(&stream, hosts, 1)
    }

    /// Place a stream onto `hosts` hosts grouped into pods of `pod_size`.
    /// CPU/memory must fit on the chosen host; SSD/NIC must fit within the
    /// host's pod (this is what Oasis pooling enables). Placement is
    /// best-fit by CPU slack, which is how device resources get stranded.
    ///
    /// Implemented as a fleet replay against an *unlinked* topology: with
    /// no uplinks, spill is impossible and the fleet allocator's pass-1
    /// policy — best-fit `(vcpu slack, mem slack)` over hosts whose own
    /// pod can serve the devices, first minimum winning — is exactly this
    /// function's historical behavior, instance for instance.
    pub fn place(stream: &ArrivalStream, hosts: usize, pod_size: usize) -> AllocTrace {
        assert!(pod_size >= 1);
        let pods = hosts.div_ceil(pod_size);
        let topo = FleetTopology {
            pods: (0..pods)
                .map(|p| {
                    let lo = p * pod_size;
                    let hi = ((p + 1) * pod_size).min(hosts);
                    PodTopology::production(hi - lo, 0)
                })
                .collect(),
            links: Vec::new(),
        };
        let replay = Self::replay_fleet(stream, &topo, HomePolicy::AnyPod, 0)
            .expect("an unlinked fleet accepts every topology command");
        AllocTrace {
            catalog: replay.catalog,
            host_cap: replay.host_cap,
            hosts,
            pod_size,
            instances: replay
                .placements
                .iter()
                .map(|pl| Instance {
                    type_idx: pl.type_idx,
                    start: pl.start,
                    end: pl.end,
                    host: pl.pod * pod_size + pl.host,
                })
                .collect(),
            rejected: replay.rejected,
            duration: replay.duration,
        }
    }

    /// Replay a stream through the fleet control-plane command API against
    /// an arbitrary [`FleetTopology`]: every arrival becomes a
    /// `CreateInstance`, every departure a `KillInstance` (issued before
    /// any arrival at the same or a later time, matching the historical
    /// free-then-place order), and every `resize_every`-th placement a
    /// same-lease `ResizeInstance` renewal that exercises the resize path
    /// without perturbing capacity. All remaining instances are killed at
    /// their departure times after the last arrival, so cross-pod
    /// spill-traffic accounting in the returned state is complete.
    pub fn replay_fleet(
        stream: &ArrivalStream,
        topo: &FleetTopology,
        policy: HomePolicy,
        resize_every: usize,
    ) -> Result<FleetReplay, FleetError> {
        let cap = HostCapacity::default();
        let nic_mbps_per_host = cap.nic_mbps();
        let mut alloc = FleetAllocator::new();
        for (p, pod) in topo.pods.iter().enumerate() {
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::RegisterPod {
                    pod: p as u32,
                    hosts: pod.hosts as u32,
                    vcpus_per_host: cap.vcpus,
                    mem_gb_per_host: cap.mem_gb,
                    nic_mbps: pod.hosts as u64 * nic_mbps_per_host,
                    ssd_cap: pod.hosts as u64 * cap.ssd_gb as u64,
                },
            )?;
        }
        for l in &topo.links {
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: l.a as u32,
                    b: l.b as u32,
                    latency_ns: l.latency.as_nanos(),
                },
            )?;
        }

        let npods = topo.pods.len().max(1);
        // Pending departures as a min-heap of (ends, fleet id).
        let mut departures: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut placements = Vec::new();
        let mut rejected = 0usize;

        for (i, arr) in stream.arrivals.iter().enumerate() {
            let now = SimTime::from_nanos(arr.at);
            while let Some(&Reverse((ends, id))) = departures.peek() {
                if ends > arr.at {
                    break;
                }
                departures.pop();
                alloc.execute(now, &FleetCommand::KillInstance { at: ends, id })?;
            }
            let ty = &stream.catalog[arr.type_idx];
            let nic_mbps = ty.nic_mbps() as u32;
            let home_pod = match policy {
                HomePolicy::AnyPod => ANY_POD,
                HomePolicy::RoundRobin => (i % npods) as u32,
            };
            let outcome = alloc.execute(
                now,
                &FleetCommand::CreateInstance {
                    at: arr.at,
                    vcpus: ty.vcpus,
                    mem_gb: ty.mem_gb,
                    ssd: ty.ssd_gb,
                    nic_mbps,
                    home_pod,
                },
            )?;
            match outcome {
                FleetResponse::Created {
                    id,
                    pod,
                    host,
                    device_pod,
                } => {
                    departures.push(Reverse((arr.ends, id)));
                    placements.push(FleetPlacement {
                        type_idx: arr.type_idx,
                        start: now,
                        end: SimTime::from_nanos(arr.ends),
                        pod,
                        host,
                        device_pod,
                    });
                    if resize_every > 0 && (id + 1) % resize_every as u64 == 0 {
                        alloc.execute(
                            now,
                            &FleetCommand::ResizeInstance {
                                at: arr.at,
                                id,
                                nic_mbps,
                                ssd: ty.ssd_gb,
                            },
                        )?;
                    }
                }
                _ => rejected += 1,
            }
        }
        // Close every remaining lease at its departure time so the spill
        // byte counters cover each instance's full lifetime.
        while let Some(Reverse((ends, id))) = departures.pop() {
            alloc.execute(
                SimTime::from_nanos(ends),
                &FleetCommand::KillInstance { at: ends, id },
            )?;
        }

        Ok(FleetReplay {
            catalog: stream.catalog.clone(),
            host_cap: cap,
            pod_hosts: topo.pods.iter().map(|p| p.hosts).collect(),
            placements,
            rejected,
            duration: SimTime::ZERO + stream.duration,
            state: alloc.state.clone(),
        })
    }

    /// Time-averaged allocated fraction of a resource across the whole
    /// cluster, measured over the steady-state window `[warmup, end]`.
    pub fn mean_allocated_fraction(
        &self,
        capacity_per_host: f64,
        resource: impl Fn(&InstanceType) -> f64,
    ) -> f64 {
        let end = self.duration.as_nanos();
        let warmup = end / 4;
        let window = (end - warmup) as f64;
        let provisioned = self.hosts as f64 * capacity_per_host;
        let mut acc = 0.0;
        for inst in &self.instances {
            let s = inst.start.as_nanos().max(warmup);
            let e = inst.end.as_nanos().min(end);
            if e > s {
                acc += resource(&self.catalog[inst.type_idx]) * (e - s) as f64;
            }
        }
        acc / window / provisioned
    }

    /// Peak concurrent demand of a resource on a set of hosts.
    pub fn peak_demand(&self, hosts: &[usize], resource: impl Fn(&InstanceType) -> f64) -> f64 {
        let mut events: Vec<(u64, f64)> = Vec::new();
        for inst in &self.instances {
            if hosts.contains(&inst.host) {
                let r = resource(&self.catalog[inst.type_idx]);
                events.push((inst.start.as_nanos(), r));
                events.push((inst.end.as_nanos(), -r));
            }
        }
        events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).unwrap()));
        let mut cur = 0.0;
        let mut peak = 0.0f64;
        for (_, delta) in events {
            cur += delta;
            peak = peak.max(cur);
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> ArrivalStream {
        ArrivalStream::generate(16, SimDuration::from_secs(3 * 3600), 42)
    }

    #[test]
    fn cluster_fills_and_rejects() {
        let t = AllocTrace::place(&stream(), 16, 1);
        assert!(!t.instances.is_empty());
        assert!(t.rejected > 0, "cluster must reach saturation");
        assert!(t.instances.iter().all(|i| i.host < t.hosts));
        assert!(t.instances.iter().all(|i| i.start <= i.end));
    }

    #[test]
    fn devices_strand_harder_than_cpu() {
        let t = AllocTrace::place(&stream(), 16, 1);
        let cap = t.host_cap;
        let cpu = t.mean_allocated_fraction(cap.vcpus as f64, |ty| ty.vcpus as f64);
        let nic = t.mean_allocated_fraction(cap.nic_gbps, |ty| ty.nic_gbps);
        let ssd = t.mean_allocated_fraction(cap.ssd_gb as f64, |ty| ty.ssd_gb as f64);
        assert!(cpu > 0.80, "cpu allocated {cpu}");
        assert!(nic < cpu, "nic {nic} vs cpu {cpu}");
        assert!(ssd < cpu, "ssd {ssd} vs cpu {cpu}");
    }

    #[test]
    fn pooling_reduces_rejections() {
        let s = stream();
        let unpooled = AllocTrace::place(&s, 16, 1);
        let pooled = AllocTrace::place(&s, 16, 8);
        assert!(
            pooled.rejected < unpooled.rejected,
            "pooled {} vs unpooled {}",
            pooled.rejected,
            unpooled.rejected
        );
    }

    #[test]
    fn pooling_never_violates_pod_capacity() {
        let s = stream();
        let t = AllocTrace::place(&s, 16, 4);
        let cap = t.host_cap;
        for pod in 0..4 {
            let hosts: Vec<usize> = (pod * 4..(pod + 1) * 4).collect();
            let peak_ssd = t.peak_demand(&hosts, |ty| ty.ssd_gb as f64);
            let peak_nic = t.peak_demand(&hosts, |ty| ty.nic_gbps);
            assert!(peak_ssd <= 4.0 * cap.ssd_gb as f64 + 1e-9);
            assert!(peak_nic <= 4.0 * cap.nic_gbps + 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AllocTrace::generate(8, SimDuration::from_secs(3600), 9);
        let b = AllocTrace::generate(8, SimDuration::from_secs(3600), 9);
        assert_eq!(a.instances.len(), b.instances.len());
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn fleet_replay_closes_every_lease_and_renews() {
        let topo = FleetTopology::ring(
            4,
            PodTopology::production(4, 0),
            oasis_cxl::topology::UPLINK_LATENCY,
        );
        let r = AllocTrace::replay_fleet(&stream(), &topo, HomePolicy::RoundRobin, 16)
            .expect("ring topology is valid");
        let report = r.state.report();
        assert_eq!(report.live, 0, "every instance killed at its departure");
        assert_eq!(report.placed as usize, r.placements.len());
        assert!(r.state.resizes > 0, "renewal resizes were exercised");
        assert_eq!(
            r.state.resize_rejections, 0,
            "same-lease renewals always fit"
        );
    }

    #[test]
    fn pinned_homes_spill_over_links_but_not_without_them() {
        let s = stream();
        let pod = PodTopology::production(4, 0);
        let unlinked = FleetTopology {
            pods: vec![pod.clone(); 4],
            links: Vec::new(),
        };
        let ring = FleetTopology::ring(4, pod, oasis_cxl::topology::UPLINK_LATENCY);
        let a = AllocTrace::replay_fleet(&s, &unlinked, HomePolicy::RoundRobin, 0)
            .expect("unlinked topology is valid");
        let b = AllocTrace::replay_fleet(&s, &ring, HomePolicy::RoundRobin, 0)
            .expect("ring topology is valid");
        assert_eq!(a.state.report().spill_placements, 0);
        assert_eq!(a.state.report().spill_bytes, 0);
        assert!(
            b.state.report().spill_placements > 0,
            "saturated pinned homes must spill devices over the ring"
        );
        assert!(b.state.report().spill_bytes > 0);
        // Spilled placements run on their home pod and are attributed there.
        assert!(b.placements.iter().any(|p| p.device_pod != p.pod));
    }

    #[test]
    fn fleet_replay_is_deterministic() {
        let topo = FleetTopology::ring(
            3,
            PodTopology::production(5, 0),
            oasis_cxl::topology::UPLINK_LATENCY,
        );
        let a = AllocTrace::replay_fleet(&stream(), &topo, HomePolicy::RoundRobin, 7)
            .expect("ring topology is valid");
        let b = AllocTrace::replay_fleet(&stream(), &topo, HomePolicy::RoundRobin, 7)
            .expect("ring topology is valid");
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn catalog_is_heterogeneous_and_fits_hosts() {
        let cat = azure_like_catalog();
        assert!(cat.iter().any(|t| t.ssd_gb == 0));
        assert!(cat.iter().any(|t| t.ssd_gb > 1000));
        let cap = HostCapacity::default();
        for t in &cat {
            assert!(t.vcpus <= cap.vcpus && t.mem_gb <= cap.mem_gb);
            assert!(t.ssd_gb <= cap.ssd_gb && t.nic_gbps <= cap.nic_gbps);
        }
    }
}
