//! Synthetic allocation traces and pod-aware placement.
//!
//! §2.2 Reason 1: a production allocation trace shows hosts filling up along
//! one dimension while others strand. Two mechanisms matter and both are
//! modelled:
//!
//! * instances are packed by CPU/memory, so device resources on CPU-full
//!   hosts cannot be allocated, and
//! * device requests are *chunky* (a storage-optimized instance wants
//!   terabytes of local SSD; a network-optimized one wants tens of Gbit/s),
//!   so free device capacity fragments: no single host can fit the request
//!   even though the rack has plenty.
//!
//! Pooling (§2.2, Fig. 2) attacks the second mechanism: an instance's
//! NIC/SSD request may be satisfied by *pod*-level capacity. Placement here
//! therefore takes a pod size: CPU/memory must fit on the chosen host,
//! NIC/SSD must fit in the host's pod.
//!
//! Placement is no longer hand-rolled here: every arrival and departure is
//! replayed as a typed [`FleetCommand`] through `oasis-core`'s replicated
//! [`FleetAllocator`] — the same control-plane path a live [`Fleet`] uses —
//! so the trace study and the runtime share one placement policy.
//! [`AllocTrace::place`] drives an *unlinked* fleet (one pod per
//! `pod_size` hosts, no uplinks), which reduces exactly to the pod-scoped
//! best-fit policy this module always implemented; [`AllocTrace::replay_fleet`]
//! replays against a linked [`FleetTopology`], letting stranded device
//! requests spill to the nearest neighbor pod.
//!
//! [`Fleet`]: oasis_core::fleet::Fleet

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use oasis_core::allocator::{FleetAllocator, FleetCommand, FleetResponse, FleetState, ANY_POD};
use oasis_core::error::FleetError;
use oasis_core::snapshot::{SnapshotError, SnapshotReader, SnapshotSection, SnapshotWriter};
use oasis_cxl::topology::{FleetTopology, PodTopology};
use oasis_sim::rng::SimRng;
use oasis_sim::time::{SimDuration, SimTime};

/// One instance type in the catalog (an "SKU").
#[derive(Clone, Debug)]
pub struct InstanceType {
    /// Human-readable name.
    pub name: &'static str,
    /// vCPUs requested.
    pub vcpus: u32,
    /// Memory, GiB.
    pub mem_gb: u32,
    /// Local SSD capacity, GiB.
    pub ssd_gb: u32,
    /// NIC bandwidth allocation, Gbit/s.
    pub nic_gbps: f64,
    /// Relative popularity weight.
    pub weight: f64,
}

impl InstanceType {
    /// NIC allocation in integer Mbit/s — the form every control-plane
    /// command and integer integral consumes. The float multiply happens
    /// exactly here, once, on catalog constants, so downstream arithmetic
    /// is integer-only.
    pub fn nic_mbps(&self) -> u64 {
        // oasis-check: allow(float-determinism) catalog constants convert to fixed point at this single boundary
        (self.nic_gbps * 1000.0) as u64
    }
}

/// A catalog resembling public-cloud offerings. Most demand is
/// compute/memory bound; storage- and network-optimized SKUs make chunky
/// device requests that fragment per-host capacity.
pub fn azure_like_catalog() -> Vec<InstanceType> {
    vec![
        InstanceType {
            name: "gp-small",
            vcpus: 4,
            mem_gb: 16,
            ssd_gb: 0,
            nic_gbps: 2.0,
            weight: 20.0,
        },
        InstanceType {
            name: "gp-large",
            vcpus: 16,
            mem_gb: 64,
            ssd_gb: 200,
            nic_gbps: 8.0,
            weight: 14.0,
        },
        InstanceType {
            name: "compute-opt",
            vcpus: 32,
            mem_gb: 64,
            ssd_gb: 0,
            nic_gbps: 10.0,
            weight: 10.0,
        },
        InstanceType {
            name: "memory-opt",
            vcpus: 16,
            mem_gb: 128,
            ssd_gb: 100,
            nic_gbps: 8.0,
            weight: 10.0,
        },
        InstanceType {
            name: "storage-opt",
            vcpus: 8,
            mem_gb: 64,
            ssd_gb: 5500,
            nic_gbps: 16.0,
            weight: 24.0,
        },
        InstanceType {
            name: "net-opt",
            vcpus: 8,
            mem_gb: 32,
            ssd_gb: 200,
            nic_gbps: 45.0,
            weight: 12.0,
        },
        InstanceType {
            name: "burst-micro",
            vcpus: 2,
            mem_gb: 8,
            ssd_gb: 0,
            nic_gbps: 1.0,
            weight: 10.0,
        },
    ]
}

/// Per-host capacity. Defaults follow §2.1: dual-socket host with one
/// 100 Gbit NIC and six 2 TB NVMe drives.
#[derive(Clone, Copy, Debug)]
pub struct HostCapacity {
    /// vCPUs.
    pub vcpus: u32,
    /// Memory, GiB.
    pub mem_gb: u32,
    /// SSD capacity, GiB.
    pub ssd_gb: u32,
    /// NIC bandwidth, Gbit/s.
    pub nic_gbps: f64,
}

impl HostCapacity {
    /// Host NIC capacity in integer Mbit/s (see [`InstanceType::nic_mbps`]).
    pub fn nic_mbps(&self) -> u64 {
        // oasis-check: allow(float-determinism) capacity constants convert to fixed point at this single boundary
        (self.nic_gbps * 1000.0) as u64
    }
}

impl Default for HostCapacity {
    fn default() -> Self {
        HostCapacity {
            vcpus: 96,
            mem_gb: 512,
            ssd_gb: 6 * 2048,
            nic_gbps: 100.0,
        }
    }
}

/// One arrival in the request stream (placement-independent, so the same
/// stream can be replayed against different pod sizes).
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Arrival time, ns.
    pub at: u64,
    /// Departure time, ns.
    pub ends: u64,
    /// Index into the catalog.
    pub type_idx: usize,
}

/// A placement-independent request stream.
#[derive(Clone, Debug)]
pub struct ArrivalStream {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Arrivals sorted by time.
    pub arrivals: Vec<Arrival>,
    /// Stream horizon.
    pub duration: SimDuration,
}

impl ArrivalStream {
    /// Generate a stream sized to keep `hosts` hosts saturated (offered CPU
    /// demand ≈ 2× capacity, so the cluster is always full and stranding
    /// is visible).
    pub fn generate(hosts: usize, duration: SimDuration, seed: u64) -> ArrivalStream {
        Self::generate_with_load(hosts, duration, 2.0, seed)
    }

    /// Generate a stream with an explicit offered-load factor (offered CPU
    /// demand as a multiple of cluster CPU capacity). Use ~1.0 for the
    /// "utilized but not pegged" regime of the provisioning analysis.
    pub fn generate_with_load(
        hosts: usize,
        duration: SimDuration,
        load: f64,
        seed: u64,
    ) -> ArrivalStream {
        let catalog = azure_like_catalog();
        let cap = HostCapacity::default();
        let mut rng = SimRng::new(seed);
        let total_w: f64 = catalog.iter().map(|t| t.weight).sum();
        let mean_vcpus: f64 = catalog
            .iter()
            .map(|t| t.vcpus as f64 * t.weight / total_w)
            .sum();
        let mean_life = SimDuration::from_secs(3600);
        let target_concurrent = hosts as f64 * cap.vcpus as f64 * load / mean_vcpus;
        let gap = mean_life.as_nanos() as f64 / target_concurrent;

        let end = duration.as_nanos() as f64;
        let mut arrivals = Vec::new();
        let mut t = rng.exp(gap);
        while t < end {
            let mut pick = rng.f64() * total_w;
            let mut ti = 0;
            for (i, ty) in catalog.iter().enumerate() {
                if pick < ty.weight {
                    ti = i;
                    break;
                }
                pick -= ty.weight;
            }
            let life = rng.lognormal((mean_life.as_nanos() as f64).ln() - 0.5, 1.0);
            arrivals.push(Arrival {
                at: t as u64,
                ends: ((t + life).min(end)) as u64,
                type_idx: ti,
            });
            t += rng.exp(gap);
        }
        ArrivalStream {
            catalog,
            arrivals,
            duration,
        }
    }
}

/// One placed instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Index into the catalog.
    pub type_idx: usize,
    /// Arrival time.
    pub start: SimTime,
    /// Departure time.
    pub end: SimTime,
    /// Host the scheduler placed it on.
    pub host: usize,
}

/// A placement of a stream onto hosts (possibly with pooled devices).
#[derive(Clone, Debug)]
pub struct AllocTrace {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Host capacity used during placement.
    pub host_cap: HostCapacity,
    /// Number of hosts.
    pub hosts: usize,
    /// Pod size used for device pooling during placement (1 = no pooling).
    pub pod_size: usize,
    /// Placed instances.
    pub instances: Vec<Instance>,
    /// Requests rejected (no feasible host).
    pub rejected: usize,
    /// Trace horizon.
    pub duration: SimTime,
}

/// How a fleet replay picks the home-pod scope of each arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HomePolicy {
    /// Any pod may run the instance (the classic trace-study scope): the
    /// allocator best-fits across the whole fleet, so devices only spill
    /// when every CPU/memory-feasible host sits in a device-exhausted pod.
    AnyPod,
    /// Arrivals are pinned round-robin to a home pod (tenant affinity):
    /// CPU/memory must fit in the home pod, and chunky device requests
    /// spill to the nearest linked neighbor when the home pod strands.
    RoundRobin,
}

/// One placed instance from a fleet replay, with full pod attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetPlacement {
    /// Index into the catalog.
    pub type_idx: usize,
    /// Arrival time.
    pub start: SimTime,
    /// Departure time.
    pub end: SimTime,
    /// Pod whose host runs the instance.
    pub pod: usize,
    /// Host index within `pod`.
    pub host: usize,
    /// Pod serving the device backends (== `pod` unless spilled).
    pub device_pod: usize,
}

/// The result of replaying an [`ArrivalStream`] through the fleet
/// control-plane command API.
#[derive(Clone, Debug)]
pub struct FleetReplay {
    /// The catalog the type indices refer to.
    pub catalog: Vec<InstanceType>,
    /// Host capacity used during placement.
    pub host_cap: HostCapacity,
    /// Hosts per pod, by pod index.
    pub pod_hosts: Vec<usize>,
    /// Placed instances.
    pub placements: Vec<FleetPlacement>,
    /// Requests rejected (no feasible host in scope).
    pub rejected: usize,
    /// Trace horizon.
    pub duration: SimTime,
    /// Final allocator state machine: every instance has been killed at
    /// its departure time, so the per-pod spill-traffic byte counters are
    /// fully closed out and `state.report().live == 0`.
    pub state: FleetState,
}

impl AllocTrace {
    /// Convenience: generate a stream and place it without pooling.
    pub fn generate(hosts: usize, duration: SimDuration, seed: u64) -> AllocTrace {
        let stream = ArrivalStream::generate(hosts, duration, seed);
        Self::place(&stream, hosts, 1)
    }

    /// Place a stream onto `hosts` hosts grouped into pods of `pod_size`.
    /// CPU/memory must fit on the chosen host; SSD/NIC must fit within the
    /// host's pod (this is what Oasis pooling enables). Placement is
    /// best-fit by CPU slack, which is how device resources get stranded.
    ///
    /// Implemented as a fleet replay against an *unlinked* topology: with
    /// no uplinks, spill is impossible and the fleet allocator's pass-1
    /// policy — best-fit `(vcpu slack, mem slack)` over hosts whose own
    /// pod can serve the devices, first minimum winning — is exactly this
    /// function's historical behavior, instance for instance.
    pub fn place(stream: &ArrivalStream, hosts: usize, pod_size: usize) -> AllocTrace {
        assert!(pod_size >= 1);
        let pods = hosts.div_ceil(pod_size);
        let topo = FleetTopology {
            pods: (0..pods)
                .map(|p| {
                    let lo = p * pod_size;
                    let hi = ((p + 1) * pod_size).min(hosts);
                    PodTopology::production(hi - lo, 0)
                })
                .collect(),
            links: Vec::new(),
        };
        let replay = Self::replay_fleet(stream, &topo, HomePolicy::AnyPod, 0)
            .expect("an unlinked fleet accepts every topology command");
        AllocTrace {
            catalog: replay.catalog,
            host_cap: replay.host_cap,
            hosts,
            pod_size,
            instances: replay
                .placements
                .iter()
                .map(|pl| Instance {
                    type_idx: pl.type_idx,
                    start: pl.start,
                    end: pl.end,
                    host: pl.pod * pod_size + pl.host,
                })
                .collect(),
            rejected: replay.rejected,
            duration: replay.duration,
        }
    }

    /// Replay a stream through the fleet control-plane command API against
    /// an arbitrary [`FleetTopology`]: every arrival becomes a
    /// `CreateInstance`, every departure a `KillInstance` (issued before
    /// any arrival at the same or a later time, matching the historical
    /// free-then-place order), and every `resize_every`-th placement a
    /// same-lease `ResizeInstance` renewal that exercises the resize path
    /// without perturbing capacity. All remaining instances are killed at
    /// their departure times after the last arrival, so cross-pod
    /// spill-traffic accounting in the returned state is complete.
    pub fn replay_fleet(
        stream: &ArrivalStream,
        topo: &FleetTopology,
        policy: HomePolicy,
        resize_every: usize,
    ) -> Result<FleetReplay, FleetError> {
        ReplaySession::new(stream, topo, policy, resize_every)?.finish()
    }

    /// Time-averaged allocated fraction of a resource across the whole
    /// cluster, measured over the steady-state window `[warmup, end]`.
    pub fn mean_allocated_fraction(
        &self,
        capacity_per_host: f64,
        resource: impl Fn(&InstanceType) -> f64,
    ) -> f64 {
        let end = self.duration.as_nanos();
        let warmup = end / 4;
        let window = (end - warmup) as f64;
        let provisioned = self.hosts as f64 * capacity_per_host;
        let mut acc = 0.0;
        for inst in &self.instances {
            let s = inst.start.as_nanos().max(warmup);
            let e = inst.end.as_nanos().min(end);
            if e > s {
                acc += resource(&self.catalog[inst.type_idx]) * (e - s) as f64;
            }
        }
        acc / window / provisioned
    }

    /// Peak concurrent demand of a resource on a set of hosts.
    pub fn peak_demand(&self, hosts: &[usize], resource: impl Fn(&InstanceType) -> f64) -> f64 {
        let mut events: Vec<(u64, f64)> = Vec::new();
        for inst in &self.instances {
            if hosts.contains(&inst.host) {
                let r = resource(&self.catalog[inst.type_idx]);
                events.push((inst.start.as_nanos(), r));
                events.push((inst.end.as_nanos(), -r));
            }
        }
        events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.partial_cmp(&b.1).unwrap()));
        let mut cur = 0.0;
        let mut peak = 0.0f64;
        for (_, delta) in events {
            cur += delta;
            peak = peak.max(cur);
        }
        peak
    }
}

/// A resumable fleet replay: the identical command sequence to
/// [`AllocTrace::replay_fleet`], split into steps so a run can be stopped
/// at an epoch, serialized into the `oasis-core` snapshot container, and
/// resumed byte-identically later (DESIGN.md §15).
///
/// A checkpoint carries two sections: `FleetState` (the allocator's
/// applied state, via [`FleetAllocator::checkpoint`] — the restored
/// allocator treats it as its log-compaction base) and `ReplayCursor`
/// (a workload digest plus the replay loop's own working set: pending
/// departures, placements so far, the rejection tally, and the next
/// arrival index). The digest pins the checkpoint to one exact workload —
/// resuming against a different stream, topology, policy, or resize
/// cadence is a typed [`SnapshotError::StreamMismatch`], never a silently
/// diverging run.
pub struct ReplaySession<'a> {
    stream: &'a ArrivalStream,
    pod_hosts: Vec<usize>,
    policy: HomePolicy,
    resize_every: usize,
    alloc: FleetAllocator,
    /// Pending departures as a min-heap of (ends, fleet id).
    departures: BinaryHeap<Reverse<(u64, u64)>>,
    placements: Vec<FleetPlacement>,
    rejected: usize,
    /// Index of the first arrival not yet replayed.
    next_arrival: usize,
}

/// FNV-1a over one little-endian word (the digest primitive — cheap,
/// deterministic, and dependency-free).
fn fnv1a_u64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl<'a> ReplaySession<'a> {
    /// Start a replay: registers every pod and link with a fresh fleet
    /// allocator, exactly as [`AllocTrace::replay_fleet`] always did.
    pub fn new(
        stream: &'a ArrivalStream,
        topo: &FleetTopology,
        policy: HomePolicy,
        resize_every: usize,
    ) -> Result<ReplaySession<'a>, FleetError> {
        let cap = HostCapacity::default();
        let nic_mbps_per_host = cap.nic_mbps();
        let mut alloc = FleetAllocator::new();
        for (p, pod) in topo.pods.iter().enumerate() {
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::RegisterPod {
                    pod: p as u32,
                    hosts: pod.hosts as u32,
                    vcpus_per_host: cap.vcpus,
                    mem_gb_per_host: cap.mem_gb,
                    nic_mbps: pod.hosts as u64 * nic_mbps_per_host,
                    ssd_cap: pod.hosts as u64 * cap.ssd_gb as u64,
                },
            )?;
        }
        for l in &topo.links {
            alloc.execute(
                SimTime::ZERO,
                &FleetCommand::AddLink {
                    a: l.a as u32,
                    b: l.b as u32,
                    latency_ns: l.latency.as_nanos(),
                },
            )?;
        }
        Ok(ReplaySession {
            stream,
            pod_hosts: topo.pods.iter().map(|p| p.hosts).collect(),
            policy,
            resize_every,
            alloc,
            departures: BinaryHeap::new(),
            placements: Vec::new(),
            rejected: 0,
            next_arrival: 0,
        })
    }

    /// Digest pinning a checkpoint to one workload: every arrival triple,
    /// the pod sizes, the home policy, and the resize cadence.
    pub fn workload_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv1a_u64(h, self.stream.arrivals.len() as u64);
        for arr in &self.stream.arrivals {
            h = fnv1a_u64(h, arr.at);
            h = fnv1a_u64(h, arr.ends);
            h = fnv1a_u64(h, arr.type_idx as u64);
        }
        for &p in &self.pod_hosts {
            h = fnv1a_u64(h, p as u64);
        }
        h = fnv1a_u64(
            h,
            match self.policy {
                HomePolicy::AnyPod => 0,
                HomePolicy::RoundRobin => 1,
            },
        );
        fnv1a_u64(h, self.resize_every as u64)
    }

    /// Replay one arrival (first killing every lease that departs at or
    /// before it). Returns `false` once the stream is exhausted.
    fn step(&mut self) -> Result<bool, FleetError> {
        let Some(arr) = self.stream.arrivals.get(self.next_arrival).copied() else {
            return Ok(false);
        };
        let i = self.next_arrival;
        self.next_arrival += 1;
        let now = SimTime::from_nanos(arr.at);
        while let Some(&Reverse((ends, id))) = self.departures.peek() {
            if ends > arr.at {
                break;
            }
            self.departures.pop();
            self.alloc
                .execute(now, &FleetCommand::KillInstance { at: ends, id })?;
        }
        let ty = &self.stream.catalog[arr.type_idx];
        let nic_mbps = ty.nic_mbps() as u32;
        let npods = self.pod_hosts.len().max(1);
        let home_pod = match self.policy {
            HomePolicy::AnyPod => ANY_POD,
            HomePolicy::RoundRobin => (i % npods) as u32,
        };
        let outcome = self.alloc.execute(
            now,
            &FleetCommand::CreateInstance {
                at: arr.at,
                vcpus: ty.vcpus,
                mem_gb: ty.mem_gb,
                ssd: ty.ssd_gb,
                nic_mbps,
                home_pod,
            },
        )?;
        match outcome {
            FleetResponse::Created {
                id,
                pod,
                host,
                device_pod,
            } => {
                self.departures.push(Reverse((arr.ends, id)));
                self.placements.push(FleetPlacement {
                    type_idx: arr.type_idx,
                    start: now,
                    end: SimTime::from_nanos(arr.ends),
                    pod,
                    host,
                    device_pod,
                });
                if self.resize_every > 0 && (id + 1) % self.resize_every as u64 == 0 {
                    self.alloc.execute(
                        now,
                        &FleetCommand::ResizeInstance {
                            at: arr.at,
                            id,
                            nic_mbps,
                            ssd: ty.ssd_gb,
                        },
                    )?;
                }
            }
            _ => self.rejected += 1,
        }
        Ok(true)
    }

    /// Replay every arrival with `at <= epoch_ns`, then stop. Leases
    /// departing after the last replayed arrival stay pending — they are
    /// part of the checkpoint and are killed on the resumed (or
    /// continued) run exactly when the uninterrupted run would kill them.
    pub fn run_to_epoch(&mut self, epoch_ns: u64) -> Result<(), FleetError> {
        while self
            .stream
            .arrivals
            .get(self.next_arrival)
            .is_some_and(|a| a.at <= epoch_ns)
        {
            self.step()?;
        }
        Ok(())
    }

    /// Replay the rest of the stream, close every remaining lease at its
    /// departure time, and return the completed [`FleetReplay`].
    pub fn finish(mut self) -> Result<FleetReplay, FleetError> {
        while self.step()? {}
        while let Some(Reverse((ends, id))) = self.departures.pop() {
            self.alloc.execute(
                SimTime::from_nanos(ends),
                &FleetCommand::KillInstance { at: ends, id },
            )?;
        }
        Ok(FleetReplay {
            catalog: self.stream.catalog.clone(),
            host_cap: HostCapacity::default(),
            pod_hosts: self.pod_hosts,
            placements: self.placements,
            rejected: self.rejected,
            duration: SimTime::ZERO + self.stream.duration,
            state: self.alloc.state.clone(),
        })
    }

    /// Read access to the embedded allocator (consistency checks).
    pub fn allocator(&self) -> &FleetAllocator {
        &self.alloc
    }

    /// Serialize the paused replay into the snapshot container.
    /// Byte-stable: the same paused state always checkpoints to the same
    /// bytes (the departure heap is canonicalized by sorting).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin_section(SnapshotSection::FleetState);
        self.alloc.checkpoint(&mut w);
        w.end_section();
        w.begin_section(SnapshotSection::ReplayCursor);
        w.put_u64(self.workload_digest());
        w.put_u64(self.next_arrival as u64);
        w.put_u64(self.rejected as u64);
        let mut pending: Vec<(u64, u64)> = self.departures.iter().map(|&Reverse(p)| p).collect();
        pending.sort_unstable();
        w.put_u64(pending.len() as u64);
        for (ends, id) in pending {
            w.put_u64(ends);
            w.put_u64(id);
        }
        w.put_u64(self.placements.len() as u64);
        for pl in &self.placements {
            w.put_u64(pl.type_idx as u64);
            w.put_u64(pl.start.as_nanos());
            w.put_u64(pl.end.as_nanos());
            w.put_u32(pl.pod as u32);
            w.put_u32(pl.host as u32);
            w.put_u32(pl.device_pod as u32);
        }
        w.end_section();
        w.finish()
    }

    /// Resume a checkpointed replay against the same workload. The
    /// allocator restores the `FleetState` section as its compaction
    /// base (so `consistent_with_log` keeps holding with the
    /// pre-checkpoint log gone), and the cursor section re-arms the
    /// replay loop. A digest mismatch — different stream, topology,
    /// policy, or resize cadence — is a typed error.
    pub fn resume(
        stream: &'a ArrivalStream,
        topo: &FleetTopology,
        policy: HomePolicy,
        resize_every: usize,
        bytes: &[u8],
    ) -> Result<ReplaySession<'a>, SnapshotError> {
        let mut session = ReplaySession {
            stream,
            pod_hosts: topo.pods.iter().map(|p| p.hosts).collect(),
            policy,
            resize_every,
            alloc: FleetAllocator::new(),
            departures: BinaryHeap::new(),
            placements: Vec::new(),
            rejected: 0,
            next_arrival: 0,
        };
        let mut r = SnapshotReader::open(bytes)?;
        let mut st = r.section(SnapshotSection::FleetState)?;
        session.alloc.restore(&mut st)?;
        let mut cur = r.section(SnapshotSection::ReplayCursor)?;
        let want = cur.u64("replay digest")?;
        let got = session.workload_digest();
        if want != got {
            return Err(SnapshotError::StreamMismatch { want, got });
        }
        let next = cur.u64("replay next arrival")? as usize;
        if next > stream.arrivals.len() {
            return Err(SnapshotError::Corrupt("replay next arrival"));
        }
        session.next_arrival = next;
        session.rejected = cur.u64("replay rejected")? as usize;
        let pending = cur.u64("replay departure count")?;
        let mut prev: Option<(u64, u64)> = None;
        for _ in 0..pending {
            let ends = cur.u64("replay departure ends")?;
            let id = cur.u64("replay departure id")?;
            if prev.is_some_and(|p| p >= (ends, id)) {
                return Err(SnapshotError::Corrupt("replay departure order"));
            }
            prev = Some((ends, id));
            session.departures.push(Reverse((ends, id)));
        }
        let placed = cur.u64("replay placement count")?;
        for _ in 0..placed {
            let type_idx = cur.u64("replay placement type")? as usize;
            if type_idx >= stream.catalog.len() {
                return Err(SnapshotError::Corrupt("replay placement type"));
            }
            let start = cur.u64("replay placement start")?;
            let end = cur.u64("replay placement end")?;
            let pod = cur.u32("replay placement pod")? as usize;
            let host = cur.u32("replay placement host")? as usize;
            let device_pod = cur.u32("replay placement device pod")? as usize;
            session.placements.push(FleetPlacement {
                type_idx,
                start: SimTime::from_nanos(start),
                end: SimTime::from_nanos(end),
                pod,
                host,
                device_pod,
            });
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> ArrivalStream {
        ArrivalStream::generate(16, SimDuration::from_secs(3 * 3600), 42)
    }

    #[test]
    fn cluster_fills_and_rejects() {
        let t = AllocTrace::place(&stream(), 16, 1);
        assert!(!t.instances.is_empty());
        assert!(t.rejected > 0, "cluster must reach saturation");
        assert!(t.instances.iter().all(|i| i.host < t.hosts));
        assert!(t.instances.iter().all(|i| i.start <= i.end));
    }

    #[test]
    fn devices_strand_harder_than_cpu() {
        let t = AllocTrace::place(&stream(), 16, 1);
        let cap = t.host_cap;
        let cpu = t.mean_allocated_fraction(cap.vcpus as f64, |ty| ty.vcpus as f64);
        let nic = t.mean_allocated_fraction(cap.nic_gbps, |ty| ty.nic_gbps);
        let ssd = t.mean_allocated_fraction(cap.ssd_gb as f64, |ty| ty.ssd_gb as f64);
        assert!(cpu > 0.80, "cpu allocated {cpu}");
        assert!(nic < cpu, "nic {nic} vs cpu {cpu}");
        assert!(ssd < cpu, "ssd {ssd} vs cpu {cpu}");
    }

    #[test]
    fn pooling_reduces_rejections() {
        let s = stream();
        let unpooled = AllocTrace::place(&s, 16, 1);
        let pooled = AllocTrace::place(&s, 16, 8);
        assert!(
            pooled.rejected < unpooled.rejected,
            "pooled {} vs unpooled {}",
            pooled.rejected,
            unpooled.rejected
        );
    }

    #[test]
    fn pooling_never_violates_pod_capacity() {
        let s = stream();
        let t = AllocTrace::place(&s, 16, 4);
        let cap = t.host_cap;
        for pod in 0..4 {
            let hosts: Vec<usize> = (pod * 4..(pod + 1) * 4).collect();
            let peak_ssd = t.peak_demand(&hosts, |ty| ty.ssd_gb as f64);
            let peak_nic = t.peak_demand(&hosts, |ty| ty.nic_gbps);
            assert!(peak_ssd <= 4.0 * cap.ssd_gb as f64 + 1e-9);
            assert!(peak_nic <= 4.0 * cap.nic_gbps + 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AllocTrace::generate(8, SimDuration::from_secs(3600), 9);
        let b = AllocTrace::generate(8, SimDuration::from_secs(3600), 9);
        assert_eq!(a.instances.len(), b.instances.len());
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn fleet_replay_closes_every_lease_and_renews() {
        let topo = FleetTopology::ring(
            4,
            PodTopology::production(4, 0),
            oasis_cxl::topology::UPLINK_LATENCY,
        );
        let r = AllocTrace::replay_fleet(&stream(), &topo, HomePolicy::RoundRobin, 16)
            .expect("ring topology is valid");
        let report = r.state.report();
        assert_eq!(report.live, 0, "every instance killed at its departure");
        assert_eq!(report.placed as usize, r.placements.len());
        assert!(r.state.resizes > 0, "renewal resizes were exercised");
        assert_eq!(
            r.state.resize_rejections, 0,
            "same-lease renewals always fit"
        );
    }

    #[test]
    fn pinned_homes_spill_over_links_but_not_without_them() {
        let s = stream();
        let pod = PodTopology::production(4, 0);
        let unlinked = FleetTopology {
            pods: vec![pod.clone(); 4],
            links: Vec::new(),
        };
        let ring = FleetTopology::ring(4, pod, oasis_cxl::topology::UPLINK_LATENCY);
        let a = AllocTrace::replay_fleet(&s, &unlinked, HomePolicy::RoundRobin, 0)
            .expect("unlinked topology is valid");
        let b = AllocTrace::replay_fleet(&s, &ring, HomePolicy::RoundRobin, 0)
            .expect("ring topology is valid");
        assert_eq!(a.state.report().spill_placements, 0);
        assert_eq!(a.state.report().spill_bytes, 0);
        assert!(
            b.state.report().spill_placements > 0,
            "saturated pinned homes must spill devices over the ring"
        );
        assert!(b.state.report().spill_bytes > 0);
        // Spilled placements run on their home pod and are attributed there.
        assert!(b.placements.iter().any(|p| p.device_pod != p.pod));
    }

    #[test]
    fn fleet_replay_is_deterministic() {
        let topo = FleetTopology::ring(
            3,
            PodTopology::production(5, 0),
            oasis_cxl::topology::UPLINK_LATENCY,
        );
        let a = AllocTrace::replay_fleet(&stream(), &topo, HomePolicy::RoundRobin, 7)
            .expect("ring topology is valid");
        let b = AllocTrace::replay_fleet(&stream(), &topo, HomePolicy::RoundRobin, 7)
            .expect("ring topology is valid");
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let s = stream();
        let topo = FleetTopology::ring(
            3,
            PodTopology::production(5, 0),
            oasis_cxl::topology::UPLINK_LATENCY,
        );
        let full = AllocTrace::replay_fleet(&s, &topo, HomePolicy::RoundRobin, 7)
            .expect("ring topology is valid");

        // Stop at the stream midpoint, checkpoint, resume, finish.
        let mut session = ReplaySession::new(&s, &topo, HomePolicy::RoundRobin, 7).unwrap();
        session
            .run_to_epoch(s.duration.as_nanos() / 2)
            .expect("first half replays");
        let bytes = session.checkpoint();
        assert_eq!(bytes, session.checkpoint(), "checkpoint is byte-stable");
        drop(session);
        let resumed = ReplaySession::resume(&s, &topo, HomePolicy::RoundRobin, 7, &bytes)
            .expect("checkpoint resumes");
        assert!(
            resumed.allocator().consistent_with_log(),
            "restored base + empty log must stay consistent"
        );
        let half = resumed.finish().expect("second half replays");

        assert_eq!(half.placements, full.placements);
        assert_eq!(half.rejected, full.rejected);
        assert_eq!(half.state, full.state, "final state diverged after resume");
    }

    #[test]
    fn resume_rejects_a_different_workload() {
        let s = stream();
        let topo = FleetTopology::ring(
            3,
            PodTopology::production(5, 0),
            oasis_cxl::topology::UPLINK_LATENCY,
        );
        let mut session = ReplaySession::new(&s, &topo, HomePolicy::RoundRobin, 7).unwrap();
        session.run_to_epoch(s.duration.as_nanos() / 2).unwrap();
        let bytes = session.checkpoint();

        // Different seed → different arrivals → digest mismatch.
        let other = ArrivalStream::generate(16, SimDuration::from_secs(3 * 3600), 43);
        match ReplaySession::resume(&other, &topo, HomePolicy::RoundRobin, 7, &bytes) {
            Err(oasis_core::snapshot::SnapshotError::StreamMismatch { .. }) => {}
            other => panic!("expected StreamMismatch, got {:?}", other.err()),
        }
        // Same stream, different resize cadence: also a mismatch.
        match ReplaySession::resume(&s, &topo, HomePolicy::RoundRobin, 8, &bytes) {
            Err(oasis_core::snapshot::SnapshotError::StreamMismatch { .. }) => {}
            other => panic!("expected StreamMismatch, got {:?}", other.err()),
        }
        // Garbage is a typed error, not a panic.
        assert!(ReplaySession::resume(&s, &topo, HomePolicy::RoundRobin, 7, b"junk").is_err());
    }

    #[test]
    fn catalog_is_heterogeneous_and_fits_hosts() {
        let cat = azure_like_catalog();
        assert!(cat.iter().any(|t| t.ssd_gb == 0));
        assert!(cat.iter().any(|t| t.ssd_gb > 1000));
        let cap = HostCapacity::default();
        for t in &cat {
            assert!(t.vcpus <= cap.vcpus && t.mem_gb <= cap.mem_gb);
            assert!(t.ssd_gb <= cap.ssd_gb && t.nic_gbps <= cap.nic_gbps);
        }
    }
}
