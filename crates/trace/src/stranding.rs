//! The Fig. 2 pooling simulation.
//!
//! Replays the *same* request stream against placements with increasing pod
//! sizes. Without pooling, chunky SSD/NIC requests fragment: a
//! storage-optimized instance is rejected although the rack has plenty of
//! free SSD, so device capacity sits stranded on CPU-full hosts. Pooling
//! lets a host borrow pod-level device capacity, so more device-hungry
//! instances land and stranding falls — the Fig. 2 curves.
//!
//! Stranding is reported as `1 − time-averaged allocated fraction` of each
//! resource over the steady-state window, which is the metric §2.2 quotes
//! ("27 % of NIC bandwidth, 33 % of SSD capacity ... are stranded on
//! average").

use oasis_obs::{MetricSink, MetricsSnapshot};
use oasis_sim::shard::{threads_from_env, Envelope, Outgoing, ShardWorld, ShardedRunner};
use oasis_sim::time::{SimDuration, SimTime};

use crate::alloc_trace::{AllocTrace, ArrivalStream, FleetReplay};
use crate::metrics;

/// Fixed-point scale for stranding fractions in snapshots (parts per
/// billion): snapshots carry only integers, and at the figures'
/// one-decimal percentage resolution the round trip is lossless.
pub const PPB: f64 = 1e9;

/// Stranding at one pod size.
#[derive(Clone, Copy, Debug)]
pub struct StrandingPoint {
    /// Hosts per pod.
    pub pod_size: usize,
    /// Fraction of NIC bandwidth stranded.
    pub nic_stranded: f64,
    /// Fraction of SSD capacity stranded.
    pub ssd_stranded: f64,
    /// Fraction of CPU cores stranded.
    pub cpu_stranded: f64,
    /// Fraction of memory stranded.
    pub mem_stranded: f64,
    /// Requests rejected during placement.
    pub rejected: usize,
}

fn measure(trace: &AllocTrace) -> StrandingPoint {
    let cap = trace.host_cap;
    StrandingPoint {
        pod_size: trace.pod_size,
        nic_stranded: 1.0 - trace.mean_allocated_fraction(cap.nic_gbps, |t| t.nic_gbps),
        ssd_stranded: 1.0 - trace.mean_allocated_fraction(cap.ssd_gb as f64, |t| t.ssd_gb as f64),
        cpu_stranded: 1.0 - trace.mean_allocated_fraction(cap.vcpus as f64, |t| t.vcpus as f64),
        mem_stranded: 1.0 - trace.mean_allocated_fraction(cap.mem_gb as f64, |t| t.mem_gb as f64),
        rejected: trace.rejected,
    }
}

/// Run the Fig. 2 sweep: place `repeats` independent request streams at each
/// pod size and average the stranding.
pub fn stranding_by_pod_size(
    hosts: usize,
    duration: SimDuration,
    pod_sizes: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<StrandingPoint> {
    let streams: Vec<ArrivalStream> = (0..repeats)
        .map(|r| ArrivalStream::generate(hosts, duration, seed.wrapping_add(r as u64 * 7919)))
        .collect();
    pod_sizes
        .iter()
        .map(|&k| {
            let mut acc = StrandingPoint {
                pod_size: k,
                nic_stranded: 0.0,
                ssd_stranded: 0.0,
                cpu_stranded: 0.0,
                mem_stranded: 0.0,
                rejected: 0,
            };
            for s in &streams {
                let p = measure(&AllocTrace::place(s, hosts, k));
                acc.nic_stranded += p.nic_stranded;
                acc.ssd_stranded += p.ssd_stranded;
                acc.cpu_stranded += p.cpu_stranded;
                acc.mem_stranded += p.mem_stranded;
                acc.rejected += p.rejected;
            }
            let n = repeats as f64;
            acc.nic_stranded /= n;
            acc.ssd_stranded /= n;
            acc.cpu_stranded /= n;
            acc.mem_stranded /= n;
            acc
        })
        .collect()
}

/// Export a stranding sweep into `sink` under the [`crate::metrics`]
/// names, tagged by pod size.
pub fn export_stranding(pts: &[StrandingPoint], sink: &mut MetricSink) {
    for p in pts {
        let t = p.pod_size as u32;
        sink.set(metrics::STRANDED_NIC_PPB, t, (p.nic_stranded * PPB) as u64);
        sink.set(metrics::STRANDED_SSD_PPB, t, (p.ssd_stranded * PPB) as u64);
        sink.set(metrics::STRANDED_CPU_PPB, t, (p.cpu_stranded * PPB) as u64);
        sink.set(metrics::STRANDED_MEM_PPB, t, (p.mem_stranded * PPB) as u64);
        sink.set(metrics::PLACEMENT_REJECTED, t, p.rejected as u64);
    }
}

/// Reconstruct the sweep from a snapshot (the path the figure binaries
/// print from), ascending by pod size.
pub fn stranding_from_snapshot(snap: &MetricsSnapshot) -> Vec<StrandingPoint> {
    snap.counter_tags(metrics::STRANDED_NIC_PPB)
        .into_iter()
        .map(|(tag, nic)| StrandingPoint {
            pod_size: tag as usize,
            nic_stranded: nic as f64 / PPB,
            ssd_stranded: snap.counter(metrics::STRANDED_SSD_PPB, tag) as f64 / PPB,
            cpu_stranded: snap.counter(metrics::STRANDED_CPU_PPB, tag) as f64 / PPB,
            mem_stranded: snap.counter(metrics::STRANDED_MEM_PPB, tag) as f64 / PPB,
            rejected: snap.counter(metrics::PLACEMENT_REJECTED, tag) as usize,
        })
        .collect()
}

/// Per-pod stranding from a fleet replay, in integer parts per billion so
/// the figures round-trip through snapshots losslessly and the measurement
/// is byte-identical at any `OASIS_SHARD_THREADS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PodStranding {
    /// Pod index.
    pub pod: usize,
    /// Fraction of the pod's NIC bandwidth stranded, parts per billion.
    pub nic_stranded_ppb: u64,
    /// Fraction of the pod's SSD capacity stranded, parts per billion.
    pub ssd_stranded_ppb: u64,
    /// Instances whose device backends this pod served.
    pub placements: u64,
}

/// One pod's utilization integral, run as a shard so a wide fleet's
/// measurement parallelizes under the conservative-window runner. The
/// shards never message each other (a pod's device usage is attributed
/// wholly to that pod), so any window schedule — hence any thread count —
/// produces the same integer sums.
struct PodIntegral {
    /// `(nic_mbps, ssd_gb, start_ns, end_ns)` per instance served here.
    items: Vec<(u64, u64, u64, u64)>,
    warmup: u64,
    end: u64,
    done: bool,
    /// Σ nic_mbps · overlap_ns over the steady-state window.
    nic_acc: u128,
    /// Σ ssd_gb · overlap_ns over the steady-state window.
    ssd_acc: u128,
}

impl ShardWorld for PodIntegral {
    type Msg = ();

    fn next_time(&self) -> SimTime {
        if self.done {
            SimTime::MAX
        } else {
            SimTime::ZERO
        }
    }

    fn run_window(
        &mut self,
        _until: SimTime,
        inbox: &mut Vec<Envelope<()>>,
        _outbox: &mut Vec<Outgoing<()>>,
    ) -> u64 {
        inbox.clear();
        if self.done {
            return 0;
        }
        self.done = true;
        for &(nic, ssd, s, e) in &self.items {
            let s = s.max(self.warmup);
            let e = e.min(self.end);
            if e > s {
                let dt = (e - s) as u128;
                self.nic_acc += nic as u128 * dt;
                self.ssd_acc += ssd as u128 * dt;
            }
        }
        self.items.len() as u64
    }
}

/// Measure per-pod stranding over a fleet replay's steady-state window
/// `[end/4, end]`, attributing each instance's device usage to the pod
/// that served its backends (`device_pod`), so a spilled placement relieves
/// the *neighbor's* stranding, not its home pod's. One shard per pod,
/// honoring `OASIS_SHARD_THREADS`; all-integer arithmetic keeps the result
/// identical at every thread count.
pub fn measure_fleet_stranding(replay: &FleetReplay) -> Vec<PodStranding> {
    let end = replay.duration.as_nanos();
    let warmup = end / 4;
    let pods = replay.pod_hosts.len();
    if pods == 0 || end == 0 {
        return Vec::new();
    }
    let mut worlds: Vec<PodIntegral> = (0..pods)
        .map(|_| PodIntegral {
            items: Vec::new(),
            warmup,
            end,
            done: false,
            nic_acc: 0,
            ssd_acc: 0,
        })
        .collect();
    for pl in &replay.placements {
        let ty = &replay.catalog[pl.type_idx];
        worlds[pl.device_pod].items.push((
            (ty.nic_gbps * 1000.0) as u64,
            ty.ssd_gb as u64,
            pl.start.as_nanos(),
            pl.end.as_nanos(),
        ));
    }
    let mut runner: ShardedRunner<()> =
        ShardedRunner::new(pods, SimDuration::from_nanos(end), threads_from_env());
    runner
        .run(&mut worlds, SimTime::from_nanos(end))
        .expect("a whole-horizon lookahead is nonzero");

    let window = (end - warmup) as u128;
    let cap = replay.host_cap;
    let nic_mbps_per_host = (cap.nic_gbps * 1000.0) as u128;
    worlds
        .iter()
        .enumerate()
        .map(|(p, w)| {
            let hosts = replay.pod_hosts[p] as u128;
            let nic_cap = hosts * nic_mbps_per_host * window;
            let ssd_cap = hosts * cap.ssd_gb as u128 * window;
            let used_ppb =
                |acc: u128, cap: u128| (acc * 1_000_000_000).checked_div(cap).unwrap_or(0) as u64;
            PodStranding {
                pod: p,
                nic_stranded_ppb: 1_000_000_000_u64.saturating_sub(used_ppb(w.nic_acc, nic_cap)),
                ssd_stranded_ppb: 1_000_000_000_u64.saturating_sub(used_ppb(w.ssd_acc, ssd_cap)),
                placements: replay.state.pod_placements[p],
            }
        })
        .collect()
}

/// Export per-pod fleet stranding into `sink` under the [`crate::metrics`]
/// names, tagged by pod index. Every pod gets all three entries, including
/// zeros, so reconstruction never drops a pod.
pub fn export_fleet_stranding(pts: &[PodStranding], sink: &mut MetricSink) {
    for p in pts {
        let t = p.pod as u32;
        sink.set(metrics::STRANDING_POD_NIC_PPB, t, p.nic_stranded_ppb);
        sink.set(metrics::STRANDING_POD_SSD_PPB, t, p.ssd_stranded_ppb);
        sink.set(metrics::STRANDING_POD_PLACED, t, p.placements);
    }
}

/// Reconstruct per-pod fleet stranding from a snapshot, ascending by pod.
pub fn fleet_stranding_from_snapshot(snap: &MetricsSnapshot) -> Vec<PodStranding> {
    snap.counter_tags(metrics::STRANDING_POD_NIC_PPB)
        .into_iter()
        .map(|(tag, nic)| PodStranding {
            pod: tag as usize,
            nic_stranded_ppb: nic,
            ssd_stranded_ppb: snap.counter(metrics::STRANDING_POD_SSD_PPB, tag),
            placements: snap.counter(metrics::STRANDING_POD_PLACED, tag),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<StrandingPoint> {
        stranding_by_pod_size(16, SimDuration::from_secs(3 * 3600), &[1, 2, 4, 8], 2, 11)
    }

    #[test]
    fn stranding_decreases_with_pod_size() {
        let pts = sweep();
        assert!(
            pts[3].nic_stranded < pts[0].nic_stranded - 0.01,
            "nic: {} -> {}",
            pts[0].nic_stranded,
            pts[3].nic_stranded
        );
        assert!(
            pts[3].ssd_stranded < pts[0].ssd_stranded - 0.02,
            "ssd: {} -> {}",
            pts[0].ssd_stranded,
            pts[3].ssd_stranded
        );
        // Rejections fall as pooling admits device-heavy instances.
        assert!(pts[3].rejected <= pts[0].rejected);
    }

    #[test]
    fn pod1_matches_paper_regime() {
        // §2.2: NIC 27%, SSD 33%, CPU 5%, memory 9% stranded at pod size 1.
        // We require the qualitative regime: devices strand hard, CPU binds.
        let p = sweep()[0];
        assert!(
            (0.12..=0.50).contains(&p.nic_stranded),
            "nic {}",
            p.nic_stranded
        );
        assert!(
            (0.15..=0.55).contains(&p.ssd_stranded),
            "ssd {}",
            p.ssd_stranded
        );
        assert!(p.cpu_stranded < 0.20, "cpu {}", p.cpu_stranded);
        assert!(p.cpu_stranded < p.nic_stranded);
        assert!(p.cpu_stranded < p.ssd_stranded);
    }

    #[test]
    fn snapshot_roundtrip_preserves_figure_resolution() {
        let pts = sweep();
        let mut sink = MetricSink::new();
        export_stranding(&pts, &mut sink);
        let back = stranding_from_snapshot(&sink.snapshot());
        assert_eq!(back.len(), pts.len());
        for (a, b) in pts.iter().zip(&back) {
            assert_eq!(a.pod_size, b.pod_size);
            assert_eq!(a.rejected, b.rejected);
            // ppb fixed point: well inside the figures' 0.1% resolution.
            assert!((a.nic_stranded - b.nic_stranded).abs() < 1e-8);
            assert!((a.ssd_stranded - b.ssd_stranded).abs() < 1e-8);
            assert!((a.cpu_stranded - b.cpu_stranded).abs() < 1e-8);
            assert!((a.mem_stranded - b.mem_stranded).abs() < 1e-8);
        }
    }

    fn ring_replay() -> FleetReplay {
        use crate::alloc_trace::HomePolicy;
        use oasis_cxl::topology::{FleetTopology, PodTopology, UPLINK_LATENCY};
        let stream = ArrivalStream::generate(16, SimDuration::from_secs(2 * 3600), 23);
        let topo = FleetTopology::ring(4, PodTopology::production(4, 0), UPLINK_LATENCY);
        AllocTrace::replay_fleet(&stream, &topo, HomePolicy::RoundRobin, 10)
            .expect("ring topology is valid")
    }

    #[test]
    fn fleet_stranding_covers_every_pod_and_roundtrips() {
        let replay = ring_replay();
        let pts = measure_fleet_stranding(&replay);
        assert_eq!(pts.len(), 4, "one line per pod");
        for p in &pts {
            assert!(p.nic_stranded_ppb <= 1_000_000_000);
            assert!(p.ssd_stranded_ppb <= 1_000_000_000);
            assert!(p.placements > 0, "round-robin homes reach every pod");
        }
        let mut sink = MetricSink::new();
        export_fleet_stranding(&pts, &mut sink);
        let back = fleet_stranding_from_snapshot(&sink.snapshot());
        assert_eq!(back, pts, "ppb integers round-trip losslessly");
    }

    #[test]
    fn fleet_stranding_attributes_spill_to_the_device_pod() {
        let replay = ring_replay();
        let pts = measure_fleet_stranding(&replay);
        let spilled: u64 = replay.state.spill_placements.iter().sum();
        assert!(spilled > 0, "the saturated ring must spill");
        // Total device placements across pods count every placed instance
        // exactly once, spilled or not.
        let total: u64 = pts.iter().map(|p| p.placements).sum();
        assert_eq!(total, replay.placements.len() as u64);
    }

    #[test]
    fn fleet_stranding_is_thread_count_invariant() {
        // The integral must not depend on the shard schedule; emulate the
        // CI matrix in-process by pinning the env knob per run.
        let replay = ring_replay();
        let base = measure_fleet_stranding(&replay);
        std::env::set_var(oasis_sim::SHARD_THREADS_ENV, "8");
        let wide = measure_fleet_stranding(&replay);
        std::env::remove_var(oasis_sim::SHARD_THREADS_ENV);
        assert_eq!(base, wide);
    }

    #[test]
    fn stranding_bounded() {
        for p in sweep() {
            for v in [
                p.nic_stranded,
                p.ssd_stranded,
                p.cpu_stranded,
                p.mem_stranded,
            ] {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }
}
