//! The fleet stranding integral (integer side).
//!
//! Per-pod stranding over a fleet replay, computed entirely in integer
//! parts per billion so the figures round-trip through snapshots
//! losslessly and the measurement is byte-identical at any
//! `OASIS_SHARD_THREADS`. The `float-determinism` rule in `oasis-check`
//! polices this file; the f64 presentation sweep (Fig. 2 by pod size)
//! lives in [`crate::stranding_sweep`] and is re-exported here for API
//! stability.

use oasis_obs::{MetricSink, MetricsSnapshot};
use oasis_sim::shard::{threads_from_env, Envelope, Outgoing, ShardWorld, ShardedRunner};
use oasis_sim::time::{SimDuration, SimTime};

use crate::alloc_trace::FleetReplay;
use crate::metrics;

pub use crate::stranding_sweep::{
    export_stranding, stranding_by_pod_size, stranding_from_snapshot, StrandingPoint, PPB,
};

/// Per-pod stranding from a fleet replay, in integer parts per billion so
/// the figures round-trip through snapshots losslessly and the measurement
/// is byte-identical at any `OASIS_SHARD_THREADS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PodStranding {
    /// Pod index.
    pub pod: usize,
    /// Fraction of the pod's NIC bandwidth stranded, parts per billion.
    pub nic_stranded_ppb: u64,
    /// Fraction of the pod's SSD capacity stranded, parts per billion.
    pub ssd_stranded_ppb: u64,
    /// Instances whose device backends this pod served.
    pub placements: u64,
}

/// One pod's utilization integral, run as a shard so a wide fleet's
/// measurement parallelizes under the conservative-window runner. The
/// shards never message each other (a pod's device usage is attributed
/// wholly to that pod), so any window schedule — hence any thread count —
/// produces the same integer sums.
struct PodIntegral {
    /// `(nic_mbps, ssd_gb, start_ns, end_ns)` per instance served here.
    items: Vec<(u64, u64, u64, u64)>,
    warmup: u64,
    end: u64,
    done: bool,
    /// Σ nic_mbps · overlap_ns over the steady-state window.
    nic_acc: u128,
    /// Σ ssd_gb · overlap_ns over the steady-state window.
    ssd_acc: u128,
}

impl ShardWorld for PodIntegral {
    type Msg = ();

    fn next_time(&self) -> SimTime {
        if self.done {
            SimTime::MAX
        } else {
            SimTime::ZERO
        }
    }

    fn run_window(
        &mut self,
        _until: SimTime,
        inbox: &mut Vec<Envelope<()>>,
        _outbox: &mut Vec<Outgoing<()>>,
    ) -> u64 {
        inbox.clear();
        if self.done {
            return 0;
        }
        self.done = true;
        for &(nic, ssd, s, e) in &self.items {
            let s = s.max(self.warmup);
            let e = e.min(self.end);
            if e > s {
                let dt = (e - s) as u128;
                self.nic_acc = self.nic_acc.saturating_add(nic as u128 * dt);
                self.ssd_acc = self.ssd_acc.saturating_add(ssd as u128 * dt);
            }
        }
        self.items.len() as u64
    }
}

/// Measure per-pod stranding over a fleet replay's steady-state window
/// `[end/4, end]`, attributing each instance's device usage to the pod
/// that served its backends (`device_pod`), so a spilled placement relieves
/// the *neighbor's* stranding, not its home pod's. One shard per pod,
/// honoring `OASIS_SHARD_THREADS`; all-integer arithmetic keeps the result
/// identical at every thread count.
pub fn measure_fleet_stranding(replay: &FleetReplay) -> Vec<PodStranding> {
    let end = replay.duration.as_nanos();
    let warmup = end / 4;
    let pods = replay.pod_hosts.len();
    if pods == 0 || end == 0 {
        return Vec::new();
    }
    let mut worlds: Vec<PodIntegral> = (0..pods)
        .map(|_| PodIntegral {
            items: Vec::new(),
            warmup,
            end,
            done: false,
            nic_acc: 0,
            ssd_acc: 0,
        })
        .collect();
    for pl in &replay.placements {
        let ty = &replay.catalog[pl.type_idx];
        worlds[pl.device_pod].items.push((
            ty.nic_mbps(),
            ty.ssd_gb as u64,
            pl.start.as_nanos(),
            pl.end.as_nanos(),
        ));
    }
    let mut runner: ShardedRunner<()> =
        ShardedRunner::new(pods, SimDuration::from_nanos(end), threads_from_env());
    runner
        .run(&mut worlds, SimTime::from_nanos(end))
        .expect("a whole-horizon lookahead is nonzero");

    let window = (end - warmup) as u128;
    let cap = replay.host_cap;
    let nic_mbps_per_host = cap.nic_mbps() as u128;
    worlds
        .iter()
        .enumerate()
        .map(|(p, w)| {
            let hosts = replay.pod_hosts[p] as u128;
            let nic_cap = hosts * nic_mbps_per_host * window;
            let ssd_cap = hosts * cap.ssd_gb as u128 * window;
            let used_ppb =
                |acc: u128, cap: u128| (acc * 1_000_000_000).checked_div(cap).unwrap_or(0) as u64;
            PodStranding {
                pod: p,
                nic_stranded_ppb: 1_000_000_000_u64.saturating_sub(used_ppb(w.nic_acc, nic_cap)),
                ssd_stranded_ppb: 1_000_000_000_u64.saturating_sub(used_ppb(w.ssd_acc, ssd_cap)),
                placements: replay.state.pod_placements[p],
            }
        })
        .collect()
}

/// Export per-pod fleet stranding into `sink` under the [`crate::metrics`]
/// names, tagged by pod index. Every pod gets all three entries, including
/// zeros, so reconstruction never drops a pod.
pub fn export_fleet_stranding(pts: &[PodStranding], sink: &mut MetricSink) {
    for p in pts {
        let t = p.pod as u32;
        sink.set(metrics::STRANDING_POD_NIC_PPB, t, p.nic_stranded_ppb);
        sink.set(metrics::STRANDING_POD_SSD_PPB, t, p.ssd_stranded_ppb);
        sink.set(metrics::STRANDING_POD_PLACED, t, p.placements);
    }
}

/// Reconstruct per-pod fleet stranding from a snapshot, ascending by pod.
pub fn fleet_stranding_from_snapshot(snap: &MetricsSnapshot) -> Vec<PodStranding> {
    snap.counter_tags(metrics::STRANDING_POD_NIC_PPB)
        .into_iter()
        .map(|(tag, nic)| PodStranding {
            pod: tag as usize,
            nic_stranded_ppb: nic,
            ssd_stranded_ppb: snap.counter(metrics::STRANDING_POD_SSD_PPB, tag),
            placements: snap.counter(metrics::STRANDING_POD_PLACED, tag),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_trace::{AllocTrace, ArrivalStream};

    fn ring_replay() -> FleetReplay {
        use crate::alloc_trace::HomePolicy;
        use oasis_cxl::topology::{FleetTopology, PodTopology, UPLINK_LATENCY};
        let stream = ArrivalStream::generate(16, SimDuration::from_secs(2 * 3600), 23);
        let topo = FleetTopology::ring(4, PodTopology::production(4, 0), UPLINK_LATENCY);
        AllocTrace::replay_fleet(&stream, &topo, HomePolicy::RoundRobin, 10)
            .expect("ring topology is valid")
    }

    #[test]
    fn fleet_stranding_covers_every_pod_and_roundtrips() {
        let replay = ring_replay();
        let pts = measure_fleet_stranding(&replay);
        assert_eq!(pts.len(), 4, "one line per pod");
        for p in &pts {
            assert!(p.nic_stranded_ppb <= 1_000_000_000);
            assert!(p.ssd_stranded_ppb <= 1_000_000_000);
            assert!(p.placements > 0, "round-robin homes reach every pod");
        }
        let mut sink = MetricSink::new();
        export_fleet_stranding(&pts, &mut sink);
        let back = fleet_stranding_from_snapshot(&sink.snapshot());
        assert_eq!(back, pts, "ppb integers round-trip losslessly");
    }

    #[test]
    fn fleet_stranding_attributes_spill_to_the_device_pod() {
        let replay = ring_replay();
        let pts = measure_fleet_stranding(&replay);
        let spilled: u64 = replay.state.spill_placements.iter().sum();
        assert!(spilled > 0, "the saturated ring must spill");
        // Total device placements across pods count every placed instance
        // exactly once, spilled or not.
        let total: u64 = pts.iter().map(|p| p.placements).sum();
        assert_eq!(total, replay.placements.len() as u64);
    }

    #[test]
    fn fleet_stranding_is_thread_count_invariant() {
        // The integral must not depend on the shard schedule; emulate the
        // CI matrix in-process by pinning the env knob per run.
        let replay = ring_replay();
        let base = measure_fleet_stranding(&replay);
        std::env::set_var(oasis_sim::SHARD_THREADS_ENV, "8");
        let wide = measure_fleet_stranding(&replay);
        std::env::remove_var(oasis_sim::SHARD_THREADS_ENV);
        assert_eq!(base, wide);
    }
}
