//! Bursty per-host packet traces.
//!
//! §2.2 / Fig. 3: production NIC traffic is "highly variable and bursty" —
//! a host's P99 utilization (10 µs bins) is under 3 % while its P99.99
//! reaches tens of percent. We model each host as a three-level process:
//!
//! 1. a *baseline* trickle (RPC chatter) at a fraction of a Gbit/s,
//! 2. frequent *small bursts* (tens of µs, a few Gbit/s),
//! 3. rare *large bursts* (hundreds of µs, tens of Gbit/s) that dominate
//!    the P99.99 but occupy ~0.01–0.1 % of time.
//!
//! Burst durations are Pareto (heavy-tailed), inter-burst gaps exponential,
//! burst rates lognormal around a per-host target. The profiles below are
//! calibrated so the generated traces reproduce Table 2's published
//! percentiles for racks A and B.

use oasis_sim::rng::SimRng;
use oasis_sim::series::BinnedSeries;
use oasis_sim::time::{SimDuration, SimTime};

/// Wire overhead per packet used for utilization accounting (preamble +
/// FCS + IFG), matching `oasis_net::WIRE_OVERHEAD_BYTES`.
const WIRE_OVERHEAD: u64 = 24;

/// Traffic profile of one host.
#[derive(Clone, Debug)]
pub struct HostProfile {
    /// NIC line rate in Gbit/s.
    pub line_gbps: f64,
    /// Mean baseline rate in Gbit/s (always on).
    pub baseline_gbps: f64,
    /// Mean gap between small bursts.
    pub small_gap: SimDuration,
    /// Mean small-burst duration (Pareto scale; alpha 1.5).
    pub small_dur: SimDuration,
    /// Small-burst rate, Gbit/s (lognormal median).
    pub small_gbps: f64,
    /// Mean gap between large bursts.
    pub large_gap: SimDuration,
    /// Mean large-burst duration.
    pub large_dur: SimDuration,
    /// Large-burst rate, Gbit/s (lognormal median).
    pub large_gbps: f64,
}

impl HostProfile {
    /// The four hosts of rack A (100 Gbit NICs): Table 2 reports inbound
    /// P99.99 of 39 %, 30 %, ~0 %, 23 % and 10 % aggregated.
    pub fn rack_a() -> [HostProfile; 4] {
        let base = |large_gbps: f64, large_gap_ms: u64| HostProfile {
            line_gbps: 100.0,
            baseline_gbps: 0.15,
            small_gap: SimDuration::from_micros(400),
            small_dur: SimDuration::from_micros(15),
            small_gbps: 1.2,
            large_gap: SimDuration::from_millis(large_gap_ms),
            large_dur: SimDuration::from_micros(120),
            large_gbps,
        };
        [
            base(38.0, 700),
            base(29.0, 800),
            // Host 3 is nearly idle (P99.99 ~ 0%).
            HostProfile {
                line_gbps: 100.0,
                baseline_gbps: 0.01,
                small_gap: SimDuration::from_millis(50),
                small_dur: SimDuration::from_micros(10),
                small_gbps: 0.2,
                large_gap: SimDuration::from_secs(3600),
                large_dur: SimDuration::from_micros(10),
                large_gbps: 0.3,
            },
            base(22.0, 900),
        ]
    }

    /// The four hosts of rack B (50 Gbit NICs): inbound P99.99 of 39 %,
    /// 75 %, 52 %, 79 %, 20 % aggregated.
    pub fn rack_b() -> [HostProfile; 4] {
        let base = |large_gbps: f64, large_gap_ms: u64| HostProfile {
            line_gbps: 50.0,
            baseline_gbps: 0.2,
            small_gap: SimDuration::from_micros(300),
            small_dur: SimDuration::from_micros(15),
            small_gbps: 1.0,
            large_gap: SimDuration::from_millis(large_gap_ms),
            large_dur: SimDuration::from_micros(150),
            large_gbps,
        };
        [
            base(19.0, 700),
            base(37.0, 600),
            base(25.5, 650),
            base(39.0, 550),
        ]
    }
}

/// A generated packet trace: `(arrival_ns, frame_bytes)` pairs, sorted.
#[derive(Clone, Debug)]
pub struct PacketTrace {
    /// Packet arrivals.
    pub events: Vec<(u64, u16)>,
    /// The NIC line rate the trace was generated against, Gbit/s.
    pub line_gbps: f64,
    /// Trace duration.
    pub duration: SimDuration,
}

impl PacketTrace {
    /// Generate a trace for one host.
    pub fn generate(profile: &HostProfile, duration: SimDuration, seed: u64) -> PacketTrace {
        let mut rng = SimRng::new(seed);
        let mut events: Vec<(u64, u16)> = Vec::new();
        let end = duration.as_nanos();

        // Baseline trickle: Poisson arrivals of mixed-size packets.
        {
            let mean_pkt = 700.0; // bytes
            let rate_bps = profile.baseline_gbps * 1e9 / 8.0;
            let gap_ns = mean_pkt / rate_bps * 1e9;
            let mut t = rng.exp(gap_ns);
            while (t as u64) < end {
                let size = Self::sample_size(&mut rng);
                events.push((t as u64, size));
                t += rng.exp(gap_ns);
            }
        }

        // Burst levels.
        for (gap, dur, gbps) in [
            (profile.small_gap, profile.small_dur, profile.small_gbps),
            (profile.large_gap, profile.large_dur, profile.large_gbps),
        ] {
            let mut t = rng.exp(gap.as_nanos() as f64);
            while (t as u64) < end {
                // Heavy-tailed burst duration, capped at 20x the mean.
                let d = rng.pareto_capped(
                    dur.as_nanos() as f64 / 3.0,
                    1.5,
                    dur.as_nanos() as f64 * 20.0,
                );
                let rate = (gbps * rng.lognormal(0.0, 0.25)).min(profile.line_gbps * 0.95);
                // MTU packets back-to-back at `rate`.
                let pkt = 1500u64;
                let pkt_gap = (pkt + WIRE_OVERHEAD) as f64 * 8.0 / rate;
                let burst_end = (t + d).min(end as f64);
                let mut pt = t;
                while pt < burst_end {
                    events.push((pt as u64, pkt as u16));
                    pt += pkt_gap;
                }
                t = burst_end + rng.exp(gap.as_nanos() as f64);
            }
        }

        events.sort_unstable();
        PacketTrace {
            events,
            line_gbps: profile.line_gbps,
            duration,
        }
    }

    /// Production packet-size mix for baseline traffic: mostly small
    /// control/RPC packets with some MTU data.
    fn sample_size(rng: &mut SimRng) -> u16 {
        if rng.chance(0.6) {
            rng.range_u64(64, 300) as u16
        } else if rng.chance(0.5) {
            rng.range_u64(300, 1200) as u16
        } else {
            1500
        }
    }

    /// Total packets.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace has no packets.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total bytes (L2).
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|&(_, s)| s as u64).sum()
    }

    /// Bin the trace into wire-bytes per `bin` (10 µs in the paper).
    pub fn binned(&self, bin: SimDuration) -> BinnedSeries {
        let mut s = BinnedSeries::new(bin);
        for &(t, size) in &self.events {
            s.add(SimTime::from_nanos(t), (size as u64 + WIRE_OVERHEAD) as f64);
        }
        s.extend_to(SimTime::ZERO + self.duration);
        s
    }

    /// Utilization (fraction of line rate) at percentile `p` over 10 µs
    /// bins — the Table 2 metric.
    pub fn utilization_percentile(&self, p: f64) -> f64 {
        let bin = SimDuration::from_micros(10);
        let series = self.binned(bin);
        let bytes = series.percentile(p);
        let capacity = self.line_gbps * 1e9 / 8.0 * bin.as_secs_f64();
        bytes / capacity
    }

    /// Mean utilization over the whole trace.
    pub fn mean_utilization(&self) -> f64 {
        let wire_bytes: u64 = self
            .events
            .iter()
            .map(|&(_, s)| s as u64 + WIRE_OVERHEAD)
            .sum();
        let capacity = self.line_gbps * 1e9 / 8.0 * self.duration.as_secs_f64();
        wire_bytes as f64 / capacity
    }

    /// Export as CSV (`arrival_ns,frame_bytes`) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 16 + 32);
        out.push_str("arrival_ns,frame_bytes\n");
        for &(t, size) in &self.events {
            out.push_str(&format!("{t},{size}\n"));
        }
        out
    }

    /// Merge several traces into an aggregate (for pooled-utilization
    /// numbers: the "Aggregated" column of Table 2).
    pub fn aggregate(traces: &[&PacketTrace]) -> PacketTrace {
        assert!(!traces.is_empty());
        let mut events: Vec<(u64, u16)> = traces
            .iter()
            .flat_map(|t| t.events.iter().copied())
            .collect();
        events.sort_unstable();
        PacketTrace {
            events,
            line_gbps: traces.iter().map(|t| t.line_gbps).sum(),
            duration: traces.iter().map(|t| t.duration).max().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn trace_is_sorted_and_bounded() {
        let p = &HostProfile::rack_a()[0];
        let t = PacketTrace::generate(p, secs(1), 1);
        assert!(!t.is_empty());
        assert!(t.events.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(t.events.last().unwrap().0 < secs(1).as_nanos());
        assert!(t.events.iter().all(|&(_, s)| (64..=1500).contains(&s)));
    }

    #[test]
    fn deterministic_per_seed() {
        let p = &HostProfile::rack_a()[1];
        let a = PacketTrace::generate(p, secs(1), 7);
        let b = PacketTrace::generate(p, secs(1), 7);
        assert_eq!(a.events, b.events);
        let c = PacketTrace::generate(p, secs(1), 8);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn bursty_host_has_low_p99_high_p9999() {
        // Fig. 3 host 1: P99 < 3%, P99.99 ~ 39%.
        let p = &HostProfile::rack_a()[0];
        let t = PacketTrace::generate(p, secs(30), 42);
        let p99 = t.utilization_percentile(99.0);
        let p9999 = t.utilization_percentile(99.99);
        assert!(p99 < 0.05, "p99 {p99}");
        assert!((0.20..=0.55).contains(&p9999), "p99.99 {p9999}");
        assert!(p9999 > 5.0 * p99, "burstiness gap");
    }

    #[test]
    fn idle_host_is_nearly_silent() {
        let p = &HostProfile::rack_a()[2];
        let t = PacketTrace::generate(p, secs(10), 42);
        assert!(t.utilization_percentile(99.99) < 0.03);
    }

    #[test]
    fn aggregate_multiplexes_below_sum_of_peaks() {
        // Table 2: per-host P99.99 tens of percent, aggregated ~10%.
        let profiles = HostProfile::rack_a();
        let traces: Vec<PacketTrace> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| PacketTrace::generate(p, secs(30), 100 + i as u64))
            .collect();
        let refs: Vec<&PacketTrace> = traces.iter().collect();
        let agg = PacketTrace::aggregate(&refs);
        let agg_p9999 = agg.utilization_percentile(99.99);
        assert!(
            (0.05..=0.20).contains(&agg_p9999),
            "aggregated p99.99 {agg_p9999} (paper: 0.10)"
        );
        // Aggregation must be far below the max per-host percentile.
        let max_host = traces
            .iter()
            .map(|t| t.utilization_percentile(99.99))
            .fold(0.0, f64::max);
        assert!(agg_p9999 < max_host * 0.6);
    }

    #[test]
    fn mean_utilization_low() {
        // §2.2 takeaway: overall ~15% NIC utilization; per-host means are
        // in the low percent.
        let p = &HostProfile::rack_a()[0];
        let t = PacketTrace::generate(p, secs(10), 3);
        let m = t.mean_utilization();
        assert!(m < 0.05, "mean {m}");
        assert!(m > 0.0005, "mean {m}");
    }

    #[test]
    fn csv_export_roundtrips_event_count() {
        let p = &HostProfile::rack_a()[2];
        let t = PacketTrace::generate(p, SimDuration::from_millis(200), 5);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), t.len() + 1);
        assert!(csv.starts_with("arrival_ns,frame_bytes"));
        // Every line parses back.
        for line in csv.lines().skip(1) {
            let (a, b) = line.split_once(',').unwrap();
            a.parse::<u64>().unwrap();
            b.parse::<u16>().unwrap();
        }
    }

    #[test]
    fn binned_total_matches_bytes() {
        let p = &HostProfile::rack_a()[3];
        let t = PacketTrace::generate(p, secs(1), 5);
        let binned = t.binned(SimDuration::from_micros(10));
        let wire: u64 = t.events.iter().map(|&(_, s)| s as u64 + 24).sum();
        assert_eq!(binned.total() as u64, wire);
    }
}
