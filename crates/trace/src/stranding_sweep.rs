//! The Fig. 2 pooling sweep (float side).
//!
//! Replays the *same* request stream against placements with increasing pod
//! sizes. Without pooling, chunky SSD/NIC requests fragment: a
//! storage-optimized instance is rejected although the rack has plenty of
//! free SSD, so device capacity sits stranded on CPU-full hosts. Pooling
//! lets a host borrow pod-level device capacity, so more device-hungry
//! instances land and stranding falls — the Fig. 2 curves.
//!
//! Stranding is reported as `1 − time-averaged allocated fraction` of each
//! resource over the steady-state window, which is the metric §2.2 quotes
//! ("27 % of NIC bandwidth, 33 % of SSD capacity ... are stranded on
//! average").
//!
//! This module is the presentation half: fractions are f64 and only ever
//! flow *into* snapshots as ppb integers, never into replicated state. The
//! integer-only fleet integral lives in [`crate::stranding`], which the
//! `float-determinism` rule polices; this file deliberately is not.

use oasis_obs::{MetricSink, MetricsSnapshot};
use oasis_sim::time::SimDuration;

use crate::alloc_trace::{AllocTrace, ArrivalStream};
use crate::metrics;

/// Fixed-point scale for stranding fractions in snapshots (parts per
/// billion): snapshots carry only integers, and at the figures'
/// one-decimal percentage resolution the round trip is lossless.
pub const PPB: f64 = 1e9;

/// Stranding at one pod size.
#[derive(Clone, Copy, Debug)]
pub struct StrandingPoint {
    /// Hosts per pod.
    pub pod_size: usize,
    /// Fraction of NIC bandwidth stranded.
    pub nic_stranded: f64,
    /// Fraction of SSD capacity stranded.
    pub ssd_stranded: f64,
    /// Fraction of CPU cores stranded.
    pub cpu_stranded: f64,
    /// Fraction of memory stranded.
    pub mem_stranded: f64,
    /// Requests rejected during placement.
    pub rejected: usize,
}

fn measure(trace: &AllocTrace) -> StrandingPoint {
    let cap = trace.host_cap;
    StrandingPoint {
        pod_size: trace.pod_size,
        nic_stranded: 1.0 - trace.mean_allocated_fraction(cap.nic_gbps, |t| t.nic_gbps),
        ssd_stranded: 1.0 - trace.mean_allocated_fraction(cap.ssd_gb as f64, |t| t.ssd_gb as f64),
        cpu_stranded: 1.0 - trace.mean_allocated_fraction(cap.vcpus as f64, |t| t.vcpus as f64),
        mem_stranded: 1.0 - trace.mean_allocated_fraction(cap.mem_gb as f64, |t| t.mem_gb as f64),
        rejected: trace.rejected,
    }
}

/// Run the Fig. 2 sweep: place `repeats` independent request streams at each
/// pod size and average the stranding.
pub fn stranding_by_pod_size(
    hosts: usize,
    duration: SimDuration,
    pod_sizes: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<StrandingPoint> {
    let streams: Vec<ArrivalStream> = (0..repeats)
        .map(|r| ArrivalStream::generate(hosts, duration, seed.wrapping_add(r as u64 * 7919)))
        .collect();
    pod_sizes
        .iter()
        .map(|&k| {
            let mut acc = StrandingPoint {
                pod_size: k,
                nic_stranded: 0.0,
                ssd_stranded: 0.0,
                cpu_stranded: 0.0,
                mem_stranded: 0.0,
                rejected: 0,
            };
            for s in &streams {
                let p = measure(&AllocTrace::place(s, hosts, k));
                acc.nic_stranded += p.nic_stranded;
                acc.ssd_stranded += p.ssd_stranded;
                acc.cpu_stranded += p.cpu_stranded;
                acc.mem_stranded += p.mem_stranded;
                acc.rejected += p.rejected;
            }
            let n = repeats as f64;
            acc.nic_stranded /= n;
            acc.ssd_stranded /= n;
            acc.cpu_stranded /= n;
            acc.mem_stranded /= n;
            acc
        })
        .collect()
}

/// Export a stranding sweep into `sink` under the [`crate::metrics`]
/// names, tagged by pod size.
pub fn export_stranding(pts: &[StrandingPoint], sink: &mut MetricSink) {
    for p in pts {
        let t = p.pod_size as u32;
        sink.set(metrics::STRANDED_NIC_PPB, t, (p.nic_stranded * PPB) as u64);
        sink.set(metrics::STRANDED_SSD_PPB, t, (p.ssd_stranded * PPB) as u64);
        sink.set(metrics::STRANDED_CPU_PPB, t, (p.cpu_stranded * PPB) as u64);
        sink.set(metrics::STRANDED_MEM_PPB, t, (p.mem_stranded * PPB) as u64);
        sink.set(metrics::PLACEMENT_REJECTED, t, p.rejected as u64);
    }
}

/// Reconstruct the sweep from a snapshot (the path the figure binaries
/// print from), ascending by pod size.
pub fn stranding_from_snapshot(snap: &MetricsSnapshot) -> Vec<StrandingPoint> {
    snap.counter_tags(metrics::STRANDED_NIC_PPB)
        .into_iter()
        .map(|(tag, nic)| StrandingPoint {
            pod_size: tag as usize,
            nic_stranded: nic as f64 / PPB,
            ssd_stranded: snap.counter(metrics::STRANDED_SSD_PPB, tag) as f64 / PPB,
            cpu_stranded: snap.counter(metrics::STRANDED_CPU_PPB, tag) as f64 / PPB,
            mem_stranded: snap.counter(metrics::STRANDED_MEM_PPB, tag) as f64 / PPB,
            rejected: snap.counter(metrics::PLACEMENT_REJECTED, tag) as usize,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<StrandingPoint> {
        stranding_by_pod_size(16, SimDuration::from_secs(3 * 3600), &[1, 2, 4, 8], 2, 11)
    }

    #[test]
    fn stranding_decreases_with_pod_size() {
        let pts = sweep();
        assert!(
            pts[3].nic_stranded < pts[0].nic_stranded - 0.01,
            "nic: {} -> {}",
            pts[0].nic_stranded,
            pts[3].nic_stranded
        );
        assert!(
            pts[3].ssd_stranded < pts[0].ssd_stranded - 0.02,
            "ssd: {} -> {}",
            pts[0].ssd_stranded,
            pts[3].ssd_stranded
        );
        // Rejections fall as pooling admits device-heavy instances.
        assert!(pts[3].rejected <= pts[0].rejected);
    }

    #[test]
    fn pod1_matches_paper_regime() {
        // §2.2: NIC 27%, SSD 33%, CPU 5%, memory 9% stranded at pod size 1.
        // We require the qualitative regime: devices strand hard, CPU binds.
        let p = sweep()[0];
        assert!(
            (0.12..=0.50).contains(&p.nic_stranded),
            "nic {}",
            p.nic_stranded
        );
        assert!(
            (0.15..=0.55).contains(&p.ssd_stranded),
            "ssd {}",
            p.ssd_stranded
        );
        assert!(p.cpu_stranded < 0.20, "cpu {}", p.cpu_stranded);
        assert!(p.cpu_stranded < p.nic_stranded);
        assert!(p.cpu_stranded < p.ssd_stranded);
    }

    #[test]
    fn snapshot_roundtrip_preserves_figure_resolution() {
        let pts = sweep();
        let mut sink = MetricSink::new();
        export_stranding(&pts, &mut sink);
        let back = stranding_from_snapshot(&sink.snapshot());
        assert_eq!(back.len(), pts.len());
        for (a, b) in pts.iter().zip(&back) {
            assert_eq!(a.pod_size, b.pod_size);
            assert_eq!(a.rejected, b.rejected);
            // ppb fixed point: well inside the figures' 0.1% resolution.
            assert!((a.nic_stranded - b.nic_stranded).abs() < 1e-8);
            assert!((a.ssd_stranded - b.ssd_stranded).abs() < 1e-8);
            assert!((a.cpu_stranded - b.cpu_stranded).abs() < 1e-8);
            assert!((a.mem_stranded - b.mem_stranded).abs() < 1e-8);
        }
    }

    #[test]
    fn stranding_bounded() {
        for p in sweep() {
            for v in [
                p.nic_stranded,
                p.ssd_stranded,
                p.cpu_stranded,
                p.mem_stranded,
            ] {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }
}
