//! Plain-text experiment reporting.
//!
//! Every experiment binary in `oasis-bench` prints its table or figure series
//! with these helpers: an aligned fixed-width table for terminals and a CSV
//! emitter for plotting. No external dependencies, deterministic output.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must have the same arity as the headers.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format nanoseconds as a human latency string ("4.32us").
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Format bytes/second as "X.XX GB/s".
pub fn fmt_gbps(bytes_per_sec: f64) -> String {
    format!("{:.2} GB/s", bytes_per_sec / 1e9)
}

/// Format a ratio as a percentage.
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("a-much-longer-name"));
        // Value column aligned.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find("22").unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(4_320), "4.32us");
        assert_eq!(fmt_ns(38_000_000), "38.00ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.00s");
        assert_eq!(fmt_gbps(13.5e9), "13.50 GB/s");
        assert_eq!(fmt_pct(0.37), "37.0%");
    }
}
