//! A stable timed event queue.
//!
//! `BinaryHeap` alone is not deterministic for equal keys, so every push gets
//! a monotonically increasing sequence number: events scheduled for the same
//! instant dequeue in FIFO order. This tie-break rule is what makes whole
//! experiments bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of `(SimTime, E)` pairs, earliest first, FIFO on ties.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Remove and return the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_on_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_on_equal_times_survives_interleaved_pops_and_mixed_times() {
        // Equal-time FIFO must hold even when pushes at that instant are
        // interleaved with pops and with events at other instants — the seq
        // counter is global, never reset, so drain order is insertion order
        // within each timestamp.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(50);
        q.push(t, "a");
        q.push(SimTime::from_nanos(10), "early");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(t, "c");
        assert_eq!(q.pop(), Some((t, "a")));
        q.push(t, "d");
        q.push(SimTime::from_nanos(90), "late");
        assert_eq!(q.pop(), Some((t, "b")));
        assert_eq!(q.pop(), Some((t, "c")));
        assert_eq!(q.pop(), Some((t, "d")));
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert!(q.pop_due(SimTime::from_nanos(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(10)).unwrap().1, 1);
        assert!(q.pop_due(SimTime::from_nanos(15)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(25)).unwrap().1, 2);
    }

    #[test]
    fn fifo_ordering_survives_clear() {
        // `clear` drops events but never resets the seq counter, so FIFO
        // ties keep working after a reset.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        q.push(t, "stale");
        q.clear();
        q.push(t, "x");
        q.push(t, "y");
        assert_eq!(q.pop(), Some((t, "x")));
        assert_eq!(q.pop(), Some((t, "y")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_tracks_earliest_without_consuming() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(40), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(40)));
        // An earlier push moves the head; peeking never consumes.
        q.push(SimTime::from_nanos(15), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(15)));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(15)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(40)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }
}
