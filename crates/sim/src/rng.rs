//! Seedable, portable pseudo-random number generation.
//!
//! Experiments must be reproducible across machines and Rust versions, so we
//! implement xoshiro256++ (public domain, Blackman & Vigna) directly instead
//! of depending on a particular release of an external generator. On top of
//! the raw generator we provide the distributions that datacenter workload
//! models need: exponential inter-arrivals, Pareto burst lengths, lognormal
//! rates, Zipf popularity, and normal service times.

/// xoshiro256++ PRNG with convenience distribution samplers.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal variate from the last Box–Muller draw.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Different seeds produce
    /// independent-looking streams; the same seed always produces the same
    /// stream.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent child generator; useful for giving each actor
    /// its own stream so that adding an actor does not perturb the others.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ tag.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire-style rejection-free mapping is overkill here; modulo bias
        // for spans far below 2^64 is negligible for workload generation,
        // but we debias anyway to keep property tests exact.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` as `usize`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given mean (e.g. Poisson inter-arrival
    /// gaps).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Pareto variate with scale `xm > 0` and shape `alpha > 0`; heavy-tailed
    /// burst durations use `alpha` in (1, 2).
    #[inline]
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = 1.0 - self.f64();
        xm / u.powf(1.0 / alpha)
    }

    /// Pareto variate truncated to `[xm, cap]` by resampling the CDF.
    pub fn pareto_capped(&mut self, xm: f64, alpha: f64, cap: f64) -> f64 {
        // Invert the truncated CDF directly so a huge cap never loops.
        let f_cap = 1.0 - (xm / cap).powf(alpha);
        let u = self.f64() * f_cap;
        xm / (1.0 - u).powf(1.0 / alpha)
    }

    /// Standard normal via Box–Muller, with the spare variate cached.
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Lognormal variate parameterized by the *underlying* normal's mu and
    /// sigma.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s`, via inverse
    /// transform on the precomputable harmonic weights. O(log n) per draw
    /// using a cached table is unnecessary for our trace sizes; this is a
    /// simple rejection-inversion-free linear scan bounded by `n`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // For the small catalogs we use (tens of instance types), a direct
        // CDF walk is fast and exact.
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.f64() * norm;
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(s);
            if u < w {
                return k - 1;
            }
            u -= w;
        }
        n - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let vals: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn pareto_capped_within_bounds() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            let v = r.pareto_capped(1.0, 1.3, 100.0);
            assert!((1.0..=100.0 + 1e-9).contains(&v), "v {v}");
        }
    }

    #[test]
    fn zipf_is_monotone_in_popularity() {
        let mut r = SimRng::new(19);
        let mut counts = [0usize; 8];
        for _ in 0..100_000 {
            counts[r.zipf(8, 1.0)] += 1;
        }
        // Rank 0 must dominate rank 7 decisively.
        assert!(counts[0] > counts[7] * 4, "{counts:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(31);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
