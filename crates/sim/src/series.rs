//! Fixed-width time-binned series.
//!
//! The paper measures NIC bandwidth utilization by binning traffic at 10 µs
//! granularity and reporting percentiles over the bins (e.g. "P99.99
//! utilization of allocated NIC bandwidth is 20 %"). [`BinnedSeries`]
//! accumulates a value (bytes, packets, losses, ...) into such bins and
//! answers percentile and excerpt queries.

use crate::time::{SimDuration, SimTime};

/// Accumulates `f64` quantities into fixed-width time bins.
#[derive(Clone, Debug)]
pub struct BinnedSeries {
    bin_width: SimDuration,
    bins: Vec<f64>,
}

impl BinnedSeries {
    /// Create a series with the given bin width.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(bin_width.as_nanos() > 0, "bin width must be positive");
        BinnedSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Add `amount` to the bin containing `at`.
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let idx = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Ensure bins exist through `until` (so trailing idle time counts as
    /// zero-valued bins in percentile queries).
    pub fn extend_to(&mut self, until: SimTime) {
        let idx = (until.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
    }

    /// Number of bins (including zero bins created by `extend_to`).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if no bins exist.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Raw bin values.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Sum over all bins.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Mean bin value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.total() / self.bins.len() as f64
        }
    }

    /// Maximum bin value (0 if empty).
    pub fn max(&self) -> f64 {
        self.bins.iter().copied().fold(0.0, f64::max)
    }

    /// Percentile over bin values, `p` in percent (e.g. 99.99). Uses the
    /// nearest-rank method on a sorted copy.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        let mut sorted = self.bins.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = (p / 100.0).clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    /// Convert each bin (interpreted as bytes) to a rate in bits/second.
    pub fn as_bits_per_sec(&self) -> Vec<f64> {
        let secs = self.bin_width.as_secs_f64();
        self.bins.iter().map(|b| b * 8.0 / secs).collect()
    }

    /// Extract the bins covering `[from, to)` as `(bin_start, value)` pairs.
    pub fn excerpt(&self, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        let w = self.bin_width.as_nanos();
        let lo = (from.as_nanos() / w) as usize;
        let hi = to.as_nanos().div_ceil(w) as usize;
        (lo..hi.min(self.bins.len()))
            .map(|i| (SimTime::from_nanos(i as u64 * w), self.bins[i]))
            .collect()
    }

    /// Re-bin into coarser bins by an integer factor (for plotting long
    /// traces compactly).
    pub fn coarsen(&self, factor: usize) -> BinnedSeries {
        assert!(factor > 0);
        let mut out = BinnedSeries::new(self.bin_width * factor as u64);
        out.bins = self.bins.chunks(factor).map(|c| c.iter().sum()).collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn add_places_in_correct_bin() {
        let mut s = BinnedSeries::new(SimDuration::from_micros(10));
        s.add(us(5), 1.0);
        s.add(us(15), 2.0);
        s.add(us(19), 3.0);
        s.add(us(20), 4.0);
        assert_eq!(s.bins(), &[1.0, 5.0, 4.0]);
    }

    #[test]
    fn extend_to_creates_zero_bins() {
        let mut s = BinnedSeries::new(SimDuration::from_micros(10));
        s.add(us(5), 1.0);
        s.extend_to(us(45));
        assert_eq!(s.len(), 5);
        assert_eq!(s.total(), 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s = BinnedSeries::new(SimDuration::from_micros(1));
        for i in 0..100 {
            s.add(us(i), i as f64);
        }
        assert_eq!(s.percentile(50.0), 49.0);
        assert_eq!(s.percentile(99.0), 98.0);
        assert_eq!(s.percentile(100.0), 99.0);
        assert_eq!(s.max(), 99.0);
    }

    #[test]
    fn bits_per_sec_conversion() {
        let mut s = BinnedSeries::new(SimDuration::from_micros(10));
        s.add(us(0), 1250.0); // 1250 bytes in 10us = 1 Gbit/s
        let rates = s.as_bits_per_sec();
        assert!((rates[0] - 1e9).abs() < 1e-3);
    }

    #[test]
    fn excerpt_covers_half_open_range() {
        let mut s = BinnedSeries::new(SimDuration::from_micros(10));
        for i in 0..10 {
            s.add(us(i * 10), i as f64);
        }
        let ex = s.excerpt(us(20), us(50));
        assert_eq!(ex.len(), 3);
        assert_eq!(ex[0], (us(20), 2.0));
        assert_eq!(ex[2], (us(40), 4.0));
    }

    #[test]
    fn coarsen_preserves_total() {
        let mut s = BinnedSeries::new(SimDuration::from_micros(1));
        for i in 0..100 {
            s.add(us(i), 1.0);
        }
        let c = s.coarsen(7);
        assert_eq!(c.total(), s.total());
        assert_eq!(c.bin_width(), SimDuration::from_micros(7));
        assert_eq!(c.len(), 15); // ceil(100/7)
    }
}
