//! Deterministic hash containers.
//!
//! `std::collections::HashMap` seeds its hasher randomly per process, which
//! would make iteration order — and therefore anything derived from it —
//! nondeterministic. All simulator state uses these fixed-seed FxHash-style
//! containers instead, so that every run of an experiment is bit-identical.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiplicative hasher with a fixed seed.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` with a deterministic hasher.
pub type DetMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with a deterministic hasher.
pub type DetSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_keys_same_hash() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: DetMap<u64, &str> = DetMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_membership() {
        let mut s: DetSet<u32> = DetSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }
}
