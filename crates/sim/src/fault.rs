//! Deterministic fault injection for the co-simulated pod.
//!
//! A [`FaultPlan`] is a declarative schedule of faults: each entry names a
//! simulated time and a [`FaultKind`] targeting a component by index (the
//! embedding — `oasis-core`'s pod runtime — maps indices onto its hosts,
//! NICs, and SSDs). Plans are either written out explicitly ([`FaultPlan::at`])
//! or generated from a seed ([`FaultPlan::randomized`]), so chaos runs are
//! exactly reproducible: the same seed always yields the same schedule.
//!
//! Determinism contract: an **empty plan is a strict no-op**. No RNG is
//! drawn, no clock is charged, and no hook changes behaviour unless a fault
//! is actually installed — the repo's figure binaries must stay
//! byte-identical under `FaultPlan::empty()`, which the bench determinism
//! guard asserts.
//!
//! The five injectable fault classes (ISSUE 2):
//!
//! * **Host crash/restart** — the host's polling cores stop and its private
//!   CPU cache is discarded, *including dirty-but-unflushed lines*, so torn
//!   write-backs really happen in the pool.
//! * **Switch-port flap** — a NIC's switch port goes down and comes back.
//! * **Per-link packet faults** — probabilistic drop / corrupt / duplicate
//!   on one switch port, driven by a forked [`SimRng`] stream
//!   ([`PacketFaultState`]).
//! * **CXL link degradation** — extra load-to-use latency for a while
//!   (`CxlSlow`) or a hard stall that freezes the host's cores (`CxlStall`).
//! * **SSD misbehaviour** — commands silently swallowed (`Timeout`, forcing
//!   the storage engine's resubmission path) or reads completed with a
//!   media error (`ReadError`).
//!
//! A sixth class targets pooled accelerators (`AccelFault`): jobs silently
//! swallowed (`Timeout`) or completed with a compute error, exercising the
//! accel engine's retry path. It only enters randomized plans when the mix
//! lists eligible accelerators, so legacy seeds draw unchanged schedules.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// How an injected SSD fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsdFaultMode {
    /// Commands are accepted but never complete (the frontend's retry
    /// timeout must fire).
    Timeout,
    /// Read commands complete with a media error status.
    ReadError,
}

/// How an injected accelerator fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccelFaultMode {
    /// Jobs are accepted but never complete (the frontend's retry timeout
    /// must fire).
    Timeout,
    /// Jobs complete with a compute-error status.
    ComputeError,
}

/// One injectable fault. Component ids are plan-level indices; the
/// embedding maps them onto its own hosts/NICs/SSDs/accelerators.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Crash host `host`; if `restart_after` is set the host comes back
    /// that much later with a cold cache and live cores.
    HostCrash {
        /// Host index.
        host: usize,
        /// Delay until restart; `None` means the host stays dead.
        restart_after: Option<SimDuration>,
    },
    /// Disable NIC `nic`'s switch port, re-enabling it `down_for` later.
    PortFlap {
        /// NIC index.
        nic: usize,
        /// How long the port stays disabled.
        down_for: SimDuration,
    },
    /// Probabilistic packet faults on NIC `nic`'s switch port for
    /// `duration`. Rates are parts-per-million per ingress frame.
    PacketFault {
        /// NIC index (the faulty link).
        nic: usize,
        /// Drop rate, ppm.
        drop_ppm: u32,
        /// Corruption rate, ppm.
        corrupt_ppm: u32,
        /// Duplication rate, ppm.
        duplicate_ppm: u32,
        /// Window length.
        duration: SimDuration,
    },
    /// Add `extra_ns` to host `host`'s CXL load-to-use latency for
    /// `duration` (congested or degraded link).
    CxlSlow {
        /// Host index.
        host: usize,
        /// Extra nanoseconds per pool miss.
        extra_ns: u64,
        /// Window length.
        duration: SimDuration,
    },
    /// Freeze host `host`'s cores for `stall` (link retraining — no memory
    /// operation completes until it ends).
    CxlStall {
        /// Host index.
        host: usize,
        /// Stall length.
        stall: SimDuration,
    },
    /// SSD `ssd` misbehaves per `mode` for `duration`.
    SsdFault {
        /// SSD index.
        ssd: usize,
        /// Timeout or read-error behaviour.
        mode: SsdFaultMode,
        /// Window length.
        duration: SimDuration,
    },
    /// Accelerator `accel` misbehaves per `mode` for `duration`.
    AccelFault {
        /// Accelerator index.
        accel: usize,
        /// Timeout or compute-error behaviour.
        mode: AccelFaultMode,
        /// Window length.
        duration: SimDuration,
    },
}

/// A fault scheduled at a simulated time.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Which components a randomized plan may target, and how many events to
/// draw.
#[derive(Clone, Debug)]
pub struct FaultMix {
    /// Crashable host indices (the embedding usually excludes the host
    /// running the allocator).
    pub hosts: Vec<usize>,
    /// NIC indices eligible for flaps and packet faults.
    pub nics: Vec<usize>,
    /// SSD indices eligible for timeouts/read errors.
    pub ssds: Vec<usize>,
    /// Accelerator indices eligible for timeouts/compute errors.
    pub accels: Vec<usize>,
    /// Number of fault events to draw.
    pub events: usize,
}

/// A deterministic, declarative schedule of faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The scheduled faults (not necessarily sorted).
    pub events: Vec<FaultEvent>,
    /// Seed for per-fault randomness (packet-fault coin flips); forked per
    /// fault so adding one fault does not perturb another's stream.
    pub seed: u64,
}

impl FaultPlan {
    /// The no-op plan. Installing it changes nothing, byte-for-byte.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Plan with a seed for packet-fault randomness but no events yet.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            seed,
        }
    }

    /// True if installing this plan is a no-op.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append a fault at `at` (builder-style).
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Draw a randomized schedule: `mix.events` faults at times uniform in
    /// `[horizon/10, horizon)`, with kinds drawn from the classes `mix`
    /// enables. Identical `(seed, horizon, mix)` always produces the
    /// identical plan.
    pub fn randomized(seed: u64, horizon: SimDuration, mix: &FaultMix) -> Self {
        let mut rng = SimRng::new(seed ^ 0xFA_17_FA_17_FA_17);
        let mut plan = FaultPlan::seeded(seed);
        // Class table: only classes with an eligible target participate.
        let mut classes: Vec<u8> = Vec::new();
        if !mix.hosts.is_empty() {
            classes.push(0); // crash+restart
            classes.push(3); // cxl slow
            classes.push(4); // cxl stall
        }
        if !mix.nics.is_empty() {
            classes.push(1); // port flap
            classes.push(2); // packet faults
        }
        if !mix.ssds.is_empty() {
            classes.push(5); // ssd fault
        }
        if !mix.accels.is_empty() {
            classes.push(6); // accel fault
        }
        if classes.is_empty() {
            return plan;
        }
        let h = horizon.as_nanos();
        for _ in 0..mix.events {
            let at = SimTime::from_nanos(rng.range_u64(h / 10, h));
            let kind = match *rng.choose(&classes) {
                0 => FaultKind::HostCrash {
                    host: *rng.choose(&mix.hosts),
                    restart_after: Some(SimDuration::from_nanos(rng.range_u64(h / 20, h / 5))),
                },
                1 => FaultKind::PortFlap {
                    nic: *rng.choose(&mix.nics),
                    down_for: SimDuration::from_nanos(rng.range_u64(h / 50, h / 10)),
                },
                2 => FaultKind::PacketFault {
                    nic: *rng.choose(&mix.nics),
                    drop_ppm: rng.range_u64(10_000, 200_000) as u32,
                    corrupt_ppm: rng.range_u64(10_000, 100_000) as u32,
                    duplicate_ppm: rng.range_u64(10_000, 100_000) as u32,
                    duration: SimDuration::from_nanos(rng.range_u64(h / 20, h / 5)),
                },
                3 => FaultKind::CxlSlow {
                    host: *rng.choose(&mix.hosts),
                    extra_ns: rng.range_u64(100, 2_000),
                    duration: SimDuration::from_nanos(rng.range_u64(h / 20, h / 5)),
                },
                4 => FaultKind::CxlStall {
                    host: *rng.choose(&mix.hosts),
                    stall: SimDuration::from_nanos(rng.range_u64(100_000, 5_000_000)),
                },
                5 => FaultKind::SsdFault {
                    ssd: *rng.choose(&mix.ssds),
                    mode: if rng.chance(0.5) {
                        SsdFaultMode::Timeout
                    } else {
                        SsdFaultMode::ReadError
                    },
                    duration: SimDuration::from_nanos(rng.range_u64(h / 20, h / 5)),
                },
                _ => FaultKind::AccelFault {
                    accel: *rng.choose(&mix.accels),
                    mode: if rng.chance(0.5) {
                        AccelFaultMode::Timeout
                    } else {
                        AccelFaultMode::ComputeError
                    },
                    duration: SimDuration::from_nanos(rng.range_u64(h / 20, h / 5)),
                },
            };
            plan.events.push(FaultEvent { at, kind });
        }
        plan
    }

    /// The fault classes this plan covers, as stable labels (for harness
    /// coverage accounting).
    pub fn classes(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        let mut add = |s: &'static str| {
            if !out.contains(&s) {
                out.push(s);
            }
        };
        for ev in &self.events {
            match ev.kind {
                FaultKind::HostCrash { .. } => add("host-crash"),
                FaultKind::PortFlap { .. } => add("port-flap"),
                FaultKind::PacketFault { .. } => add("packet-fault"),
                FaultKind::CxlSlow { .. } | FaultKind::CxlStall { .. } => add("cxl-stall"),
                FaultKind::SsdFault { .. } => add("ssd-error"),
                FaultKind::AccelFault { .. } => add("accel-error"),
            }
        }
        out
    }
}

/// Iterates a [`FaultPlan`] in time order (stable on ties: plan order).
pub struct FaultInjector {
    /// Events sorted by time (stable), consumed front-to-back.
    events: Vec<FaultEvent>,
    next: usize,
    /// Fork source for per-fault RNG streams.
    rng: SimRng,
}

impl FaultInjector {
    /// Build an injector from a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut events = plan.events.clone();
        // Stable sort: same-time faults keep their plan order.
        events.sort_by_key(|e| e.at);
        FaultInjector {
            events,
            next: 0,
            rng: SimRng::new(plan.seed ^ 0x0A51_50F1),
        }
    }

    /// When the next fault fires, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Pop the next fault due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<FaultEvent> {
        let ev = self.events.get(self.next)?;
        if ev.at > now {
            return None;
        }
        self.next += 1;
        Some(ev.clone())
    }

    /// Remaining (not yet popped) faults.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Fork an independent RNG stream for one fault's coin flips (packet
    /// faults). Call order is deterministic because faults are installed
    /// in time order.
    pub fn fork_rng(&mut self, tag: u64) -> SimRng {
        self.rng.fork(tag)
    }
}

/// What to do with one frame crossing a faulty link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketAction {
    /// Forward unchanged.
    Deliver,
    /// Silently drop.
    Drop,
    /// Flip a byte, then forward.
    Corrupt,
    /// Forward twice.
    Duplicate,
}

/// Live per-port packet-fault state: rates, expiry, and a private RNG
/// stream so installing a fault on one port never perturbs another.
#[derive(Clone, Debug)]
pub struct PacketFaultState {
    /// Drop rate, ppm per frame.
    pub drop_ppm: u32,
    /// Corruption rate, ppm per frame.
    pub corrupt_ppm: u32,
    /// Duplication rate, ppm per frame.
    pub duplicate_ppm: u32,
    /// Faults stop applying at this time.
    pub until: SimTime,
    rng: SimRng,
}

impl PacketFaultState {
    /// New state with the given rates, expiry, and RNG stream.
    pub fn new(
        drop_ppm: u32,
        corrupt_ppm: u32,
        duplicate_ppm: u32,
        until: SimTime,
        rng: SimRng,
    ) -> Self {
        PacketFaultState {
            drop_ppm,
            corrupt_ppm,
            duplicate_ppm,
            until,
            rng,
        }
    }

    /// Has the fault window closed?
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.until
    }

    /// Decide the fate of one frame at `now`. One RNG draw per frame while
    /// active; zero draws after expiry.
    pub fn decide(&mut self, now: SimTime) -> PacketAction {
        if self.expired(now) {
            return PacketAction::Deliver;
        }
        let r = self.rng.range_u64(0, 1_000_000) as u32;
        if r < self.drop_ppm {
            PacketAction::Drop
        } else if r < self.drop_ppm + self.corrupt_ppm {
            PacketAction::Corrupt
        } else if r < self.drop_ppm + self.corrupt_ppm + self.duplicate_ppm {
            PacketAction::Duplicate
        } else {
            PacketAction::Deliver
        }
    }

    /// Pick `(byte index, xor mask)` for a corruption of a `len`-byte
    /// frame. The mask is never zero.
    pub fn corrupt_at(&mut self, len: usize) -> (usize, u8) {
        let idx = self.rng.range_usize(0, len.max(1));
        let mask = (self.rng.range_u64(1, 256)) as u8;
        (idx, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.next_at(), None);
        assert_eq!(inj.pop_due(SimTime::MAX), None);
    }

    #[test]
    fn builder_preserves_events_and_injector_sorts() {
        let plan = FaultPlan::seeded(7)
            .at(
                SimTime::from_millis(20),
                FaultKind::PortFlap {
                    nic: 0,
                    down_for: SimDuration::from_millis(5),
                },
            )
            .at(
                SimTime::from_millis(10),
                FaultKind::HostCrash {
                    host: 1,
                    restart_after: None,
                },
            );
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.next_at(), Some(SimTime::from_millis(10)));
        let first = inj.pop_due(SimTime::from_millis(100)).unwrap();
        assert!(matches!(first.kind, FaultKind::HostCrash { host: 1, .. }));
        assert_eq!(inj.remaining(), 1);
    }

    #[test]
    fn pop_due_respects_now() {
        let plan = FaultPlan::seeded(1).at(
            SimTime::from_millis(50),
            FaultKind::CxlStall {
                host: 0,
                stall: SimDuration::from_micros(100),
            },
        );
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.pop_due(SimTime::from_millis(49)).is_none());
        assert!(inj.pop_due(SimTime::from_millis(50)).is_some());
    }

    #[test]
    fn randomized_is_deterministic() {
        let mix = FaultMix {
            hosts: vec![0, 1],
            nics: vec![0],
            ssds: vec![0],
            accels: vec![],
            events: 8,
        };
        let a = FaultPlan::randomized(42, SimDuration::from_secs(1), &mix);
        let b = FaultPlan::randomized(42, SimDuration::from_secs(1), &mix);
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 8);
        let c = FaultPlan::randomized(43, SimDuration::from_secs(1), &mix);
        assert_ne!(a.events, c.events, "different seeds differ");
    }

    #[test]
    fn randomized_respects_mix() {
        let mix = FaultMix {
            hosts: vec![],
            nics: vec![2],
            ssds: vec![],
            accels: vec![],
            events: 16,
        };
        let plan = FaultPlan::randomized(9, SimDuration::from_secs(1), &mix);
        for ev in &plan.events {
            match &ev.kind {
                FaultKind::PortFlap { nic, .. } => assert_eq!(*nic, 2),
                FaultKind::PacketFault { nic, .. } => assert_eq!(*nic, 2),
                other => panic!("disabled class drawn: {other:?}"),
            }
        }
    }

    #[test]
    fn packet_fault_rates_roughly_hold() {
        let mut st = PacketFaultState::new(250_000, 0, 0, SimTime::from_secs(1), SimRng::new(5));
        let now = SimTime::from_millis(1);
        let drops = (0..10_000)
            .filter(|_| st.decide(now) == PacketAction::Drop)
            .count();
        assert!((2_000..3_000).contains(&drops), "drops {drops}");
        // After expiry: always deliver, no RNG draws.
        let mut st2 = st.clone();
        assert_eq!(st.decide(SimTime::from_secs(2)), PacketAction::Deliver);
        assert_eq!(st2.decide(SimTime::from_secs(2)), PacketAction::Deliver);
    }

    #[test]
    fn corruption_mask_nonzero() {
        let mut st = PacketFaultState::new(0, 1_000_000, 0, SimTime::from_secs(1), SimRng::new(11));
        for _ in 0..100 {
            let (idx, mask) = st.corrupt_at(64);
            assert!(idx < 64);
            assert_ne!(mask, 0);
        }
    }

    #[test]
    fn classes_cover_all_five() {
        let plan = FaultPlan::seeded(0)
            .at(
                SimTime::from_millis(1),
                FaultKind::HostCrash {
                    host: 0,
                    restart_after: None,
                },
            )
            .at(
                SimTime::from_millis(2),
                FaultKind::PortFlap {
                    nic: 0,
                    down_for: SimDuration::from_millis(1),
                },
            )
            .at(
                SimTime::from_millis(3),
                FaultKind::PacketFault {
                    nic: 0,
                    drop_ppm: 1,
                    corrupt_ppm: 1,
                    duplicate_ppm: 1,
                    duration: SimDuration::from_millis(1),
                },
            )
            .at(
                SimTime::from_millis(4),
                FaultKind::CxlStall {
                    host: 0,
                    stall: SimDuration::from_micros(1),
                },
            )
            .at(
                SimTime::from_millis(5),
                FaultKind::SsdFault {
                    ssd: 0,
                    mode: SsdFaultMode::Timeout,
                    duration: SimDuration::from_millis(1),
                },
            );
        assert_eq!(
            plan.classes(),
            vec![
                "host-crash",
                "port-flap",
                "packet-fault",
                "cxl-stall",
                "ssd-error"
            ]
        );
    }
}
