//! Simulated time.
//!
//! All simulated clocks in Oasis count nanoseconds from the start of the
//! experiment. [`SimTime`] is an absolute instant, [`SimDuration`] a span.
//! Both are thin wrappers over `u64` so they are free to copy and compare,
//! and both saturate rather than wrap on arithmetic overflow — an experiment
//! that runs for 580+ years of simulated time is a bug, not a wraparound.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since experiment
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "idle, never wake me" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since experiment start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since experiment start (fractional).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since experiment start (fractional).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round().max(0.0) as u64)
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(7), SimTime::from_nanos(7_000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_nanos(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(late.since(early), SimDuration::from_nanos(4));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", SimDuration::from_micros(42)), "42.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "42.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(42)), "42.000s");
    }

    #[test]
    fn fractional_seconds() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }
}
