//! Log-linear latency histogram (HDR-histogram style).
//!
//! Values (nanoseconds) are bucketed with bounded relative error: each
//! power-of-two magnitude is split into `SUB_BUCKETS` linear sub-buckets, so
//! recorded values are accurate to better than 1/SUB_BUCKETS ≈ 1.6 % — ample
//! for reporting P50/P90/P99/P99.99 latencies the way the paper does.

const SUB_BITS: u32 = 6;
const SUB_BUCKETS: u64 = 1 << SUB_BITS; // 64 linear sub-buckets per magnitude
const ROWS: u32 = 64 - SUB_BITS + 1; // rows 0..=58 cover the full u64 range

/// Fixed-memory histogram of `u64` values (we use nanoseconds throughout).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; (ROWS as usize) * SUB_BUCKETS as usize],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    #[inline]
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS here
        let row = (magnitude - SUB_BITS + 1) as usize;
        // value in [2^m, 2^(m+1)) shifted right by row lands in
        // [SUB_BUCKETS/2, SUB_BUCKETS): the top half of the row.
        let sub = (value >> row) as usize & (SUB_BUCKETS as usize - 1);
        row * SUB_BUCKETS as usize + sub
    }

    /// Representative (upper-edge midpoint) value for a bucket index.
    fn value_of(index: usize) -> u64 {
        let row = index / SUB_BUCKETS as usize;
        let sub = (index % SUB_BUCKETS as usize) as u64;
        if row == 0 {
            return sub;
        }
        let shift = row as u32; // row = magnitude - SUB_BITS + 1
        let base = sub << shift;
        // midpoint of the bucket's covered range
        base + (1u64 << (shift - 1))
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Record a value `n` times.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        self.counts[idx] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * n as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Non-zero `(bucket index, count)` pairs in ascending index order.
    /// Exposes the raw log-linear layout so `oasis-obs` — which uses the
    /// identical bucket geometry — can import a substrate histogram
    /// losslessly for snapshot export.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
    }

    /// Arithmetic mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`. Exact at the resolution of the
    /// bucketing; clamped to the recorded min/max so tails never
    /// over-report.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return Self::value_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for common percentiles: p in percent, e.g. `percentile(99.9)`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.value_at_quantile(p / 100.0)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Histogram(n={}, min={}, p50={}, p99={}, max={})",
            self.total,
            self.min(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        assert_eq!(h.count(), SUB_BUCKETS);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((4800..=5200).contains(&p50), "p50={p50}");
        assert!((9700..=10_000).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(100.0), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new();
        for exp in 0..50u32 {
            let v = 3u64 << exp;
            h.clear();
            h.record(v);
            let got = h.percentile(50.0);
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0, "v={v} got={got} err={err}");
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(200);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(777, 50);
        for _ in 0..50 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn tail_clamped_to_max() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.percentile(99.99), 1_000_000);
    }
}
