//! Deterministic open-addressing hash map keyed by `u64` addresses.
//!
//! The simulation substrate spends most of its wall time in two per-line
//! lookups: the host cache's address→slot index and the pool's per-line
//! pending-write-back index. A general-purpose `HashMap` pays for SIMD
//! group probing, tombstone bookkeeping, and a hasher indirection on every
//! one of those lookups. [`AddrMap`] is the minimal replacement: Fibonacci
//! multiplicative hashing, linear probing, backward-shift deletion (no
//! tombstones, so probe chains never rot), and a load factor capped at 1/2.
//!
//! Iteration order is not exposed at all — callers that need ordered
//! traversal (e.g. the cache's LRU list) maintain it themselves — so the
//! map cannot leak nondeterminism into simulation results.

/// Fibonacci hashing constant: `floor(2^64 / phi)`, forced odd.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Open-addressing `u64 -> V` map with linear probing.
///
/// Invariants: `table.len()` is a power of two, `len < table.len() / 2`
/// (so probe loops always terminate at an empty slot), and there are no
/// tombstones (deletion backward-shifts the following cluster).
#[derive(Debug, Clone)]
pub struct AddrMap<V> {
    table: Vec<Option<(u64, V)>>,
    /// `64 - log2(table.len())`; the hash is the top bits of `addr * PHI`.
    shift: u32,
    mask: usize,
    len: usize,
}

impl<V> Default for AddrMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> AddrMap<V> {
    pub fn new() -> Self {
        Self::with_pow2(16)
    }

    fn with_pow2(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        Self {
            table: (0..n).map(|_| None).collect(),
            shift: 64 - n.trailing_zeros(),
            mask: n - 1,
            len: 0,
        }
    }

    #[inline]
    fn home(&self, addr: u64) -> usize {
        (addr.wrapping_mul(PHI) >> self.shift) as usize
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Probe for `addr`: `Ok(pos)` if present, `Err(pos)` at the first
    /// empty slot of its cluster otherwise.
    #[inline]
    fn find(&self, addr: u64) -> Result<usize, usize> {
        let mut i = self.home(addr);
        loop {
            match &self.table[i] {
                None => return Err(i),
                Some((a, _)) if *a == addr => return Ok(i),
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        self.find(addr).is_ok()
    }

    #[inline]
    pub fn get(&self, addr: u64) -> Option<&V> {
        match self.find(addr) {
            Ok(i) => self.table[i].as_ref().map(|(_, v)| v),
            Err(_) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self, addr: u64) -> Option<&mut V> {
        match self.find(addr) {
            Ok(i) => self.table[i].as_mut().map(|(_, v)| v),
            Err(_) => None,
        }
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, addr: u64, v: V) -> Option<V> {
        match self.find(addr) {
            Ok(i) => {
                let slot = self.table[i].as_mut().unwrap();
                Some(std::mem::replace(&mut slot.1, v))
            }
            Err(i) => {
                if (self.len + 1) * 2 > self.table.len() {
                    self.grow();
                    let i = self.find(addr).unwrap_err();
                    self.table[i] = Some((addr, v));
                } else {
                    self.table[i] = Some((addr, v));
                }
                self.len += 1;
                None
            }
        }
    }

    /// Fetch `addr`'s value, inserting `f()` first if absent.
    pub fn get_or_insert_with(&mut self, addr: u64, f: impl FnOnce() -> V) -> &mut V {
        if self.find(addr).is_err() {
            self.insert(addr, f());
        }
        let i = self.find(addr).unwrap();
        &mut self.table[i].as_mut().unwrap().1
    }

    /// Remove `addr`, backward-shifting the rest of its probe cluster so
    /// no tombstone is left behind.
    pub fn remove(&mut self, addr: u64) -> Option<V> {
        let Ok(mut i) = self.find(addr) else {
            return None;
        };
        let (_, val) = self.table[i].take().unwrap();
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let a = match &self.table[j] {
                None => break,
                Some((a, _)) => *a,
            };
            // The entry at `j` may fill the hole at `i` only if its home
            // slot is cyclically at or before `i` (probe distance from
            // home to `j` covers the hole); otherwise moving it would put
            // it before its home and make it unfindable.
            let probe = j.wrapping_sub(self.home(a)) & self.mask;
            let need = j.wrapping_sub(i) & self.mask;
            if probe >= need {
                self.table[i] = self.table[j].take();
                i = j;
            }
        }
        Some(val)
    }

    pub fn clear(&mut self) {
        for slot in &mut self.table {
            *slot = None;
        }
        self.len = 0;
    }

    fn grow(&mut self) {
        let n = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, (0..n).map(|_| None).collect());
        self.shift = 64 - n.trailing_zeros();
        self.mask = n - 1;
        for (a, v) in old.into_iter().flatten() {
            let i = self.find(a).unwrap_err();
            self.table[i] = Some((a, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Tiny deterministic PRNG for the model cross-check.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn basic_ops() {
        let mut m = AddrMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(64, "a"), None);
        assert_eq!(m.insert(128, "b"), None);
        assert_eq!(m.insert(64, "c"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(64), Some(&"c"));
        assert!(m.contains(128));
        assert!(!m.contains(192));
        assert_eq!(m.remove(64), Some("c"));
        assert_eq!(m.remove(64), None);
        assert_eq!(m.len(), 1);
        *m.get_or_insert_with(256, || "d") = "e";
        assert_eq!(m.get(256), Some(&"e"));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(128), None);
    }

    #[test]
    fn matches_std_hashmap_under_random_ops() {
        // Line-aligned addresses over a small universe force long probe
        // clusters and exercise backward-shift deletion heavily.
        let mut rng = Lcg(0x5eed);
        let mut m: AddrMap<u64> = AddrMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for step in 0..200_000u64 {
            let addr = (rng.next() % 97) * 64;
            match rng.next() % 4 {
                0 | 1 => {
                    assert_eq!(m.insert(addr, step), model.insert(addr, step));
                }
                2 => {
                    assert_eq!(m.remove(addr), model.remove(&addr));
                }
                _ => {
                    assert_eq!(m.get(addr), model.get(&addr));
                    assert_eq!(m.contains(addr), model.contains_key(&addr));
                }
            }
            assert_eq!(m.len(), model.len());
        }
        // Every surviving key still resolvable after the churn.
        for (k, v) in &model {
            assert_eq!(m.get(*k), Some(v));
        }
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = AddrMap::new();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 64), Some(&i));
        }
    }
}
