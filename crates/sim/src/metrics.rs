//! Metric name registry for `oasis-sim` (see `oasis-check`'s `metric-name`
//! rule: every metric name literal in the workspace lives in its crate's
//! `metrics.rs`, is `snake_case`, and carries the crate prefix).
//!
//! The scheduler's ambient stats are only *collected* behind the `obs`
//! feature, but the names are registered unconditionally so downstream
//! crates can reference the constants without feature gymnastics.

/// Total actor dispatches across a run (tag 0).
pub const SCHED_DISPATCHES: &str = "sim.sched_dispatches";
/// Superseded heap entries filtered on pop (tag 0).
pub const SCHED_STALE_SKIPS: &str = "sim.sched_stale_skips";
/// Dispatch count per actor (tag = actor id).
pub const SCHED_ACTOR_POLLS: &str = "sim.sched_actor_polls";
/// Histogram: sim time between a wake being armed and its dispatch (tag 0).
pub const SCHED_WAKE_TO_POLL_NS: &str = "sim.sched_wake_to_poll_ns";
/// Idle-skip fast-forwards taken by the pod dispatch loop (tag 0).
pub const SCHED_IDLE_SKIPS: &str = "sim.sched_idle_skips";
/// Histogram: sim nanoseconds saved per idle-skip fast-forward (tag 0).
pub const SCHED_IDLE_SKIP_NS: &str = "sim.sched_idle_skip_ns";
/// Window barriers crossed by a sharded run (tag 0).
pub const SHARD_WINDOWS: &str = "sim.shard_windows";
/// Events processed per shard under the sharded runner (tag = shard index).
pub const SHARD_EVENTS: &str = "sim.shard_events";
/// Shard-window visits that processed zero events (tag 0).
pub const SHARD_BARRIER_STALLS: &str = "sim.shard_barrier_stalls";
/// Cross-shard messages exchanged at window barriers (tag 0).
pub const SHARD_MESSAGES: &str = "sim.shard_messages";
/// Histogram: realized lookahead-window lengths in sim nanoseconds (tag 0).
pub const SHARD_WINDOW_NS: &str = "sim.shard_window_ns";
