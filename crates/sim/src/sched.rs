//! Cooperative actor scheduler.
//!
//! An Oasis experiment is a set of concurrently running loops: frontend and
//! backend driver pollers, NIC DMA engines, switch forwarding, application
//! instances, load generators, the pod-wide allocator, Raft nodes. Each loop
//! is an *actor* identified by a dense `usize` id. The scheduler steps
//! whichever actor has the earliest wake-up time; the actor does a bounded
//! amount of work against the shared world `W` and reports when it next
//! wants to run.
//!
//! The world type is owned by the experiment harness (e.g.
//! `oasis_core::pod::Pod`), which implements the dispatch from actor id to
//! component — this sidesteps the classic "actor inside the world it
//! mutates" borrow problem without `RefCell` webs.
//!
//! Determinism: equal wake times dispatch in ascending actor-id order, so a
//! pod that registers its components in a fixed order replays bit-identically
//! run after run. Registration order *is* the priority order on ties.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// What an actor wants after a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Run again at the given absolute time (clamped to be >= now).
    WakeAt(SimTime),
    /// The actor has nothing left to do; it will only run again if someone
    /// calls [`Scheduler::wake`] on it.
    Idle,
    /// The actor is finished for good.
    Done,
}

/// Per-dispatch context handed to the callback of
/// [`Scheduler::run_until_with`].
///
/// Lets the running actor (a) request wake-ups for *other* actors — applied
/// after its own step completes, so the borrow of the world stays simple —
/// and (b) see when the next-earliest actor is scheduled, which engines use
/// to bound idle-skip fast-forwarding.
pub struct StepCtx {
    wakes: Vec<(usize, SimTime)>,
    next_other: SimTime,
}

impl StepCtx {
    /// Request that `actor` be woken at `at` (or earlier, if it already has
    /// an earlier wake pending). Applied when the current dispatch returns.
    pub fn wake(&mut self, actor: usize, at: SimTime) {
        self.wakes.push((actor, at));
    }

    /// Earliest scheduled wake time among all *other* pending heap entries
    /// at the moment this actor was dispatched ([`SimTime::MAX`] if none).
    /// Superseded entries may make this earlier than the true next dispatch
    /// — safe for its intended use as an idle-skip bound (never later).
    pub fn next_other(&self) -> SimTime {
        self.next_other
    }
}

/// Ambient scheduler telemetry, collected only with the `obs` feature on.
///
/// "Wake-to-poll" is the sim time between a wake being *armed* (the
/// `wake()` call, an actor's own `WakeAt`, or registration) and the actor
/// actually being dispatched — the notification-to-service delay for
/// doorbell-style wakes, the poll period for self-scheduling loops.
#[cfg(feature = "obs")]
#[derive(Clone, Default)]
pub struct SchedStats {
    /// Total dispatches across the run.
    pub dispatches: u64,
    /// Superseded heap entries filtered on pop.
    pub stale_skips: u64,
    /// Dispatch count per actor id.
    pub actor_polls: Vec<u64>,
    /// Wake-to-poll latency distribution (nanoseconds).
    pub wake_to_poll: crate::hist::Histogram,
}

#[cfg(feature = "obs")]
impl SchedStats {
    /// Fold another run's stats into this one (actor ids must line up,
    /// which holds when the world registers actors in a fixed order).
    pub fn merge(&mut self, other: &SchedStats) {
        self.dispatches += other.dispatches;
        self.stale_skips += other.stale_skips;
        if self.actor_polls.len() < other.actor_polls.len() {
            self.actor_polls.resize(other.actor_polls.len(), 0);
        }
        for (a, b) in self.actor_polls.iter_mut().zip(other.actor_polls.iter()) {
            *a += b;
        }
        self.wake_to_poll.merge(&other.wake_to_poll);
    }
}

/// Time-ordered actor scheduler.
///
/// Dispatch is a callback so the scheduler itself has no opinion about what
/// an actor is: `run_until` hands `(world, actor_id, now)` to the closure and
/// obeys the returned [`StepOutcome`].
pub struct Scheduler {
    /// Min-heap on `(wake time, actor id)`: earliest first, lowest actor id
    /// on ties. Entries are never deleted; stale ones (superseded by an
    /// earlier `wake`) are filtered against `pending` on pop.
    queue: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Wake generation per actor: lets `wake` supersede a later scheduled
    /// wake-up without having to delete heap entries.
    pending: Vec<Option<SimTime>>,
    now: SimTime,
    /// Sim time at which each actor's live pending entry was armed.
    #[cfg(feature = "obs")]
    wake_origin: Vec<SimTime>,
    #[cfg(feature = "obs")]
    stats: SchedStats,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Create an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            queue: BinaryHeap::new(),
            pending: Vec::new(),
            now: SimTime::ZERO,
            #[cfg(feature = "obs")]
            wake_origin: Vec::new(),
            #[cfg(feature = "obs")]
            stats: SchedStats::default(),
        }
    }

    /// Telemetry collected so far (per-actor polls, stale skips,
    /// wake-to-poll latency).
    #[cfg(feature = "obs")]
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    #[cfg(feature = "obs")]
    #[inline]
    fn note_armed(&mut self, actor: usize) {
        self.wake_origin[actor] = self.now;
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn note_armed(&mut self, _actor: usize) {}

    #[cfg(feature = "obs")]
    #[inline]
    fn note_dispatch(&mut self, actor: usize, at: SimTime) {
        self.stats.dispatches += 1;
        if self.stats.actor_polls.len() <= actor {
            self.stats.actor_polls.resize(actor + 1, 0);
        }
        self.stats.actor_polls[actor] += 1;
        let armed = self.wake_origin[actor];
        self.stats
            .wake_to_poll
            .record(at.as_nanos().saturating_sub(armed.as_nanos()));
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn note_dispatch(&mut self, _actor: usize, _at: SimTime) {}

    #[cfg(feature = "obs")]
    #[inline]
    fn note_stale_skip(&mut self) {
        self.stats.stale_skips += 1;
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn note_stale_skip(&mut self) {}

    /// Current simulated time (the wake time of the most recently dispatched
    /// actor).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a new actor and schedule its first step at `first_wake`.
    /// Returns the actor id.
    pub fn add_actor(&mut self, first_wake: SimTime) -> usize {
        let id = self.pending.len();
        self.pending.push(Some(first_wake));
        #[cfg(feature = "obs")]
        self.wake_origin.push(self.now);
        self.queue.push(Reverse((first_wake, id)));
        id
    }

    /// Register a new actor that starts idle (must be woken explicitly).
    pub fn add_idle_actor(&mut self) -> usize {
        let id = self.pending.len();
        self.pending.push(None);
        #[cfg(feature = "obs")]
        self.wake_origin.push(self.now);
        id
    }

    /// Wake `actor` at time `at` (or earlier if it already has an earlier
    /// wake pending). Waking an actor that is `Done` is a no-op only if the
    /// caller stops dispatching it; the scheduler itself keeps no done-list.
    pub fn wake(&mut self, actor: usize, at: SimTime) {
        let at = at.max(self.now);
        match self.pending[actor] {
            Some(t) if t <= at => {} // already scheduled earlier
            _ => {
                self.pending[actor] = Some(at);
                self.note_armed(actor);
                self.queue.push(Reverse((at, actor)));
            }
        }
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.pending.len()
    }

    /// Run the simulation until `deadline` (inclusive) or until no actor has
    /// pending work. `dispatch(world, actor, now)` performs one step of the
    /// actor. Returns the time the loop stopped at.
    pub fn run_until<W>(
        &mut self,
        world: &mut W,
        deadline: SimTime,
        mut dispatch: impl FnMut(&mut W, usize, SimTime) -> StepOutcome,
    ) -> SimTime {
        self.run_until_with(world, deadline, |w, actor, now, _ctx| {
            dispatch(w, actor, now)
        })
    }

    /// Like [`Scheduler::run_until`], but the dispatch callback also gets a
    /// [`StepCtx`] for cross-actor wake requests and the next-wake hint.
    pub fn run_until_with<W>(
        &mut self,
        world: &mut W,
        deadline: SimTime,
        mut dispatch: impl FnMut(&mut W, usize, SimTime, &mut StepCtx) -> StepOutcome,
    ) -> SimTime {
        while let Some(&Reverse((at, actor))) = self.queue.peek() {
            if at > deadline {
                // Leave it queued; the caller may continue later.
                self.now = deadline;
                break;
            }
            self.queue.pop();
            // Skip stale heap entries: only the entry matching the actor's
            // current pending time is live.
            match self.pending[actor] {
                Some(t) if t == at => {}
                _ => {
                    self.note_stale_skip();
                    continue;
                }
            }
            self.pending[actor] = None;
            self.now = at;
            self.note_dispatch(actor, at);
            let mut ctx = StepCtx {
                wakes: Vec::new(),
                next_other: self
                    .queue
                    .peek()
                    .map(|&Reverse((t, _))| t)
                    .unwrap_or(SimTime::MAX),
            };
            match dispatch(world, actor, at, &mut ctx) {
                StepOutcome::WakeAt(next) => {
                    let next = next.max(at);
                    self.pending[actor] = Some(next);
                    self.note_armed(actor);
                    self.queue.push(Reverse((next, actor)));
                }
                StepOutcome::Idle | StepOutcome::Done => {}
            }
            for (who, when) in ctx.wakes {
                self.wake(who, when);
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn actors_interleave_by_time() {
        // Two counters ticking at different periods; verify interleaving.
        struct World {
            log: Vec<(usize, u64)>,
        }
        let mut sched = Scheduler::new();
        let a = sched.add_actor(SimTime::ZERO);
        let b = sched.add_actor(SimTime::ZERO);
        let mut world = World { log: vec![] };
        sched.run_until(&mut world, SimTime::from_nanos(100), |w, id, now| {
            w.log.push((id, now.as_nanos()));
            let period = if id == a { 10 } else { 25 };
            StepOutcome::WakeAt(now + SimDuration::from_nanos(period))
        });
        // Actor a fires at 0,10,..,100 (11 times); b at 0,25,50,75,100 (5).
        let a_count = world.log.iter().filter(|(id, _)| *id == a).count();
        let b_count = world.log.iter().filter(|(id, _)| *id == b).count();
        assert_eq!(a_count, 11);
        assert_eq!(b_count, 5);
        // Log must be sorted by time.
        assert!(world.log.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn idle_actor_runs_only_when_woken() {
        let mut sched = Scheduler::new();
        let idle = sched.add_idle_actor();
        let driver = sched.add_actor(SimTime::ZERO);
        let mut hits = vec![0u32; 2];
        sched.run_until(&mut hits, SimTime::from_nanos(50), |w, id, _now| {
            w[id] += 1;
            if id == driver {
                StepOutcome::Done
            } else {
                StepOutcome::Idle
            }
        });
        assert_eq!(hits[idle], 0);
        assert_eq!(hits[driver], 1);

        sched.wake(idle, SimTime::from_nanos(60));
        sched.run_until(&mut hits, SimTime::from_nanos(100), |w, id, _| {
            w[id] += 1;
            StepOutcome::Idle
        });
        assert_eq!(hits[idle], 1);
    }

    #[test]
    fn earlier_wake_supersedes_later() {
        let mut sched = Scheduler::new();
        let a = sched.add_idle_actor();
        sched.wake(a, SimTime::from_nanos(100));
        sched.wake(a, SimTime::from_nanos(10)); // earlier wins
        let mut times = Vec::new();
        sched.run_until(&mut times, SimTime::from_nanos(200), |w, _, now| {
            w.push(now.as_nanos());
            StepOutcome::Idle
        });
        assert_eq!(times, vec![10]);
    }

    #[test]
    fn later_wake_does_not_postpone() {
        // `wake` may only move an actor earlier: a later request while an
        // earlier one is pending is ignored, and the stale heap entry it
        // would have left behind is filtered on pop.
        let mut sched = Scheduler::new();
        let a = sched.add_idle_actor();
        sched.wake(a, SimTime::from_nanos(10));
        sched.wake(a, SimTime::from_nanos(100)); // ignored
        let mut times = Vec::new();
        sched.run_until(&mut times, SimTime::from_nanos(200), |w, _, now| {
            w.push(now.as_nanos());
            StepOutcome::Idle
        });
        assert_eq!(times, vec![10], "actor fires once, at the earlier time");
    }

    #[test]
    fn deadline_pauses_and_resumes() {
        let mut sched = Scheduler::new();
        sched.add_actor(SimTime::from_nanos(5));
        let mut count = 0u32;
        sched.run_until(&mut count, SimTime::from_nanos(14), |c, _, now| {
            *c += 1;
            StepOutcome::WakeAt(now + SimDuration::from_nanos(10))
        });
        // Fires at 5, reschedules to 15 which is past the deadline.
        assert_eq!(count, 1);
        // Continue to t=30: fires at 15 and 25.
        sched.run_until(&mut count, SimTime::from_nanos(30), |c, _, now| {
            *c += 1;
            StepOutcome::WakeAt(now + SimDuration::from_nanos(10))
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn wake_in_past_clamps_to_now() {
        let mut sched = Scheduler::new();
        let a = sched.add_actor(SimTime::from_nanos(50));
        let b = sched.add_idle_actor();
        let mut order = Vec::new();
        sched.run_until(
            &mut order,
            SimTime::from_nanos(100),
            |o: &mut Vec<usize>, id, _| {
                o.push(id);
                StepOutcome::Idle
            },
        );
        assert_eq!(order, vec![a]);
        // now == 50; waking b "at 10" must not rewind time.
        sched.wake(b, SimTime::from_nanos(10));
        sched.run_until(&mut order, SimTime::from_nanos(100), |o, id, now| {
            o.push(id);
            assert!(now >= SimTime::from_nanos(50));
            StepOutcome::Idle
        });
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn equal_time_ties_dispatch_in_actor_id_order() {
        // Registration order is the tie-break priority: all actors due at
        // the same instant dispatch lowest-id first, every round, regardless
        // of the order their wake entries were pushed.
        let mut sched = Scheduler::new();
        for _ in 0..5 {
            sched.add_idle_actor();
        }
        // Wake in scrambled order, all at the same time.
        for &id in &[3usize, 0, 4, 2, 1] {
            sched.wake(id, SimTime::from_nanos(7));
        }
        let mut order = Vec::new();
        sched.run_until(
            &mut order,
            SimTime::from_nanos(10),
            |o: &mut Vec<usize>, id, _| {
                o.push(id);
                StepOutcome::Idle
            },
        );
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tie_break_is_deterministic_across_runs() {
        let run = || {
            let mut sched = Scheduler::new();
            let _a = sched.add_actor(SimTime::ZERO);
            let _b = sched.add_actor(SimTime::ZERO);
            let _c = sched.add_actor(SimTime::ZERO);
            let mut log = Vec::new();
            sched.run_until(
                &mut log,
                SimTime::from_nanos(30),
                |l: &mut Vec<(usize, u64)>, id, now| {
                    l.push((id, now.as_nanos()));
                    StepOutcome::WakeAt(now + SimDuration::from_nanos(10))
                },
            );
            log
        };
        let first = run();
        assert_eq!(first, run(), "identical setup must replay identically");
        // Within each instant, ids ascend.
        for chunk in first.chunks(3) {
            assert!(chunk
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 == w[1].1));
        }
    }

    #[test]
    fn max_wake_never_dispatches_before_deadline() {
        // `SimTime::MAX` is the "parked" sentinel: an actor rescheduling to
        // MAX must never run again within any finite horizon, and must not
        // prevent the loop from reaching the deadline.
        let mut sched = Scheduler::new();
        sched.add_actor(SimTime::ZERO); // parks itself at MAX
        sched.add_actor(SimTime::ZERO); // ticks every 10ns
        let mut hits = vec![0u32; 2];
        let stopped = sched.run_until(&mut hits, SimTime::from_nanos(100), |w, id, now| {
            w[id] += 1;
            if id == 0 {
                StepOutcome::WakeAt(SimTime::MAX)
            } else {
                StepOutcome::WakeAt(now + SimDuration::from_nanos(10))
            }
        });
        assert_eq!(hits[0], 1, "parked actor ran only its first step");
        assert_eq!(hits[1], 11);
        assert_eq!(stopped, SimTime::from_nanos(100));

        // A later wake un-parks it.
        sched.wake(0, SimTime::from_nanos(110));
        sched.run_until(&mut hits, SimTime::from_nanos(120), |w, id, _| {
            w[id] += 1;
            StepOutcome::Idle
        });
        assert_eq!(hits[0], 2);
    }

    #[test]
    fn idle_actors_at_max_do_not_stall_empty_queue() {
        // A scheduler holding only MAX-parked actors stops at the deadline
        // without dispatching anyone.
        let mut sched = Scheduler::new();
        sched.add_actor(SimTime::MAX);
        sched.add_actor(SimTime::MAX);
        let mut hits = 0u32;
        let stopped = sched.run_until(&mut hits, SimTime::from_secs(1), |c, _, _| {
            *c += 1;
            StepOutcome::Idle
        });
        assert_eq!(hits, 0);
        assert_eq!(stopped, SimTime::from_secs(1));
    }

    #[test]
    fn step_ctx_wakes_other_actor_and_reports_next() {
        // Actor 0 (at t=5) wakes actor 1 at t=20 via the ctx; the hint shows
        // the next-earliest other entry (actor 2 at t=50).
        let mut sched = Scheduler::new();
        let trigger = sched.add_actor(SimTime::from_nanos(5));
        let target = sched.add_idle_actor();
        let _bg = sched.add_actor(SimTime::from_nanos(50));
        let mut log = Vec::new();
        sched.run_until_with(
            &mut log,
            SimTime::from_nanos(100),
            |l: &mut Vec<(usize, u64)>, id, now, ctx| {
                l.push((id, now.as_nanos()));
                if id == trigger {
                    assert_eq!(ctx.next_other(), SimTime::from_nanos(50));
                    ctx.wake(target, SimTime::from_nanos(20));
                }
                StepOutcome::Idle
            },
        );
        assert_eq!(log, vec![(0, 5), (1, 20), (2, 50)]);
    }
}
