//! Cooperative actor scheduler.
//!
//! An Oasis experiment is a set of concurrently running loops: frontend and
//! backend driver pollers, NIC DMA engines, switch forwarding, application
//! instances, load generators, the pod-wide allocator, Raft nodes. Each loop
//! is an *actor* identified by a dense `usize` id. The scheduler steps
//! whichever actor has the earliest wake-up time; the actor does a bounded
//! amount of work against the shared world `W` and reports when it next
//! wants to run.
//!
//! The world type is owned by the experiment harness (e.g.
//! `oasis_core::pod::Pod`), which implements the dispatch from actor id to
//! component — this sidesteps the classic "actor inside the world it
//! mutates" borrow problem without `RefCell` webs.

use crate::event::EventQueue;
use crate::time::SimTime;

/// What an actor wants after a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Run again at the given absolute time (clamped to be >= now).
    WakeAt(SimTime),
    /// The actor has nothing left to do; it will only run again if someone
    /// calls [`Scheduler::wake`] on it.
    Idle,
    /// The actor is finished for good.
    Done,
}

/// Time-ordered actor scheduler.
///
/// Dispatch is a callback so the scheduler itself has no opinion about what
/// an actor is: `run_until` hands `(world, actor_id, now)` to the closure and
/// obeys the returned [`StepOutcome`].
pub struct Scheduler {
    queue: EventQueue<usize>,
    /// Wake generation per actor: lets `wake` supersede a later scheduled
    /// wake-up without having to delete heap entries.
    pending: Vec<Option<SimTime>>,
    now: SimTime,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// Create an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            pending: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (the wake time of the most recently dispatched
    /// actor).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a new actor and schedule its first step at `first_wake`.
    /// Returns the actor id.
    pub fn add_actor(&mut self, first_wake: SimTime) -> usize {
        let id = self.pending.len();
        self.pending.push(Some(first_wake));
        self.queue.push(first_wake, id);
        id
    }

    /// Register a new actor that starts idle (must be woken explicitly).
    pub fn add_idle_actor(&mut self) -> usize {
        let id = self.pending.len();
        self.pending.push(None);
        id
    }

    /// Wake `actor` at time `at` (or earlier if it already has an earlier
    /// wake pending). Waking an actor that is `Done` is a no-op only if the
    /// caller stops dispatching it; the scheduler itself keeps no done-list.
    pub fn wake(&mut self, actor: usize, at: SimTime) {
        let at = at.max(self.now);
        match self.pending[actor] {
            Some(t) if t <= at => {} // already scheduled earlier
            _ => {
                self.pending[actor] = Some(at);
                self.queue.push(at, actor);
            }
        }
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.pending.len()
    }

    /// Run the simulation until `deadline` (inclusive) or until no actor has
    /// pending work. `dispatch(world, actor, now)` performs one step of the
    /// actor. Returns the time the loop stopped at.
    pub fn run_until<W>(
        &mut self,
        world: &mut W,
        deadline: SimTime,
        mut dispatch: impl FnMut(&mut W, usize, SimTime) -> StepOutcome,
    ) -> SimTime {
        while let Some((at, actor)) = self.queue.pop() {
            if at > deadline {
                // Put it back; the caller may continue later.
                self.queue.push(at, actor);
                self.now = deadline;
                break;
            }
            // Skip stale heap entries: only the entry matching the actor's
            // current pending time is live.
            match self.pending[actor] {
                Some(t) if t == at => {}
                _ => continue,
            }
            self.pending[actor] = None;
            self.now = at;
            match dispatch(world, actor, at) {
                StepOutcome::WakeAt(next) => {
                    let next = next.max(at);
                    self.pending[actor] = Some(next);
                    self.queue.push(next, actor);
                }
                StepOutcome::Idle | StepOutcome::Done => {}
            }
        }
        if self.queue.is_empty() {
            self.now = self.now.max(SimTime::ZERO);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn actors_interleave_by_time() {
        // Two counters ticking at different periods; verify interleaving.
        struct World {
            log: Vec<(usize, u64)>,
        }
        let mut sched = Scheduler::new();
        let a = sched.add_actor(SimTime::ZERO);
        let b = sched.add_actor(SimTime::ZERO);
        let mut world = World { log: vec![] };
        sched.run_until(&mut world, SimTime::from_nanos(100), |w, id, now| {
            w.log.push((id, now.as_nanos()));
            let period = if id == a { 10 } else { 25 };
            StepOutcome::WakeAt(now + SimDuration::from_nanos(period))
        });
        // Actor a fires at 0,10,..,100 (11 times); b at 0,25,50,75,100 (5).
        let a_count = world.log.iter().filter(|(id, _)| *id == a).count();
        let b_count = world.log.iter().filter(|(id, _)| *id == b).count();
        assert_eq!(a_count, 11);
        assert_eq!(b_count, 5);
        // Log must be sorted by time.
        assert!(world.log.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn idle_actor_runs_only_when_woken() {
        let mut sched = Scheduler::new();
        let idle = sched.add_idle_actor();
        let driver = sched.add_actor(SimTime::ZERO);
        let mut hits = vec![0u32; 2];
        sched.run_until(&mut hits, SimTime::from_nanos(50), |w, id, _now| {
            w[id] += 1;
            if id == driver {
                StepOutcome::Done
            } else {
                StepOutcome::Idle
            }
        });
        assert_eq!(hits[idle], 0);
        assert_eq!(hits[driver], 1);

        sched.wake(idle, SimTime::from_nanos(60));
        sched.run_until(&mut hits, SimTime::from_nanos(100), |w, id, _| {
            w[id] += 1;
            StepOutcome::Idle
        });
        assert_eq!(hits[idle], 1);
    }

    #[test]
    fn earlier_wake_supersedes_later() {
        let mut sched = Scheduler::new();
        let a = sched.add_idle_actor();
        sched.wake(a, SimTime::from_nanos(100));
        sched.wake(a, SimTime::from_nanos(10)); // earlier wins
        let mut times = Vec::new();
        sched.run_until(&mut times, SimTime::from_nanos(200), |w, _, now| {
            w.push(now.as_nanos());
            StepOutcome::Idle
        });
        assert_eq!(times, vec![10]);
    }

    #[test]
    fn deadline_pauses_and_resumes() {
        let mut sched = Scheduler::new();
        sched.add_actor(SimTime::from_nanos(5));
        let mut count = 0u32;
        sched.run_until(&mut count, SimTime::from_nanos(14), |c, _, now| {
            *c += 1;
            StepOutcome::WakeAt(now + SimDuration::from_nanos(10))
        });
        // Fires at 5, reschedules to 15 which is past the deadline.
        assert_eq!(count, 1);
        // Continue to t=30: fires at 15 and 25.
        sched.run_until(&mut count, SimTime::from_nanos(30), |c, _, now| {
            *c += 1;
            StepOutcome::WakeAt(now + SimDuration::from_nanos(10))
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn wake_in_past_clamps_to_now() {
        let mut sched = Scheduler::new();
        let a = sched.add_actor(SimTime::from_nanos(50));
        let b = sched.add_idle_actor();
        let mut order = Vec::new();
        sched.run_until(
            &mut order,
            SimTime::from_nanos(100),
            |o: &mut Vec<usize>, id, _| {
                o.push(id);
                StepOutcome::Idle
            },
        );
        assert_eq!(order, vec![a]);
        // now == 50; waking b "at 10" must not rewind time.
        sched.wake(b, SimTime::from_nanos(10));
        sched.run_until(&mut order, SimTime::from_nanos(100), |o, id, now| {
            o.push(id);
            assert!(now >= SimTime::from_nanos(50));
            StepOutcome::Idle
        });
        assert_eq!(order, vec![a, b]);
    }
}
