//! Deterministic discrete-event simulation (DES) core for the Oasis
//! reproduction.
//!
//! The original Oasis prototype (SOSP '25) runs on two physical hosts that
//! share a CXL 2.0 memory pool and a wall clock. This crate replaces the wall
//! clock with a simulated nanosecond clock and provides the building blocks
//! every other crate uses:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`rng::SimRng`] — a seedable, portable PRNG with the heavy-tailed
//!   distributions needed for bursty datacenter traffic,
//! * [`event::EventQueue`] — a stable (FIFO-on-tie) priority queue of timed
//!   events,
//! * [`sched::Scheduler`] — a cooperative actor scheduler generic over the
//!   simulated "world",
//! * [`shard::ShardedRunner`] — conservative time-window parallelism over N
//!   schedulers with deterministic cross-shard message merge,
//! * [`hist::Histogram`] — a log-linear latency histogram (HDR-style) for
//!   percentile reporting,
//! * [`series::BinnedSeries`] — fixed-width time bins for utilization
//!   measurements (the paper bins NIC bandwidth at 10 µs granularity).
//!
//! Everything is deterministic: given the same seed, every experiment binary
//! in `oasis-bench` reproduces bit-identical output.

pub mod addrmap;
pub mod detmap;
pub mod event;
pub mod fault;
pub mod hist;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod sched;
pub mod series;
pub mod shard;
pub mod time;

pub use addrmap::AddrMap;
pub use detmap::{DetMap, DetSet};
pub use event::EventQueue;
pub use fault::{
    AccelFaultMode, FaultEvent, FaultInjector, FaultKind, FaultMix, FaultPlan, PacketFaultState,
};
pub use hist::Histogram;
pub use rng::SimRng;
pub use sched::{Scheduler, StepCtx, StepOutcome};
pub use series::BinnedSeries;
pub use shard::{Envelope, Outgoing, ShardError, ShardWorld, ShardedRunner, SHARD_THREADS_ENV};
pub use time::{SimDuration, SimTime};
