//! Sharded deterministic execution: N schedulers, conservative time windows.
//!
//! A single [`crate::sched::Scheduler`] event loop is the throughput ceiling
//! of every experiment (ROADMAP item 2): the loop is inherently serial, so a
//! rack-scale fleet of pods simulates no faster than one pod. This module
//! pushes the lookahead trick the sweep runner exploits at whole-experiment
//! granularity *into a single run*: the simulated world is split into
//! **shards** (one pod, or one host group, per shard), each owning its own
//! deterministic scheduler, and the shards only rendezvous at **window
//! barriers**.
//!
//! # The conservative window protocol
//!
//! Cross-shard interactions travel over explicit links with a known minimum
//! latency `L` (in Oasis, the inter-pod uplink latency exposed by
//! `oasis-cxl`'s topology model). That latency is *lookahead* in the
//! classical conservative-parallel-DES sense (Chandy/Misra/Bryant): an event
//! executed at time `t` in one shard can influence another shard no earlier
//! than `t + L`. The runner therefore advances every shard independently —
//! in parallel — through the window `[t, t+L)`, then exchanges the messages
//! produced in that window at the barrier, delivers those due in the next
//! window, and repeats. No shard ever receives a message "from the past", so
//! no rollback machinery is needed and results are bit-identical to a
//! sequential merge.
//!
//! # Determinism
//!
//! Two sources of nondeterminism must be pinned for byte-identical output at
//! any thread count:
//!
//! 1. **Within a window** each shard runs on its own scheduler over its own
//!    world — no shared mutable state, so thread interleaving cannot be
//!    observed.
//! 2. **At the barrier** messages are merged in the total order
//!    `(deliver_time, src_shard, seq)` — `seq` being the send order within
//!    the source shard — never in thread-arrival order. The merge happens on
//!    the coordinating thread after all workers reach the barrier, so the
//!    exchange itself is single-threaded and ordered.
//!
//! With one shard there are no cross-shard links, the lookahead is
//! effectively infinite, and the "window" is the whole run: the sharded path
//! degenerates to exactly the sequential event loop. `OASIS_SHARD_THREADS=1`
//! runs the same code with the parallel advance replaced by an in-order
//! loop; both paths produce identical bytes by construction.
//!
//! # Allocation discipline
//!
//! The barrier exchange reuses pooled per-shard buffers (`inbox`, `outbox`,
//! and the pending queue) across windows — message envelopes are plain
//! values moved between pre-grown `Vec` arenas, so steady-state exchange
//! performs no per-message allocation. Shards are encouraged to batch: a
//! `run_window` call processes *every* local event in the window in one
//! visit, amortizing scheduler heap traffic over the batch.

use crate::time::{SimDuration, SimTime};

/// Environment variable overriding the shard worker thread count.
///
/// `1` (the default when unset) advances shards in order on the calling
/// thread; any higher value fans windows across that many scoped workers.
/// Simulation output is byte-identical at every setting.
pub const SHARD_THREADS_ENV: &str = "OASIS_SHARD_THREADS";

/// Worker thread count from [`SHARD_THREADS_ENV`], defaulting to 1 (the
/// sequential path) when unset or unparsable.
pub fn threads_from_env() -> usize {
    std::env::var(SHARD_THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// A cross-shard message as delivered: stamped with its delivery time and
/// provenance. Inboxes are sorted by `(at, src, seq)` — the deterministic
/// merge order — before the owning shard sees them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulated delivery time at the destination shard.
    pub at: SimTime,
    /// Source shard index.
    pub src: u32,
    /// Send order within the source shard (monotonic per src over the run).
    pub seq: u64,
    /// The payload.
    pub msg: M,
}

/// A cross-shard message as sent: the producing shard names the destination
/// and the delivery time (send time + link latency, hence ≥ the window end);
/// the runner stamps provenance at the barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// Destination shard index.
    pub dst: usize,
    /// Simulated delivery time (must be ≥ the current window's end).
    pub at: SimTime,
    /// The payload.
    pub msg: M,
}

/// One shard of a sharded simulation: a self-contained world advanced
/// window-by-window, exchanging messages with other shards only at barriers.
pub trait ShardWorld {
    /// Cross-shard message payload.
    type Msg;

    /// Earliest simulated time at which this shard has local work pending
    /// ([`SimTime::MAX`] when idle). Used to open windows at the next busy
    /// instant instead of grinding lookahead-sized steps through idle
    /// stretches; an idle shard parks here rather than stalling the barrier.
    fn next_time(&self) -> SimTime;

    /// Advance this shard's clock to `until` (exclusive), first absorbing
    /// `inbox` (sorted by `(at, src, seq)`; every `at` falls inside the
    /// window) and pushing any cross-shard sends into `outbox` with
    /// delivery times no earlier than `until`. Returns the number of events
    /// processed, for throughput accounting and stall telemetry. The runner
    /// recycles both buffers across windows — capacity is retained, nothing
    /// is reallocated per message.
    fn run_window(
        &mut self,
        until: SimTime,
        inbox: &mut Vec<Envelope<Self::Msg>>,
        outbox: &mut Vec<Outgoing<Self::Msg>>,
    ) -> u64;
}

/// Why a sharded run refused to start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// More than one shard with zero cross-shard lookahead: windows would
    /// have zero width and the barrier could never make progress. Merge the
    /// zero-latency shards into one, or give the link a real latency.
    ZeroLookahead {
        /// Number of shards in the rejected run.
        shards: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroLookahead { shards } => write!(
                f,
                "sharded run with {shards} shards but zero cross-shard lookahead; \
                 a zero-latency link means the shards are one shard"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Telemetry for one sharded run, collected only with the `obs` feature on.
#[cfg(feature = "obs")]
#[derive(Clone, Default)]
pub struct ShardStats {
    /// Window barriers crossed.
    pub windows: u64,
    /// Events processed per shard (tag = shard index on export).
    pub shard_events: Vec<u64>,
    /// Shard-window visits that processed zero events — the shard reached
    /// the barrier with nothing to do and stalled there.
    pub barrier_stalls: u64,
    /// Cross-shard messages exchanged.
    pub messages: u64,
    /// Realized window lengths in simulated nanoseconds (idle-gap skipping
    /// and run horizons make windows differ from the raw lookahead).
    pub window_ns: crate::hist::Histogram,
}

#[cfg(feature = "obs")]
impl ShardStats {
    /// Fold another run's stats into this one (shard indices must line up).
    pub fn merge(&mut self, other: &ShardStats) {
        self.windows += other.windows;
        if self.shard_events.len() < other.shard_events.len() {
            self.shard_events.resize(other.shard_events.len(), 0);
        }
        for (a, b) in self.shard_events.iter_mut().zip(other.shard_events.iter()) {
            *a += b;
        }
        self.barrier_stalls += other.barrier_stalls;
        self.messages += other.messages;
        self.window_ns.merge(&other.window_ns);
    }
}

/// Per-shard state owned by the runner: the pooled message arenas.
struct ShardBuf<M> {
    /// Messages awaiting delivery to this shard in a future window, kept
    /// sorted by `(at, src, seq)`.
    pending: Vec<Envelope<M>>,
    /// Scratch inbox handed to `run_window`; reused every window.
    inbox: Vec<Envelope<M>>,
    /// Scratch outbox handed to `run_window`; drained at the barrier.
    outbox: Vec<Outgoing<M>>,
}

impl<M> Default for ShardBuf<M> {
    fn default() -> Self {
        ShardBuf {
            pending: Vec::new(),
            inbox: Vec::new(),
            outbox: Vec::new(),
        }
    }
}

/// Advances N [`ShardWorld`]s in lockstep windows with deterministic
/// cross-shard message exchange. Owns the window cursor and the pooled
/// message arenas, and persists across `run` calls so repeated stepping
/// (the `Pod::run`-in-a-loop pattern every bench uses) reuses buffers.
pub struct ShardedRunner<M> {
    threads: usize,
    lookahead: SimDuration,
    now: SimTime,
    bufs: Vec<ShardBuf<M>>,
    /// Next send sequence number per source shard.
    seqs: Vec<u64>,
    #[cfg(feature = "obs")]
    stats: ShardStats,
}

impl<M> ShardedRunner<M> {
    /// A runner for `shards` shards with the given cross-shard lookahead
    /// (the minimum latency of any cross-shard link) and worker thread
    /// count (clamped to at least 1).
    pub fn new(shards: usize, lookahead: SimDuration, threads: usize) -> Self {
        ShardedRunner {
            threads: threads.max(1),
            lookahead,
            now: SimTime::ZERO,
            bufs: (0..shards).map(|_| ShardBuf::default()).collect(),
            seqs: vec![0; shards],
            #[cfg(feature = "obs")]
            stats: ShardStats {
                shard_events: vec![0; shards],
                ..ShardStats::default()
            },
        }
    }

    /// Configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of shards this runner coordinates.
    pub fn shards(&self) -> usize {
        self.bufs.len()
    }

    /// The window cursor: all shards have been advanced to at least here.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Telemetry collected so far.
    #[cfg(feature = "obs")]
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Advance every shard to `until`, honoring the configured thread count.
    /// With one shard (or one thread) this takes the sequential path; with
    /// several of both, windows fan across scoped worker threads. Both paths
    /// run byte-identical simulations.
    pub fn run<W>(&mut self, worlds: &mut [W], until: SimTime) -> Result<SimTime, ShardError>
    where
        W: ShardWorld<Msg = M> + Send,
        M: Send,
    {
        if self.threads > 1 && worlds.len() > 1 {
            self.run_par(worlds, until)
        } else {
            self.run_seq(worlds, until)
        }
    }

    /// The sequential path: same window protocol, shards advanced in index
    /// order on the calling thread. No `Send` bound — single-shard worlds
    /// can use this unconditionally.
    pub fn run_seq<W>(&mut self, worlds: &mut [W], until: SimTime) -> Result<SimTime, ShardError>
    where
        W: ShardWorld<Msg = M>,
    {
        self.check(worlds.len())?;
        let mut events: Vec<u64> = vec![0; worlds.len()];
        loop {
            let mut earliest = SimTime::MAX;
            for (i, w) in worlds.iter().enumerate() {
                earliest = earliest.min(w.next_time());
                if let Some(e) = self.bufs[i].pending.first() {
                    earliest = earliest.min(e.at);
                }
            }
            let Some(w_end) = self.next_window(earliest, until) else {
                break;
            };
            let w_start = self.now;
            for (i, w) in worlds.iter_mut().enumerate() {
                let buf = &mut self.bufs[i];
                buf.inbox.clear();
                let k = buf.pending.partition_point(|e| e.at < w_end);
                if k > 0 {
                    let due = buf.pending.drain(..k);
                    buf.inbox.extend(due);
                }
                events[i] = w.run_window(w_end, &mut buf.inbox, &mut buf.outbox);
            }
            self.exchange(w_end);
            self.note_window(w_start, w_end, &events);
            self.now = w_end;
        }
        self.now = self.now.max(until);
        Ok(self.now)
    }

    /// The parallel path: workers claim shards from an atomic counter and
    /// advance them window-by-window between two barriers; the coordinator
    /// alone performs delivery and exchange between rounds, so the merge is
    /// single-threaded and identical to the sequential path.
    fn run_par<W>(&mut self, worlds: &mut [W], until: SimTime) -> Result<SimTime, ShardError>
    where
        W: ShardWorld<Msg = M> + Send,
        M: Send,
    {
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
        use std::sync::{Barrier, Mutex};

        self.check(worlds.len())?;
        let shards = worlds.len();
        let workers = self.threads.min(shards);

        /// A shard checked out to the worker pool for one window round.
        struct Slot<'w, W, M> {
            world: &'w mut W,
            inbox: Vec<Envelope<M>>,
            outbox: Vec<Outgoing<M>>,
            events: u64,
        }

        // The slot mutexes and barriers below are *coordination* state,
        // touched a constant number of times per window round — they never
        // appear on the intra-shard hot path, which runs lock-free over the
        // shard's own scheduler.
        let slots: Vec<Mutex<Slot<W, M>>> = worlds
            .iter_mut()
            .enumerate()
            .map(|(i, world)| {
                // oasis-check: allow(thread-discipline) slot checkout mutex, uncontended between rounds
                Mutex::new(Slot {
                    world,
                    inbox: std::mem::take(&mut self.bufs[i].inbox),
                    outbox: std::mem::take(&mut self.bufs[i].outbox),
                    events: 0,
                })
            })
            .collect();
        // oasis-check: allow(thread-discipline) window-round rendezvous, two waits per window
        let round_start = Barrier::new(workers + 1);
        // oasis-check: allow(thread-discipline) window-round rendezvous, two waits per window
        let round_end = Barrier::new(workers + 1);
        // oasis-check: allow(thread-discipline) shard claim counter, same shape as SweepRunner
        let claim = AtomicUsize::new(0);
        // oasis-check: allow(thread-discipline) coordinator publishes each round's window end
        let w_end_ns = AtomicU64::new(0);
        // oasis-check: allow(thread-discipline) run-loop shutdown flag
        let stop = AtomicBool::new(false);

        let mut events: Vec<u64> = vec![0; shards];
        // oasis-check: allow(thread-discipline) vendored scoped-thread helper, as SweepRunner uses
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    round_start.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let w_end = SimTime::from_nanos(w_end_ns.load(Ordering::Acquire));
                    loop {
                        let i = claim.fetch_add(1, Ordering::Relaxed);
                        if i >= shards {
                            break;
                        }
                        let mut slot = slots[i].lock().unwrap();
                        let Slot {
                            world,
                            inbox,
                            outbox,
                            events,
                        } = &mut *slot;
                        *events = world.run_window(w_end, inbox, outbox);
                    }
                    round_end.wait();
                });
            }

            // Coordinator (this thread). Between barrier rounds the slot
            // mutexes are uncontended; locking them here is bookkeeping,
            // not synchronization.
            loop {
                let mut earliest = SimTime::MAX;
                for (i, slot) in slots.iter().enumerate() {
                    earliest = earliest.min(slot.lock().unwrap().world.next_time());
                    if let Some(e) = self.bufs[i].pending.first() {
                        earliest = earliest.min(e.at);
                    }
                }
                let Some(w_end) = self.next_window(earliest, until) else {
                    break;
                };
                let w_start = self.now;
                for (i, slot) in slots.iter().enumerate() {
                    let mut slot = slot.lock().unwrap();
                    slot.inbox.clear();
                    let pending = &mut self.bufs[i].pending;
                    let k = pending.partition_point(|e| e.at < w_end);
                    if k > 0 {
                        let due = pending.drain(..k);
                        slot.inbox.extend(due);
                    }
                }
                w_end_ns.store(w_end.as_nanos(), Ordering::Release);
                claim.store(0, Ordering::Release);
                round_start.wait();
                round_end.wait();
                // Pull outboxes into the runner's arenas, merge, then hand
                // the drained (capacity-retaining) buffers back.
                for (i, slot) in slots.iter().enumerate() {
                    let mut slot = slot.lock().unwrap();
                    events[i] = slot.events;
                    self.bufs[i].outbox = std::mem::take(&mut slot.outbox);
                }
                self.exchange(w_end);
                for (i, slot) in slots.iter().enumerate() {
                    slot.lock().unwrap().outbox = std::mem::take(&mut self.bufs[i].outbox);
                }
                self.note_window(w_start, w_end, &events);
                self.now = w_end;
            }
            stop.store(true, Ordering::Release);
            round_start.wait();
        })
        .expect("shard worker panicked");

        // Reclaim the arenas for the next run call.
        for (i, slot) in slots.into_iter().enumerate() {
            let slot = slot.into_inner().unwrap();
            self.bufs[i].inbox = slot.inbox;
            self.bufs[i].outbox = slot.outbox;
        }
        self.now = self.now.max(until);
        Ok(self.now)
    }

    fn check(&self, worlds: usize) -> Result<(), ShardError> {
        assert_eq!(worlds, self.bufs.len(), "shard count mismatch");
        if worlds > 1 && self.lookahead == SimDuration::ZERO {
            return Err(ShardError::ZeroLookahead { shards: worlds });
        }
        Ok(())
    }

    /// Compute the next window `[w_start, w_end)` given the earliest pending
    /// work across all shards, skipping idle gaps: the window opens at the
    /// earliest work, not at the cursor, so barrier rounds scale with *busy*
    /// windows rather than wall-to-wall lookahead quanta. Returns `None`
    /// when the run is complete.
    fn next_window(&mut self, earliest: SimTime, until: SimTime) -> Option<SimTime> {
        if self.now >= until {
            return None;
        }
        if earliest >= until {
            // Nothing due before the horizon: jump straight there.
            self.now = until;
            return None;
        }
        self.now = self.now.max(earliest);
        // A single shard has no cross-shard links: infinite lookahead, one
        // window to the horizon. This is what makes a pod run through the
        // sharded runner byte-identical to the legacy loop.
        if self.bufs.len() <= 1 {
            return Some(until);
        }
        Some((self.now + self.lookahead).min(until))
    }

    /// Barrier exchange: drain every outbox, stamp `(src, seq)`, and route
    /// into the destination's pending queue in `(at, src, seq)` order. Runs
    /// on the coordinating thread only — merge order is a pure function of
    /// shard contents, never of worker timing.
    fn exchange(&mut self, w_end: SimTime) {
        let shards = self.bufs.len();
        for src in 0..shards {
            if self.bufs[src].outbox.is_empty() {
                continue;
            }
            let mut outbox = std::mem::take(&mut self.bufs[src].outbox);
            let seq0 = self.seqs[src];
            self.seqs[src] += outbox.len() as u64;
            #[cfg(feature = "obs")]
            {
                self.stats.messages += outbox.len() as u64;
            }
            for (k, o) in outbox.drain(..).enumerate() {
                debug_assert!(
                    o.at >= w_end,
                    "conservative violation: msg for {:?} sent in window ending {:?}",
                    o.at,
                    w_end
                );
                self.bufs[o.dst].pending.push(Envelope {
                    at: o.at,
                    src: src as u32,
                    seq: seq0 + k as u64,
                    msg: o.msg,
                });
            }
            // Hand the drained (capacity-retaining) buffer back to the pool.
            self.bufs[src].outbox = outbox;
        }
        for buf in &mut self.bufs {
            // Unique (src, seq) pairs make the key a total order, so the
            // unstable sort is deterministic.
            buf.pending.sort_unstable_by_key(|e| (e.at, e.src, e.seq));
        }
    }

    #[cfg(feature = "obs")]
    fn note_window(&mut self, w_start: SimTime, w_end: SimTime, events: &[u64]) {
        self.stats.windows += 1;
        self.stats.window_ns.record((w_end - w_start).as_nanos());
        for (i, &e) in events.iter().enumerate() {
            self.stats.shard_events[i] += e;
            if e == 0 {
                self.stats.barrier_stalls += 1;
            }
        }
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn note_window(&mut self, _w_start: SimTime, _w_end: SimTime, _events: &[u64]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A minimal shard world: fires local events at fixed times, forwarding
    /// each one (and each received message, up to a hop budget) to a fixed
    /// destination shard after the link latency. Logs every delivery so
    /// tests can assert on merge order and determinism.
    struct TestShard {
        dst: usize,
        latency: SimDuration,
        hops: u64,
        local: VecDeque<SimTime>,
        log: Vec<(SimTime, u32, u64, u64)>,
        window_calls: u64,
        fired: u64,
    }

    impl TestShard {
        fn new(dst: usize, latency_ns: u64, hops: u64, local: &[u64]) -> Self {
            TestShard {
                dst,
                latency: SimDuration::from_nanos(latency_ns),
                hops,
                local: local.iter().map(|&t| SimTime::from_nanos(t)).collect(),
                log: Vec::new(),
                window_calls: 0,
                fired: 0,
            }
        }
    }

    impl ShardWorld for TestShard {
        type Msg = u64;

        fn next_time(&self) -> SimTime {
            self.local.front().copied().unwrap_or(SimTime::MAX)
        }

        fn run_window(
            &mut self,
            until: SimTime,
            inbox: &mut Vec<Envelope<u64>>,
            outbox: &mut Vec<Outgoing<u64>>,
        ) -> u64 {
            self.window_calls += 1;
            let mut n = 0;
            for e in inbox.drain(..) {
                assert!(e.at < until, "delivery past the window end");
                self.log.push((e.at, e.src, e.seq, e.msg));
                n += 1;
                if e.msg < self.hops {
                    outbox.push(Outgoing {
                        dst: self.dst,
                        at: e.at + self.latency,
                        msg: e.msg + 1,
                    });
                }
            }
            while self.local.front().is_some_and(|&t| t < until) {
                let t = self.local.pop_front().unwrap();
                n += 1;
                self.fired += 1;
                outbox.push(Outgoing {
                    dst: self.dst,
                    at: t + self.latency,
                    msg: 0,
                });
            }
            n
        }
    }

    /// A 3-shard ring with staggered local events and multi-hop forwarding.
    fn ring() -> Vec<TestShard> {
        vec![
            TestShard::new(1, 100, 5, &[0, 40, 40, 1_000]),
            TestShard::new(2, 100, 5, &[70]),
            TestShard::new(0, 100, 5, &[250, 251]),
        ]
    }

    fn run_ring(threads: usize) -> Vec<Vec<(SimTime, u32, u64, u64)>> {
        let mut worlds = ring();
        let mut runner = ShardedRunner::new(3, SimDuration::from_nanos(100), threads);
        runner
            .run(&mut worlds, SimTime::from_micros(10))
            .expect("ring run");
        worlds.into_iter().map(|w| w.log).collect()
    }

    #[test]
    fn byte_identical_at_any_thread_count() {
        let base = run_ring(1);
        assert!(base.iter().any(|l| !l.is_empty()), "ring exchanged nothing");
        for threads in [2, 3, 8] {
            assert_eq!(run_ring(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn stepped_run_matches_single_run() {
        // The Pod::run-in-a-loop pattern: many short horizons must land in
        // the same state as one long one.
        let one_shot = run_ring(1);
        let mut worlds = ring();
        let mut runner = ShardedRunner::new(3, SimDuration::from_nanos(100), 2);
        for step in 1..=100u64 {
            runner
                .run(&mut worlds, SimTime::from_nanos(step * 100))
                .expect("stepped run");
        }
        let stepped: Vec<_> = worlds.into_iter().map(|w| w.log).collect();
        assert_eq!(stepped, one_shot);
    }

    #[test]
    fn zero_lookahead_is_a_deterministic_error() {
        let mut worlds = ring();
        let mut runner = ShardedRunner::new(3, SimDuration::ZERO, 2);
        let err = runner
            .run(&mut worlds, SimTime::from_micros(1))
            .expect_err("zero lookahead must not run");
        assert_eq!(err, ShardError::ZeroLookahead { shards: 3 });
    }

    #[test]
    fn zero_lookahead_single_shard_is_fine() {
        // One shard has no cross-shard links, so zero lookahead is vacuous.
        // Its window spans the whole horizon, so (conservative) self-sends
        // must land past the horizon and deliver on the next run call.
        let mut worlds = vec![TestShard::new(0, 2_000, 0, &[10, 20])];
        let mut runner = ShardedRunner::new(1, SimDuration::ZERO, 4);
        runner
            .run(&mut worlds, SimTime::from_micros(1))
            .expect("single shard runs");
        assert_eq!(worlds[0].fired, 2);
        assert!(worlds[0].log.is_empty());
        runner
            .run(&mut worlds, SimTime::from_micros(4))
            .expect("second horizon");
        assert_eq!(worlds[0].log.len(), 2, "self-sends delivered next horizon");
    }

    #[test]
    fn boundary_events_merge_in_time_shard_seq_order() {
        // Shards 1 and 2 both deliver to shard 0 at exactly t=300ns (a
        // window boundary for lookahead=100): merge order must be
        // (time, src shard, seq) regardless of worker interleaving.
        for threads in [1, 4] {
            let mut worlds = vec![
                TestShard::new(0, 100, 0, &[]),
                TestShard::new(0, 100, 0, &[200, 200]),
                TestShard::new(0, 100, 0, &[200]),
            ];
            let mut runner = ShardedRunner::new(3, SimDuration::from_nanos(100), threads);
            runner
                .run(&mut worlds, SimTime::from_micros(1))
                .expect("boundary run");
            let at = SimTime::from_nanos(300);
            assert_eq!(
                worlds[0].log,
                vec![(at, 1, 0, 0), (at, 1, 1, 0), (at, 2, 0, 0)],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_shard_does_not_stall_the_barrier() {
        // Shard 1 never has local work; it must park at the barrier and let
        // the run finish, still receiving what is sent to it.
        let mut worlds = vec![
            TestShard::new(1, 100, 0, &[50]),
            TestShard::new(0, 100, 0, &[]),
        ];
        let mut runner = ShardedRunner::new(2, SimDuration::from_nanos(100), 2);
        let end = runner
            .run(&mut worlds, SimTime::from_micros(1))
            .expect("empty shard run");
        assert_eq!(end, SimTime::from_micros(1));
        assert_eq!(worlds[1].log, vec![(SimTime::from_nanos(150), 0, 0, 0)]);
    }

    #[test]
    fn idle_gaps_are_skipped_not_ground_through() {
        // Events at t=0 and t=1ms with 100ns lookahead: a naive runner would
        // grind ~10,000 windows; idle realignment needs a handful.
        let mut worlds = vec![
            TestShard::new(1, 100, 0, &[0, 1_000_000]),
            TestShard::new(0, 100, 0, &[]),
        ];
        let mut runner = ShardedRunner::new(2, SimDuration::from_nanos(100), 1);
        runner
            .run(&mut worlds, SimTime::from_millis(2))
            .expect("idle gap run");
        assert!(
            worlds[0].window_calls < 16,
            "expected idle skipping, got {} windows",
            worlds[0].window_calls
        );
        assert_eq!(worlds[1].log.len(), 2);
    }

    #[test]
    fn single_shard_runs_one_window_per_horizon() {
        let mut worlds = vec![TestShard::new(0, 5_000, 0, &[5, 15, 25])];
        let mut runner = ShardedRunner::new(1, SimDuration::from_nanos(10), 8);
        runner
            .run(&mut worlds, SimTime::from_micros(1))
            .expect("single shard");
        // All three local events batch into one full-horizon window.
        assert_eq!(worlds[0].window_calls, 1);
        assert_eq!(worlds[0].fired, 3);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn stats_count_windows_events_and_stalls() {
        let mut worlds = ring();
        let mut runner = ShardedRunner::new(3, SimDuration::from_nanos(100), 2);
        runner
            .run(&mut worlds, SimTime::from_micros(10))
            .expect("ring run");
        let stats = runner.stats().clone();
        assert!(stats.windows > 0);
        assert!(stats.messages > 0);
        let processed: u64 = worlds.iter().map(|w| w.log.len() as u64 + w.fired).sum();
        assert_eq!(stats.shard_events.iter().sum::<u64>(), processed);
        assert!(stats.window_ns.count() > 0);

        // Associative merge: stats from two half-runs fold into the same
        // totals as one full run.
        let mut a = ShardStats::default();
        a.merge(&stats);
        a.merge(&ShardStats::default());
        assert_eq!(a.windows, stats.windows);
        assert_eq!(a.shard_events, stats.shard_events);
        assert_eq!(a.messages, stats.messages);
    }
}
