//! The recording surface: counters, histograms, spans and timelines keyed
//! by `(static name, numeric tag)`.

use oasis_sim::detmap::DetMap;
use oasis_sim::time::SimTime;

use crate::hist::ObsHistogram;
use crate::snapshot::{CounterEntry, HistEntry, MetricsSnapshot, TimelineEntry, SCHEMA_VERSION};
use crate::timeline::{Timeline, DEFAULT_BIN_NS};

/// Metric key: a registered `&'static str` name (see each crate's
/// `metrics.rs`) plus a small numeric tag — host id, port, actor index, or
/// 0 when the metric is pod-global. Never a formatted string.
pub type MetricKey = (&'static str, u32);

/// An open sim-time span; closed by [`Span::end`], which records the
/// elapsed sim time into a histogram.
#[derive(Clone, Copy, Debug)]
#[must_use = "a span records nothing until end() is called"]
pub struct Span {
    start: SimTime,
}

impl Span {
    /// Open a span at sim time `start`.
    pub fn begin(start: SimTime) -> Span {
        Span { start }
    }

    /// Close the span at `end`, recording the elapsed nanoseconds into the
    /// named histogram.
    pub fn end(self, sink: &mut MetricSink, name: &'static str, tag: u32, end: SimTime) {
        let dt = end.as_nanos().saturating_sub(self.start.as_nanos());
        sink.record(name, tag, dt);
    }
}

/// Deterministic metric accumulator.
///
/// Recording order does not matter for export: [`MetricSink::snapshot`]
/// sorts by `(name, tag)`. The backing maps are `DetMap` (fixed-seed
/// hasher) so even internal iteration — used nowhere for output, but easy
/// to reach for in a debugger — cannot smuggle nondeterminism in.
#[derive(Default)]
pub struct MetricSink {
    counters: DetMap<MetricKey, u64>,
    hists: DetMap<MetricKey, ObsHistogram>,
    timelines: DetMap<MetricKey, Timeline>,
    timeline_bin_ns: Option<u64>,
}

impl MetricSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a sink whose timelines use `bin_ns`-wide bins instead of
    /// [`DEFAULT_BIN_NS`].
    pub fn with_timeline_bin(bin_ns: u64) -> Self {
        MetricSink {
            timeline_bin_ns: Some(bin_ns.max(1)),
            ..Self::default()
        }
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&mut self, name: &'static str, tag: u32, delta: u64) {
        if delta != 0 {
            *self.counters.entry((name, tag)).or_insert(0) += delta;
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str, tag: u32) {
        *self.counters.entry((name, tag)).or_insert(0) += 1;
    }

    /// Overwrite a counter with an absolute value (for exporting an
    /// existing tally at snapshot time; last write wins).
    pub fn set(&mut self, name: &'static str, tag: u32, value: u64) {
        self.counters.insert((name, tag), value);
    }

    /// Record one value into a histogram.
    #[inline]
    pub fn record(&mut self, name: &'static str, tag: u32, value: u64) {
        self.hists.entry((name, tag)).or_default().record(value);
    }

    /// Record a value `n` times into a histogram.
    pub fn record_n(&mut self, name: &'static str, tag: u32, value: u64, n: u64) {
        self.hists
            .entry((name, tag))
            .or_default()
            .record_n(value, n);
    }

    /// Open a sim-time span starting now; close with [`Span::end`].
    pub fn span(&self, start: SimTime) -> Span {
        Span::begin(start)
    }

    /// Accumulate `amount` into the named timeline's bin at sim time `at`.
    pub fn timeline_add(&mut self, name: &'static str, tag: u32, at: SimTime, amount: u64) {
        let bin = self.timeline_bin_ns.unwrap_or(DEFAULT_BIN_NS);
        self.timelines
            .entry((name, tag))
            .or_insert_with(|| Timeline::new(bin))
            .add(at, amount);
    }

    /// Current counter value (0 if never written).
    pub fn counter(&self, name: &'static str, tag: u32) -> u64 {
        self.counters.get(&(name, tag)).copied().unwrap_or(0)
    }

    /// Histogram by key, if recorded.
    pub fn hist(&self, name: &'static str, tag: u32) -> Option<&ObsHistogram> {
        self.hists.get(&(name, tag))
    }

    /// Timeline by key, if recorded.
    pub fn timeline(&self, name: &'static str, tag: u32) -> Option<&Timeline> {
        self.timelines.get(&(name, tag))
    }

    /// Fold a whole histogram into the sink under the given key (used by
    /// engines that accumulate a private histogram and export it wholesale
    /// from their `on_metrics` hook).
    pub fn merge_hist(&mut self, name: &'static str, tag: u32, h: &ObsHistogram) {
        if h.is_empty() {
            return;
        }
        self.hists.entry((name, tag)).or_default().merge(h);
    }

    /// Fold a whole timeline into the sink under the given key (used by
    /// feature-gated instrumentation that owns its own `Timeline`).
    pub fn merge_timeline(&mut self, name: &'static str, tag: u32, tl: &Timeline) {
        self.timelines
            .entry((name, tag))
            .or_insert_with(|| Timeline::new(tl.bin_ns()))
            .merge(tl);
    }

    /// Export a canonical snapshot: entries sorted by `(name, tag)`,
    /// histograms in sparse bucket form.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterEntry> = self
            .counters
            .iter()
            .map(|(&(name, tag), &value)| CounterEntry { name, tag, value })
            .collect();
        counters.sort_unstable_by(|a, b| (a.name, a.tag).cmp(&(b.name, b.tag)));

        let mut hists: Vec<HistEntry> = self
            .hists
            .iter()
            .filter(|(_, h)| !h.is_empty())
            .map(|(&(name, tag), h)| HistEntry {
                name,
                tag,
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets: h.nonzero_buckets(),
            })
            .collect();
        hists.sort_unstable_by(|a, b| (a.name, a.tag).cmp(&(b.name, b.tag)));

        let mut timelines: Vec<TimelineEntry> = self
            .timelines
            .iter()
            .map(|(&(name, tag), tl)| TimelineEntry {
                name,
                tag,
                bin_ns: tl.bin_ns(),
                bins: tl.bins().to_vec(),
            })
            .collect();
        timelines.sort_unstable_by(|a, b| (a.name, a.tag).cmp(&(b.name, b.tag)));

        MetricsSnapshot {
            schema: SCHEMA_VERSION,
            counters,
            hists,
            timelines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_sim::time::SimDuration;

    #[test]
    fn counters_accumulate() {
        let mut s = MetricSink::new();
        s.add("test.a", 0, 3);
        s.incr("test.a", 0);
        s.add("test.a", 1, 10);
        assert_eq!(s.counter("test.a", 0), 4);
        assert_eq!(s.counter("test.a", 1), 10);
        assert_eq!(s.counter("test.missing", 0), 0);
    }

    #[test]
    fn spans_record_elapsed_sim_time() {
        let mut s = MetricSink::new();
        let t0 = SimTime::from_nanos(100);
        let sp = s.span(t0);
        sp.end(&mut s, "test.span_ns", 7, t0 + SimDuration::from_nanos(250));
        let h = s.hist("test.span_ns", 7).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 250);
    }

    #[test]
    fn snapshot_sorted_regardless_of_insertion_order() {
        let mut a = MetricSink::new();
        a.add("test.z", 0, 1);
        a.add("test.a", 2, 1);
        a.add("test.a", 1, 1);
        let snap = a.snapshot();
        let keys: Vec<_> = snap.counters.iter().map(|c| (c.name, c.tag)).collect();
        assert_eq!(keys, vec![("test.a", 1), ("test.a", 2), ("test.z", 0)]);
    }

    #[test]
    fn set_overwrites() {
        let mut s = MetricSink::new();
        s.set("test.g", 0, 5);
        s.set("test.g", 0, 3);
        assert_eq!(s.counter("test.g", 0), 3);
    }
}
