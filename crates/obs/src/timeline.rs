//! Binned sim-time accumulation series (utilization timelines).
//!
//! A `Timeline` answers "how many bytes crossed this link between t and
//! t+bin?" with bounded memory: amounts are accumulated into fixed-width
//! sim-time bins, stored sparsely. If a run outlives `MAX_BINS` bins the
//! bin width doubles and existing bins are re-binned — a deterministic
//! function of the recorded stream, so identical runs still export
//! identical timelines.

use oasis_sim::time::SimTime;

/// Default bin width: 10 ms of sim time. Coarse enough that an hour-long
/// sim stays small, fine enough to see a failover dip.
pub const DEFAULT_BIN_NS: u64 = 10_000_000;

/// Sparse cap before the bin width doubles.
pub const MAX_BINS: usize = 4096;

/// Sparse binned accumulator over sim time.
#[derive(Clone)]
pub struct Timeline {
    bin_ns: u64,
    /// `(bin index, accumulated amount)` in ascending index order.
    bins: Vec<(u32, u64)>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new(DEFAULT_BIN_NS)
    }
}

impl Timeline {
    /// Create an empty timeline with the given bin width in nanoseconds
    /// (clamped to >= 1).
    pub fn new(bin_ns: u64) -> Self {
        Timeline {
            bin_ns: bin_ns.max(1),
            bins: Vec::new(),
        }
    }

    /// Current bin width in nanoseconds.
    pub fn bin_ns(&self) -> u64 {
        self.bin_ns
    }

    /// Accumulate `amount` into the bin covering sim time `at`.
    pub fn add(&mut self, at: SimTime, amount: u64) {
        if amount == 0 {
            return;
        }
        let idx = self.index_for(at.as_nanos());
        // Recording sites see monotone sim time, so the common case is the
        // last bin; fall back to search for merge/out-of-order use.
        match self.bins.last_mut() {
            Some(last) if last.0 == idx => last.1 += amount,
            Some(last) if last.0 < idx => self.bins.push((idx, amount)),
            _ => match self.bins.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.bins[pos].1 += amount,
                Err(pos) => self.bins.insert(pos, (idx, amount)),
            },
        }
        if self.bins.len() > MAX_BINS {
            self.coarsen(self.bin_ns * 2);
        }
    }

    #[inline]
    fn index_for(&self, nanos: u64) -> u32 {
        // A u64 nanosecond clock over >=1ns bins can exceed u32 bins only
        // after ~49 days of 10ms bins; saturate rather than wrap.
        (nanos / self.bin_ns).min(u32::MAX as u64) as u32
    }

    /// Widen bins to `new_bin_ns` (must be a multiple of the current width;
    /// anything else re-bins by absolute time, still deterministic).
    pub fn coarsen(&mut self, new_bin_ns: u64) {
        let new_bin_ns = new_bin_ns.max(self.bin_ns);
        if new_bin_ns == self.bin_ns {
            return;
        }
        let old = std::mem::take(&mut self.bins);
        let old_bin = self.bin_ns;
        self.bin_ns = new_bin_ns;
        for (idx, amount) in old {
            let t = idx as u64 * old_bin;
            let new_idx = self.index_for(t);
            match self.bins.last_mut() {
                Some(last) if last.0 == new_idx => last.1 += amount,
                _ => self.bins.push((new_idx, amount)),
            }
        }
    }

    /// Total accumulated amount across all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|&(_, v)| v).sum()
    }

    /// Sparse `(bin index, amount)` view in ascending index order.
    pub fn bins(&self) -> &[(u32, u64)] {
        &self.bins
    }

    /// Merge another timeline into this one. Differing bin widths coarsen
    /// both sides to the wider one first.
    pub fn merge(&mut self, other: &Timeline) {
        let mut other = other.clone();
        if other.bin_ns > self.bin_ns {
            self.coarsen(other.bin_ns);
        } else if self.bin_ns > other.bin_ns {
            other.coarsen(self.bin_ns);
        }
        for &(idx, amount) in &other.bins {
            match self.bins.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.bins[pos].1 += amount,
                Err(pos) => self.bins.insert(pos, (idx, amount)),
            }
        }
    }

    /// Rebuild from a sparse export (used by snapshot merge).
    pub fn from_bins(bin_ns: u64, bins: Vec<(u32, u64)>) -> Self {
        let mut tl = Timeline::new(bin_ns);
        tl.bins = bins;
        tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_sim::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn accumulates_into_bins() {
        let mut tl = Timeline::new(DEFAULT_BIN_NS);
        tl.add(t(1), 10);
        tl.add(t(9), 5); // same 10ms bin
        tl.add(t(25), 7); // bin 2
        assert_eq!(tl.bins(), &[(0, 15), (2, 7)]);
        assert_eq!(tl.total(), 22);
    }

    #[test]
    fn out_of_order_adds_merge() {
        let mut tl = Timeline::new(DEFAULT_BIN_NS);
        tl.add(t(25), 7);
        tl.add(t(1), 10);
        tl.add(t(25), 1);
        assert_eq!(tl.bins(), &[(0, 10), (2, 8)]);
    }

    #[test]
    fn coarsen_preserves_total() {
        let mut tl = Timeline::new(1_000_000); // 1ms bins
        for ms in 0..100 {
            tl.add(t(ms), ms);
        }
        let before = tl.total();
        tl.coarsen(10_000_000);
        assert_eq!(tl.total(), before);
        assert_eq!(tl.bin_ns(), 10_000_000);
        assert_eq!(tl.bins().len(), 10);
    }

    #[test]
    fn cap_triggers_doubling() {
        let mut tl = Timeline::new(1);
        for i in 0..(MAX_BINS as u64 + 10) {
            tl.add(SimTime::from_nanos(i * 2), 1);
        }
        assert!(tl.bin_ns() > 1, "bin width doubled under pressure");
        assert_eq!(tl.total(), MAX_BINS as u64 + 10);
        assert!(tl.bins().len() <= MAX_BINS + 1);
    }

    #[test]
    fn merge_mismatched_widths() {
        let mut a = Timeline::new(1_000_000);
        a.add(t(3), 5);
        let mut b = Timeline::new(10_000_000);
        b.add(t(3), 7);
        a.merge(&b);
        assert_eq!(a.bin_ns(), 10_000_000);
        assert_eq!(a.total(), 12);
        assert_eq!(a.bins(), &[(0, 12)]);
    }
}
