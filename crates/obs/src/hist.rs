//! Log-linear histogram with introspectable buckets.
//!
//! Same geometry as `oasis_sim::hist::Histogram` (each power-of-two
//! magnitude split into 64 linear sub-buckets, relative error < 1.6 %), but
//! built for export: bucket indices are stable `u32`s, non-zero buckets can
//! be enumerated for snapshots, and a histogram can be reconstituted from a
//! sparse bucket list so snapshot merging is exact — merging two snapshots
//! gives byte-identical results to recording the union of their values.

pub const SUB_BITS: u32 = 6;
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS; // 64 linear sub-buckets per magnitude
pub const ROWS: u32 = 64 - SUB_BITS + 1; // rows 0..=58 cover the full u64 range
pub const BUCKETS: usize = (ROWS as usize) * SUB_BUCKETS as usize;

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `index_of(a) <= index_of(b)`.
#[inline]
pub fn index_of(value: u64) -> u32 {
    if value < SUB_BUCKETS {
        return value as u32;
    }
    let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS here
    let row = magnitude - SUB_BITS + 1;
    // value in [2^m, 2^(m+1)) shifted right by row lands in
    // [SUB_BUCKETS/2, SUB_BUCKETS): the top half of the row.
    let sub = (value >> row) as u32 & (SUB_BUCKETS as u32 - 1);
    row * SUB_BUCKETS as u32 + sub
}

/// Smallest value that lands in bucket `index`.
pub fn bucket_low(index: u32) -> u64 {
    let row = index / SUB_BUCKETS as u32;
    let sub = (index % SUB_BUCKETS as u32) as u64;
    if row == 0 {
        sub
    } else {
        sub << row
    }
}

/// Largest value that lands in bucket `index`.
pub fn bucket_high(index: u32) -> u64 {
    let row = index / SUB_BUCKETS as u32;
    if row == 0 {
        bucket_low(index)
    } else {
        bucket_low(index) + ((1u64 << row) - 1)
    }
}

/// Representative (upper-edge midpoint) value for a bucket index — the
/// value quantile queries report. Identical to the substrate histogram's
/// `value_of` so figures that moved from `oasis_sim::hist::Histogram` to
/// snapshot-sourced numbers print the same bytes.
pub fn bucket_value(index: u32) -> u64 {
    let row = index / SUB_BUCKETS as u32;
    let sub = (index % SUB_BUCKETS as u32) as u64;
    if row == 0 {
        return sub;
    }
    let shift = row; // row = magnitude - SUB_BITS + 1
    let base = sub << shift;
    // midpoint of the bucket's covered range
    base + (1u64 << (shift - 1))
}

/// Dense-counted, sparsely-exported histogram of `u64` values (nanoseconds
/// or bytes throughout the workspace).
#[derive(Clone)]
pub struct ObsHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for ObsHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        ObsHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record a value `n` times.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(value) as usize] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * n as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Value at quantile `q` in `[0, 1]`, clamped to recorded min/max.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(
            q,
            self.total,
            self.min(),
            self.max,
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, &c)| (i as u32, c)),
        )
    }

    /// Shorthand for percentiles: `percentile(99.9)`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.value_at_quantile(p / 100.0)
    }

    /// Import a substrate histogram. The bucket geometry is identical by
    /// construction (`matches_substrate_histogram_quantiles` guards this),
    /// so the copy is lossless: counts, total, min, max, and sum all carry
    /// over exactly.
    pub fn from_sim(h: &oasis_sim::hist::Histogram) -> Self {
        let mut out = ObsHistogram::new();
        for (idx, c) in h.nonzero_buckets() {
            out.counts[idx as usize] = c;
        }
        out.total = h.count();
        out.min = if h.is_empty() { u64::MAX } else { h.min() };
        out.max = h.max();
        out.sum = h.sum();
        out
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &ObsHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Non-zero `(bucket index, count)` pairs in ascending index order —
    /// the sparse form snapshots carry.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }
}

/// Quantile evaluation over a sorted sparse bucket iterator — shared by the
/// live histogram and by [`crate::snapshot::HistEntry`] so a number read
/// from a snapshot equals the number the live histogram would report.
pub fn quantile_from_buckets(
    q: f64,
    total: u64,
    min: u64,
    max: u64,
    buckets: impl Iterator<Item = (u32, u64)>,
) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (idx, c) in buckets {
        seen += c;
        if seen >= rank {
            return bucket_value(idx).clamp(min, max);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // The first 64 values map 1:1.
        for v in 0..SUB_BUCKETS {
            assert_eq!(index_of(v) as u64, v);
            assert_eq!(bucket_low(v as u32), v);
            assert_eq!(bucket_high(v as u32), v);
        }
        // Every power of two >= 64 starts a fresh half-row: its bucket's low
        // edge is the value itself, and the value one below lands in a
        // strictly lower bucket whose high edge abuts it exactly.
        for mag in SUB_BITS..63 {
            let v = 1u64 << mag;
            let idx = index_of(v);
            assert_eq!(bucket_low(idx), v, "low edge of 2^{mag}");
            let below = index_of(v - 1);
            assert!(below < idx, "2^{mag}-1 in a lower bucket");
            assert_eq!(bucket_high(below), v - 1, "high edge abuts 2^{mag}");
        }
    }

    #[test]
    fn live_buckets_tile_u64_without_gaps() {
        // Values >= 64 land only in the top half of each row (sub 32..=63);
        // walking those *live* buckets in order must tile the value space
        // with no gap and no overlap.
        let live: Vec<u32> = (0..SUB_BUCKETS as u32)
            .chain((1..12).flat_map(|row| {
                (SUB_BUCKETS as u32 / 2..SUB_BUCKETS as u32)
                    .map(move |sub| row * SUB_BUCKETS as u32 + sub)
            }))
            .collect();
        for w in live.windows(2) {
            assert_eq!(
                bucket_high(w[0]) + 1,
                bucket_low(w[1]),
                "gap/overlap between buckets {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn index_is_monotone_and_self_consistent() {
        let mut vals = vec![0u64, 1, 63, 64, 65, 127, 128, 1000, 4096, 1 << 20];
        for e in 6..40 {
            vals.push((1u64 << e) - 1);
            vals.push(1u64 << e);
            vals.push((1u64 << e) + 1);
        }
        vals.sort_unstable();
        for w in vals.windows(2) {
            assert!(index_of(w[0]) <= index_of(w[1]));
        }
        for &v in &vals {
            let idx = index_of(v);
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx), "v={v}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        for exp in 0..50u32 {
            let v = 3u64 << exp;
            let mut h = ObsHistogram::new();
            h.record(v);
            let got = h.percentile(50.0);
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0, "v={v} got={got} err={err}");
        }
    }

    #[test]
    fn matches_substrate_histogram_quantiles() {
        // The whole point of sharing geometry: any value stream gives the
        // same quantiles as oasis_sim::hist::Histogram.
        let mut ours = ObsHistogram::new();
        let mut theirs = oasis_sim::hist::Histogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            // xorshift; deterministic value stream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 5_000_000;
            ours.record(v);
            theirs.record(v);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(ours.percentile(p), theirs.percentile(p), "p{p}");
        }
        assert_eq!(ours.min(), theirs.min());
        assert_eq!(ours.max(), theirs.max());
    }

    #[test]
    fn sparse_export_roundtrip() {
        let mut h = ObsHistogram::new();
        for v in [1u64, 1, 70, 5000, 123456, 123456, 123457] {
            h.record(v);
        }
        let sparse = h.nonzero_buckets();
        assert!(sparse.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u64 = sparse.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
        let q = quantile_from_buckets(0.5, total, h.min(), h.max(), sparse.into_iter());
        assert_eq!(q, h.value_at_quantile(0.5));
    }
}
