//! Canonical, schema-versioned metric exports.
//!
//! A [`MetricsSnapshot`] is the hand-off format between the simulator and
//! everything downstream: the `fig*` binaries print their headline numbers
//! from it, `obs_report` renders it as a table, the bench-regression CI job
//! uploads it as an artifact. Two properties carry all the weight:
//!
//! 1. **Canonical**: entries sorted by `(name, tag)`, integer-only JSON,
//!    no whitespace variation — identical runs export identical bytes.
//! 2. **Associative merge**: histograms travel as sparse bucket lists and
//!    timelines as sparse bins, so `merge(merge(a, b), c)` equals
//!    `merge(a, merge(b, c))` byte-for-byte.

use crate::hist::quantile_from_buckets;
use crate::timeline::Timeline;

/// Bumped whenever the JSON layout changes shape.
pub const SCHEMA_VERSION: u32 = 1;

/// One counter in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterEntry {
    pub name: &'static str,
    pub tag: u32,
    pub value: u64,
}

/// One histogram in a snapshot, in sparse bucket form (ascending index).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistEntry {
    pub name: &'static str,
    pub tag: u32,
    pub count: u64,
    pub sum: u128,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistEntry {
    /// Value at quantile `q` in `[0, 1]` — same answer the live
    /// [`crate::ObsHistogram`] would give.
    // oasis-check: allow(float-determinism) read-side presentation over a frozen snapshot; nothing flows back into state
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(
            q,
            self.count,
            self.min,
            self.max,
            self.buckets.iter().copied(),
        )
    }

    /// Percentile shorthand: `percentile(99.0)`.
    // oasis-check: allow(float-determinism) read-side presentation over a frozen snapshot; nothing flows back into state
    pub fn percentile(&self, p: f64) -> u64 {
        // oasis-check: allow(float-determinism) same presentation path; the divisor only rescales the argument
        self.value_at_quantile(p / 100.0)
    }

    /// Arithmetic mean (0 if empty), rounded down to whole units.
    pub fn mean_floor(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }
}

/// One timeline in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEntry {
    pub name: &'static str,
    pub tag: u32,
    pub bin_ns: u64,
    pub bins: Vec<(u32, u64)>,
}

/// A full metric export. Construct via [`crate::MetricSink::snapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub schema: u32,
    pub counters: Vec<CounterEntry>,
    pub hists: Vec<HistEntry>,
    pub timelines: Vec<TimelineEntry>,
}

impl MetricsSnapshot {
    /// Counter value by key (0 if absent).
    pub fn counter(&self, name: &str, tag: u32) -> u64 {
        self.counters
            .binary_search_by(|c| (c.name, c.tag).cmp(&(name, tag)))
            .map(|i| self.counters[i].value)
            .unwrap_or(0)
    }

    /// Sum of a counter across all tags.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// All `(tag, value)` pairs for a counter name, ascending tag.
    pub fn counter_tags(&self, name: &str) -> Vec<(u32, u64)> {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| (c.tag, c.value))
            .collect()
    }

    /// Histogram entry by key.
    pub fn hist(&self, name: &str, tag: u32) -> Option<&HistEntry> {
        self.hists
            .binary_search_by(|h| (h.name, h.tag).cmp(&(name, tag)))
            .ok()
            .map(|i| &self.hists[i])
    }

    /// Timeline entry by key.
    pub fn timeline(&self, name: &str, tag: u32) -> Option<&TimelineEntry> {
        self.timelines
            .binary_search_by(|t| (t.name, t.tag).cmp(&(name, tag)))
            .ok()
            .map(|i| &self.timelines[i])
    }

    /// Merge `other` into `self`. Counters add, histograms merge
    /// bucket-wise, timelines re-bin to the wider width. Associative and
    /// commutative up to the canonical sort, which both inputs carry.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self
                .counters
                .binary_search_by(|x| (x.name, x.tag).cmp(&(c.name, c.tag)))
            {
                Ok(i) => self.counters[i].value += c.value,
                Err(i) => self.counters.insert(i, c.clone()),
            }
        }
        for h in &other.hists {
            match self
                .hists
                .binary_search_by(|x| (x.name, x.tag).cmp(&(h.name, h.tag)))
            {
                Ok(i) => merge_hist_entry(&mut self.hists[i], h),
                Err(i) => self.hists.insert(i, h.clone()),
            }
        }
        for t in &other.timelines {
            match self
                .timelines
                .binary_search_by(|x| (x.name, x.tag).cmp(&(t.name, t.tag)))
            {
                Ok(i) => {
                    let mut merged = Timeline::from_bins(
                        self.timelines[i].bin_ns,
                        std::mem::take(&mut self.timelines[i].bins),
                    );
                    merged.merge(&Timeline::from_bins(t.bin_ns, t.bins.clone()));
                    self.timelines[i].bin_ns = merged.bin_ns();
                    self.timelines[i].bins = merged.bins().to_vec();
                }
                Err(i) => self.timelines.insert(i, t.clone()),
            }
        }
    }

    /// Render canonical JSON: one line, integer-only, keys in fixed order,
    /// entries pre-sorted by the snapshot contract.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":");
        out.push_str(&self.schema.to_string());
        out.push_str(",\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"tag\":{},\"value\":{}}}",
                c.name, c.tag, c.value
            ));
        }
        out.push_str("],\"hists\":[");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"tag\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.name, h.tag, h.count, h.sum, h.min, h.max
            ));
            for (j, (idx, cnt)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{cnt}]"));
            }
            out.push_str("]}");
        }
        out.push_str("],\"timelines\":[");
        for (i, t) in self.timelines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"tag\":{},\"bin_ns\":{},\"bins\":[",
                t.name, t.tag, t.bin_ns
            ));
            for (j, (idx, amt)) in t.bins.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{amt}]"));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn merge_hist_entry(into: &mut HistEntry, from: &HistEntry) {
    let mut merged: Vec<(u32, u64)> = Vec::with_capacity(into.buckets.len() + from.buckets.len());
    let (mut a, mut b) = (
        into.buckets.iter().peekable(),
        from.buckets.iter().peekable(),
    );
    while let (Some(&&(ia, ca)), Some(&&(ib, cb))) = (a.peek(), b.peek()) {
        match ia.cmp(&ib) {
            std::cmp::Ordering::Less => {
                merged.push((ia, ca));
                a.next();
            }
            std::cmp::Ordering::Greater => {
                merged.push((ib, cb));
                b.next();
            }
            std::cmp::Ordering::Equal => {
                merged.push((ia, ca + cb));
                a.next();
                b.next();
            }
        }
    }
    merged.extend(a.copied());
    merged.extend(b.copied());
    into.buckets = merged;
    into.count += from.count;
    into.sum += from.sum;
    into.min = if into.count == 0 {
        0
    } else {
        into.min.min(from.min)
    };
    into.max = into.max.max(from.max);
}

#[cfg(test)]
mod tests {
    use crate::sink::MetricSink;
    use oasis_sim::time::SimTime;

    fn sink_with(values: &[(u64, u64)]) -> MetricSink {
        // (counter delta, hist value) pairs
        let mut s = MetricSink::new();
        for &(c, v) in values {
            s.add("test.ops", 0, c);
            s.record("test.lat_ns", 0, v);
            s.timeline_add("test.bytes", 1, SimTime::from_nanos(v), c);
        }
        s
    }

    #[test]
    fn json_is_stable_and_integer_only() {
        let snap = sink_with(&[(1, 100), (2, 200_000)]).snapshot();
        let j = snap.to_json();
        assert!(j.starts_with("{\"schema\":1,"));
        // Integer-only: no digit.digit float literal anywhere (metric
        // names legitimately contain dots).
        let bytes = j.as_bytes();
        let has_float = bytes
            .windows(3)
            .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit());
        assert!(!has_float, "integer-only JSON: {j}");
        assert_eq!(j, sink_with(&[(1, 100), (2, 200_000)]).snapshot().to_json());
    }

    #[test]
    fn merge_is_associative() {
        let a = sink_with(&[(1, 50), (2, 5000)]).snapshot();
        let b = sink_with(&[(3, 70), (1, 800_000)]).snapshot();
        let c = sink_with(&[(10, 7), (1, 63)]).snapshot();

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c.to_json(), a_bc.to_json());
    }

    #[test]
    fn merge_equals_union_recording() {
        // Recording x then y in one sink == snapshotting separately and
        // merging.
        let xs: &[(u64, u64)] = &[(1, 10), (4, 99), (2, 1_000_000)];
        let ys: &[(u64, u64)] = &[(7, 10), (1, 12345)];
        let mut both = MetricSink::new();
        for &(c, v) in xs.iter().chain(ys) {
            both.add("test.ops", 0, c);
            both.record("test.lat_ns", 0, v);
            both.timeline_add("test.bytes", 1, SimTime::from_nanos(v), c);
        }
        let mut merged = sink_with(xs).snapshot();
        merged.merge(&sink_with(ys).snapshot());
        assert_eq!(merged.to_json(), both.snapshot().to_json());
    }

    #[test]
    fn lookup_helpers() {
        let snap = sink_with(&[(5, 100)]).snapshot();
        assert_eq!(snap.counter("test.ops", 0), 5);
        assert_eq!(snap.counter("test.ops", 9), 0);
        assert_eq!(snap.counter_sum("test.ops"), 5);
        let h = snap.hist("test.lat_ns", 0).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.percentile(50.0), 100);
        assert!(snap.timeline("test.bytes", 1).is_some());
        assert!(snap.hist("test.lat_ns", 3).is_none());
    }

    #[test]
    fn snapshot_quantile_matches_live() {
        let mut s = MetricSink::new();
        for v in [10u64, 200, 3000, 40_000, 500_000, 500_000] {
            s.record("test.lat_ns", 2, v);
        }
        let live = s.hist("test.lat_ns", 2).unwrap();
        let snap = s.snapshot();
        let entry = snap.hist("test.lat_ns", 2).unwrap();
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(entry.percentile(p), live.percentile(p), "p{p}");
        }
        assert_eq!(
            entry.mean_floor() as u128,
            live.sum() / live.count() as u128
        );
    }
}
