//! Deterministic observability substrate for the Oasis simulator.
//!
//! Every headline number in the paper — stranding ratios (Fig. 2), channel
//! latency distributions (Fig. 6), failover timelines (Fig. 13) — is a
//! *telemetry* claim. This crate gives the whole workspace one way to make
//! such claims: counters, HDR-style sim-time histograms, scoped spans and
//! binned utilization timelines, all keyed by `&'static str` metric names
//! registered in a per-crate `metrics.rs` (enforced by the `metric-name`
//! rule in `oasis-check`) and exported as a canonical, schema-versioned
//! [`MetricsSnapshot`].
//!
//! Determinism rules (these are invariants, not aspirations):
//!
//! - Metric keys are `(&'static str, u32)` pairs — a registered name plus a
//!   small numeric tag (host id, port, actor index). No formatted strings,
//!   no floats in keys.
//! - All recorded quantities are integers (nanoseconds, bytes, counts).
//!   Quantile *evaluation* may use floats; stored state never does.
//! - Snapshots sort entries by `(name, tag)` and render integer-only JSON,
//!   so two identical runs produce byte-identical exports and
//!   [`MetricsSnapshot::merge`] is associative bucket-by-bucket.
//! - The sink allocates nothing per record beyond hash-map growth; recording
//!   is cheap enough for measurement paths that are compiled in
//!   unconditionally. Ambient hot-loop instrumentation (per-dispatch
//!   scheduler stats, per-line pool timelines) stays behind the `obs`
//!   cargo feature in the crates that own those loops, mirroring the
//!   `sanitize` pattern.

pub mod hist;
pub mod sink;
pub mod snapshot;
pub mod timeline;

pub use hist::ObsHistogram;
pub use sink::{MetricSink, Span};
pub use snapshot::{CounterEntry, HistEntry, MetricsSnapshot, TimelineEntry, SCHEMA_VERSION};
pub use timeline::Timeline;
