//! The SSD device model.
//!
//! Commands are submitted to a bounded submission queue; the device executes
//! them against in-memory namespaces, DMA-ing data directly between flash
//! and the buffer in CXL pool memory (or host DRAM), and posts completions
//! to a completion queue the backend driver polls. Latency follows Table 1's
//! datacenter-SSD numbers (≈ 100 µs random read, 5 GB/s, 0.5 MOp/s), with
//! internal channel parallelism so queue depth buys throughput the way it
//! does on real drives.

use std::collections::VecDeque;

use oasis_cxl::dma::{DmaMemory, MemRef};
use oasis_sim::time::{SimDuration, SimTime};

use crate::command::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus};
use crate::BLOCK_SIZE;

/// SSD timing and shape configuration.
#[derive(Clone, Debug)]
pub struct SsdConfig {
    /// Blocks per namespace.
    pub blocks_per_ns: u64,
    /// Number of namespaces.
    pub namespaces: u32,
    /// Base read latency (flash array access).
    pub read_latency_ns: u64,
    /// Base write latency (to the write cache).
    pub write_latency_ns: u64,
    /// Sustained bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Internal channel parallelism (concurrent commands).
    pub channels: usize,
    /// Submission queue depth.
    pub sq_depth: usize,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            blocks_per_ns: 4096, // 16 MiB per namespace in simulation
            namespaces: 1,
            read_latency_ns: 85_000,
            write_latency_ns: 15_000,
            bandwidth: 5e9,
            channels: 8,
            sq_depth: 256,
        }
    }
}

/// Device counters.
#[derive(Clone, Debug, Default)]
pub struct SsdStats {
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Flushes completed.
    pub flushes: u64,
    /// Bytes read from media.
    pub bytes_read: u64,
    /// Bytes written to media.
    pub bytes_written: u64,
    /// Commands failed (any status other than success).
    pub errors: u64,
    /// Commands rejected because the submission queue was full.
    pub sq_rejected: u64,
    /// Commands silently swallowed by an injected timeout window.
    pub swallowed: u64,
    /// Reads completed with an injected media error.
    pub media_errors: u64,
}

struct InFlight {
    completion: NvmeCompletion,
    done_at: SimTime,
}

/// The simulated SSD.
pub struct Ssd {
    cfg: SsdConfig,
    /// Flat media: namespace `n`, block `b` lives at `(n * blocks + b) *
    /// BLOCK_SIZE`.
    media: Vec<u8>,
    sq: VecDeque<NvmeCommand>,
    in_flight: Vec<InFlight>,
    cq: VecDeque<InFlight>,
    channel_free: Vec<SimTime>,
    failed: bool,
    /// Injected fault window: commands started before this time are
    /// silently swallowed (never complete), exercising the frontend's
    /// retry/timeout path.
    fault_timeout_until: SimTime,
    /// Injected fault window: reads started before this time complete with
    /// [`NvmeStatus::MediaError`].
    fault_read_error_until: SimTime,
    /// Device counters.
    pub stats: SsdStats,
}

impl Ssd {
    /// A healthy SSD with zeroed media.
    pub fn new(cfg: SsdConfig) -> Self {
        let media = vec![0u8; (cfg.blocks_per_ns * cfg.namespaces as u64 * BLOCK_SIZE) as usize];
        let channels = cfg.channels;
        Ssd {
            cfg,
            media,
            sq: VecDeque::new(),
            in_flight: Vec::new(),
            cq: VecDeque::new(),
            channel_free: vec![SimTime::ZERO; channels],
            failed: false,
            fault_timeout_until: SimTime::ZERO,
            fault_read_error_until: SimTime::ZERO,
            stats: SsdStats::default(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Mark the drive failed (or repaired). A failed drive completes every
    /// command with [`NvmeStatus::DeviceFailure`]; the Oasis storage engine
    /// propagates that error to the guest (§3.4).
    pub fn set_failed(&mut self, failed: bool) {
        self.failed = failed;
    }

    /// Has the drive been failed?
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Open an injected timeout window until `until`: commands *started*
    /// while it is open are accepted and then silently swallowed — no
    /// completion is ever posted, so the submitter's retry timeout must
    /// fire. Mirrors a firmware hiccup rather than a dead drive.
    pub fn inject_timeout_until(&mut self, until: SimTime) {
        self.fault_timeout_until = until;
    }

    /// Open an injected media-error window until `until`: reads started
    /// while it is open complete with [`NvmeStatus::MediaError`] (writes
    /// and flushes are unaffected).
    pub fn inject_read_errors_until(&mut self, until: SimTime) {
        self.fault_read_error_until = until;
    }

    /// Is an injected fault window currently open at `now`?
    pub fn fault_window_open(&self, now: SimTime) -> bool {
        now < self.fault_timeout_until || now < self.fault_read_error_until
    }

    /// Submit a command. Returns `false` if the submission queue is full.
    pub fn submit(&mut self, cmd: NvmeCommand) -> bool {
        if self.sq.len() >= self.cfg.sq_depth {
            self.stats.sq_rejected += 1;
            return false;
        }
        self.sq.push_back(cmd);
        true
    }

    /// Occupancy of the submission queue.
    pub fn sq_len(&self) -> usize {
        self.sq.len()
    }

    fn validate(&self, cmd: &NvmeCommand) -> NvmeStatus {
        if self.failed {
            return NvmeStatus::DeviceFailure;
        }
        if cmd.nsid == 0 || cmd.nsid > self.cfg.namespaces {
            return NvmeStatus::InvalidField;
        }
        if cmd.opcode != NvmeOpcode::Flush && cmd.slba + cmd.nlb as u64 > self.cfg.blocks_per_ns {
            return NvmeStatus::LbaOutOfRange;
        }
        NvmeStatus::Success
    }

    fn media_offset(&self, cmd: &NvmeCommand) -> usize {
        (((cmd.nsid as u64 - 1) * self.cfg.blocks_per_ns + cmd.slba) * BLOCK_SIZE) as usize
    }

    /// Execute queued commands and retire finished ones up to `now`.
    pub fn process(&mut self, now: SimTime, dma: &mut dyn DmaMemory) {
        // Start commands on free channels.
        while !self.sq.is_empty() {
            let Some(ch) = (0..self.channel_free.len())
                .filter(|&c| self.channel_free[c] <= now)
                .min_by_key(|&c| self.channel_free[c])
            else {
                break;
            };
            let Some(cmd) = self.sq.pop_front() else {
                break;
            };
            if now < self.fault_timeout_until {
                // Injected timeout: the command vanishes inside the device.
                // No completion will ever be posted for this cid.
                self.stats.swallowed += 1;
                continue;
            }
            let mut status = self.validate(&cmd);
            if status.is_ok() && cmd.opcode == NvmeOpcode::Read && now < self.fault_read_error_until
            {
                status = NvmeStatus::MediaError;
                self.stats.media_errors += 1;
            }
            let bytes = cmd.transfer_bytes();
            let service = if status.is_ok() {
                let base = match cmd.opcode {
                    NvmeOpcode::Read => self.cfg.read_latency_ns,
                    NvmeOpcode::Write => self.cfg.write_latency_ns,
                    NvmeOpcode::Flush => self.cfg.write_latency_ns,
                };
                base + (bytes as f64 / self.cfg.bandwidth * 1e9) as u64
            } else {
                1_000 // errors complete fast
            };
            let dma_ns = dma.dma_latency_ns(MemRef::Pool(cmd.data_ptr));
            let done_at = now + SimDuration::from_nanos(service + dma_ns);
            self.channel_free[ch] = done_at;

            if status.is_ok() {
                let off = self.media_offset(&cmd);
                match cmd.opcode {
                    NvmeOpcode::Read => {
                        self.stats.reads += 1;
                        self.stats.bytes_read += bytes;
                        let data = self.media[off..off + bytes as usize].to_vec();
                        dma.dma_write(now, MemRef::Pool(cmd.data_ptr), &data);
                    }
                    NvmeOpcode::Write => {
                        self.stats.writes += 1;
                        self.stats.bytes_written += bytes;
                        let mut buf = vec![0u8; bytes as usize];
                        dma.dma_read(now, MemRef::Pool(cmd.data_ptr), &mut buf);
                        self.media[off..off + bytes as usize].copy_from_slice(&buf);
                    }
                    NvmeOpcode::Flush => {
                        self.stats.flushes += 1;
                    }
                }
            } else {
                self.stats.errors += 1;
            }
            self.in_flight.push(InFlight {
                completion: NvmeCompletion {
                    cid: cmd.cid,
                    status,
                    frontend: cmd.frontend,
                },
                done_at,
            });
        }

        // Retire to the completion queue in completion-time order.
        self.in_flight.sort_by_key(|f| f.done_at);
        while let Some(f) = self.in_flight.first() {
            if f.done_at > now {
                break;
            }
            let f = self.in_flight.remove(0);
            self.cq.push_back(f);
        }
    }

    /// Drain completions that finished by `now`.
    pub fn poll_completions(&mut self, now: SimTime) -> Vec<NvmeCompletion> {
        let mut out = Vec::new();
        while self.cq.front().is_some_and(|f| f.done_at <= now) {
            if let Some(f) = self.cq.pop_front() {
                out.push(f.completion);
            }
        }
        out
    }

    /// Commands started but not yet retired.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlatMem {
        mem: Vec<u8>,
    }

    impl DmaMemory for FlatMem {
        fn dma_read(&mut self, _now: SimTime, mem: MemRef, out: &mut [u8]) {
            let MemRef::Pool(a) = mem else { panic!() };
            out.copy_from_slice(&self.mem[a as usize..a as usize + out.len()]);
        }
        fn dma_write(&mut self, _now: SimTime, mem: MemRef, data: &[u8]) {
            let MemRef::Pool(a) = mem else { panic!() };
            self.mem[a as usize..a as usize + data.len()].copy_from_slice(data);
        }
        fn dma_latency_ns(&self, _mem: MemRef) -> u64 {
            850
        }
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn write_cmd(cid: u16, slba: u64, nlb: u32, ptr: u64) -> NvmeCommand {
        NvmeCommand {
            opcode: NvmeOpcode::Write,
            cid,
            nsid: 1,
            data_ptr: ptr,
            slba,
            nlb,
            frontend: 0,
        }
    }

    fn read_cmd(cid: u16, slba: u64, nlb: u32, ptr: u64) -> NvmeCommand {
        NvmeCommand {
            opcode: NvmeOpcode::Read,
            ..write_cmd(cid, slba, nlb, ptr)
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem {
            mem: vec![0; 64 * 1024],
        };
        mem.mem[..5].copy_from_slice(b"oasis");
        ssd.submit(write_cmd(1, 10, 1, 0));
        ssd.process(t(0), &mut mem);
        let done = t(10_000_000);
        ssd.process(done, &mut mem);
        let comps = ssd.poll_completions(done);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].status.is_ok());
        // Read it back into a different buffer.
        ssd.submit(read_cmd(2, 10, 1, 8192));
        ssd.process(done, &mut mem);
        ssd.process(t(20_000_000), &mut mem);
        let comps = ssd.poll_completions(t(20_000_000));
        assert_eq!(comps.len(), 1);
        assert_eq!(&mem.mem[8192..8197], b"oasis");
    }

    #[test]
    fn read_latency_near_100us() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        ssd.submit(read_cmd(1, 0, 1, 0));
        ssd.process(t(0), &mut mem);
        // 85us flash + 4096B/5GBps ~ 819ns + 850ns dma ~ 86.7us.
        assert!(ssd.poll_completions(t(80_000)).is_empty());
        ssd.process(t(90_000), &mut mem);
        assert_eq!(ssd.poll_completions(t(90_000)).len(), 1);
    }

    #[test]
    fn lba_out_of_range_fails() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem { mem: vec![0; 64] };
        let blocks = ssd.config().blocks_per_ns;
        ssd.submit(read_cmd(1, blocks, 1, 0));
        ssd.process(t(0), &mut mem);
        ssd.process(t(1_000_000), &mut mem);
        let comps = ssd.poll_completions(t(1_000_000));
        assert_eq!(comps[0].status, NvmeStatus::LbaOutOfRange);
        assert_eq!(ssd.stats.errors, 1);
    }

    #[test]
    fn invalid_namespace_fails() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem { mem: vec![0; 64] };
        let mut cmd = read_cmd(1, 0, 1, 0);
        cmd.nsid = 9;
        ssd.submit(cmd);
        ssd.process(t(0), &mut mem);
        ssd.process(t(1_000_000), &mut mem);
        assert_eq!(
            ssd.poll_completions(t(1_000_000))[0].status,
            NvmeStatus::InvalidField
        );
    }

    #[test]
    fn failed_device_errors_every_command() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        ssd.set_failed(true);
        ssd.submit(read_cmd(1, 0, 1, 0));
        ssd.process(t(0), &mut mem);
        ssd.process(t(1_000_000), &mut mem);
        let comps = ssd.poll_completions(t(1_000_000));
        assert_eq!(comps[0].status, NvmeStatus::DeviceFailure);
        // Repair and retry.
        ssd.set_failed(false);
        ssd.submit(read_cmd(2, 0, 1, 0));
        ssd.process(t(1_000_000), &mut mem);
        ssd.process(t(2_000_000), &mut mem);
        assert!(ssd.poll_completions(t(2_000_000))[0].status.is_ok());
    }

    #[test]
    fn channel_parallelism_overlaps_commands() {
        let cfg = SsdConfig {
            channels: 4,
            ..Default::default()
        };
        let mut ssd = Ssd::new(cfg);
        let mut mem = FlatMem {
            mem: vec![0; 64 * 1024],
        };
        for i in 0..4 {
            ssd.submit(read_cmd(i, i as u64, 1, (i as u64) * 4096));
        }
        ssd.process(t(0), &mut mem);
        // All four run concurrently: all complete by ~87us, not 4x that.
        ssd.process(t(95_000), &mut mem);
        assert_eq!(ssd.poll_completions(t(95_000)).len(), 4);
    }

    #[test]
    fn sq_depth_enforced() {
        let cfg = SsdConfig {
            sq_depth: 2,
            ..Default::default()
        };
        let mut ssd = Ssd::new(cfg);
        assert!(ssd.submit(read_cmd(0, 0, 1, 0)));
        assert!(ssd.submit(read_cmd(1, 0, 1, 0)));
        assert!(!ssd.submit(read_cmd(2, 0, 1, 0)));
        assert_eq!(ssd.stats.sq_rejected, 1);
    }

    #[test]
    fn timeout_window_swallows_commands() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        ssd.inject_timeout_until(t(1_000_000));
        assert!(ssd.fault_window_open(t(0)));
        ssd.submit(read_cmd(1, 0, 1, 0));
        ssd.process(t(0), &mut mem);
        assert_eq!(ssd.in_flight(), 0, "swallowed, never started");
        ssd.process(t(10_000_000), &mut mem);
        assert!(ssd.poll_completions(t(10_000_000)).is_empty());
        assert_eq!(ssd.stats.swallowed, 1);
        // Past the window (a resubmission) the command completes normally.
        assert!(!ssd.fault_window_open(t(2_000_000)));
        ssd.submit(read_cmd(1, 0, 1, 0));
        ssd.process(t(2_000_000), &mut mem);
        ssd.process(t(3_000_000), &mut mem);
        let comps = ssd.poll_completions(t(3_000_000));
        assert_eq!(comps.len(), 1);
        assert!(comps[0].status.is_ok());
    }

    #[test]
    fn read_error_window_fails_reads_only() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        ssd.inject_read_errors_until(t(1_000_000));
        ssd.submit(read_cmd(1, 0, 1, 0));
        ssd.submit(write_cmd(2, 0, 1, 4096));
        ssd.process(t(0), &mut mem);
        ssd.process(t(10_000_000), &mut mem);
        let comps = ssd.poll_completions(t(10_000_000));
        assert_eq!(comps.len(), 2);
        let read = comps.iter().find(|c| c.cid == 1).unwrap();
        let write = comps.iter().find(|c| c.cid == 2).unwrap();
        assert_eq!(read.status, NvmeStatus::MediaError);
        assert!(write.status.is_ok(), "writes unaffected");
        assert_eq!(ssd.stats.media_errors, 1);
        // Retry after the window succeeds.
        ssd.submit(read_cmd(3, 0, 1, 0));
        ssd.process(t(10_000_000), &mut mem);
        ssd.process(t(20_000_000), &mut mem);
        assert!(ssd.poll_completions(t(20_000_000))[0].status.is_ok());
    }

    #[test]
    fn flush_completes_without_transfer() {
        let mut ssd = Ssd::new(SsdConfig::default());
        let mut mem = FlatMem { mem: vec![0; 64] };
        ssd.submit(NvmeCommand {
            opcode: NvmeOpcode::Flush,
            cid: 9,
            nsid: 1,
            data_ptr: 0,
            slba: 0,
            nlb: 0,
            frontend: 0,
        });
        ssd.process(t(0), &mut mem);
        ssd.process(t(1_000_000), &mut mem);
        let comps = ssd.poll_completions(t(1_000_000));
        assert!(comps[0].status.is_ok());
        assert_eq!(ssd.stats.flushes, 1);
        assert_eq!(ssd.stats.bytes_read + ssd.stats.bytes_written, 0);
    }
}
