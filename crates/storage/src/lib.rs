//! Simulated NVMe-like SSDs.
//!
//! The Oasis storage engine (§3.4) forwards block I/O between frontend
//! drivers and the submission/completion queues of host-attached SSDs,
//! operated through their native driver (SPDK in the paper). This crate is
//! the simulated SSD: 64 B commands mirroring the NVMe command layout,
//! SQ/CQ semantics, DMA directly to/from CXL pool memory (bypassing CPU
//! caches), a latency/bandwidth model matching Table 1's datacenter-SSD
//! figures, and failure injection for the engine's error-propagation path.

pub mod command;
pub mod ssd;

pub use command::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus};
pub use ssd::{Ssd, SsdConfig};

/// Logical block size (bytes). Datacenter NVMe namespaces are formatted
/// 4 KiB.
pub const BLOCK_SIZE: u64 = 4096;
