//! 64 B NVMe-style command and completion codecs.
//!
//! §3.4: "Each 64 B message mirrors the fields of a 64 B NVMe command." The
//! storage engine moves these structs verbatim through 64 B Oasis message
//! channels, so the layout leaves the final byte's MSB free for the channel
//! epoch bit.
//!
//! Layout (little-endian):
//!
//! ```text
//! [0]      opcode          [1]      flags (reserved)
//! [2..4)   cid             [4..8)   nsid
//! [8..16)  data pointer (CXL pool address, PRP1 analog)
//! [16..24) starting LBA    [24..28) number of blocks
//! [28..32) frontend id     [32..63) reserved
//! [63]     channel epoch/flags byte (must stay clear here)
//! ```

/// NVMe opcode subset used by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NvmeOpcode {
    /// Flush volatile write cache.
    Flush,
    /// Write blocks.
    Write,
    /// Read blocks.
    Read,
}

impl NvmeOpcode {
    fn to_byte(self) -> u8 {
        match self {
            NvmeOpcode::Flush => 0x00,
            NvmeOpcode::Write => 0x01,
            NvmeOpcode::Read => 0x02,
        }
    }

    fn from_byte(b: u8) -> Option<NvmeOpcode> {
        match b {
            0x00 => Some(NvmeOpcode::Flush),
            0x01 => Some(NvmeOpcode::Write),
            0x02 => Some(NvmeOpcode::Read),
            _ => None,
        }
    }
}

/// Completion status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NvmeStatus {
    /// Command completed successfully.
    Success,
    /// LBA range exceeded the namespace.
    LbaOutOfRange,
    /// Invalid field (bad opcode / nsid).
    InvalidField,
    /// Unrecovered media error on a read (transient in an injected fault
    /// window; the frontend retries).
    MediaError,
    /// The device has failed (Oasis propagates this to the guest, §3.4).
    DeviceFailure,
}

impl NvmeStatus {
    /// Status byte as it appears in an encoded completion (also used by
    /// the snapshot layer to serialize completion caches).
    pub fn to_byte(self) -> u8 {
        match self {
            NvmeStatus::Success => 0x00,
            NvmeStatus::LbaOutOfRange => 0x80,
            NvmeStatus::InvalidField => 0x02,
            NvmeStatus::MediaError => 0x81,
            NvmeStatus::DeviceFailure => 0x06,
        }
    }

    /// Inverse of [`NvmeStatus::to_byte`]; unknown bytes degrade to
    /// [`NvmeStatus::DeviceFailure`].
    pub fn from_byte(b: u8) -> NvmeStatus {
        match b {
            0x00 => NvmeStatus::Success,
            0x80 => NvmeStatus::LbaOutOfRange,
            0x02 => NvmeStatus::InvalidField,
            0x81 => NvmeStatus::MediaError,
            _ => NvmeStatus::DeviceFailure,
        }
    }

    /// Did the command succeed?
    pub fn is_ok(self) -> bool {
        self == NvmeStatus::Success
    }
}

/// Fixed-width little-endian field at `off` in a 64 B message; bounds are
/// checked at compile time through the const generic, so no fallible
/// `try_into` is needed on the decode path.
#[inline]
fn sub<const N: usize>(b: &[u8; 64], off: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&b[off..off + N]);
    out
}

/// A 64 B NVMe-style I/O command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmeCommand {
    /// Operation.
    pub opcode: NvmeOpcode,
    /// Command id, echoed in the completion.
    pub cid: u16,
    /// Namespace id.
    pub nsid: u32,
    /// Data buffer address in CXL pool memory.
    pub data_ptr: u64,
    /// Starting logical block address.
    pub slba: u64,
    /// Number of logical blocks.
    pub nlb: u32,
    /// Originating frontend driver (Oasis routing field in a reserved
    /// area).
    pub frontend: u32,
}

impl NvmeCommand {
    /// Encode into a 64 B message (epoch byte left clear).
    pub fn encode(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0] = self.opcode.to_byte();
        b[2..4].copy_from_slice(&self.cid.to_le_bytes());
        b[4..8].copy_from_slice(&self.nsid.to_le_bytes());
        b[8..16].copy_from_slice(&self.data_ptr.to_le_bytes());
        b[16..24].copy_from_slice(&self.slba.to_le_bytes());
        b[24..28].copy_from_slice(&self.nlb.to_le_bytes());
        b[28..32].copy_from_slice(&self.frontend.to_le_bytes());
        b
    }

    /// Decode from a 64 B message. `None` if the opcode is unknown.
    pub fn decode(b: &[u8; 64]) -> Option<NvmeCommand> {
        Some(NvmeCommand {
            opcode: NvmeOpcode::from_byte(b[0])?,
            cid: u16::from_le_bytes(sub(b, 2)),
            nsid: u32::from_le_bytes(sub(b, 4)),
            data_ptr: u64::from_le_bytes(sub(b, 8)),
            slba: u64::from_le_bytes(sub(b, 16)),
            nlb: u32::from_le_bytes(sub(b, 24)),
            frontend: u32::from_le_bytes(sub(b, 28)),
        })
    }

    /// Bytes of data this command transfers.
    pub fn transfer_bytes(&self) -> u64 {
        match self.opcode {
            NvmeOpcode::Flush => 0,
            _ => self.nlb as u64 * crate::BLOCK_SIZE,
        }
    }
}

/// A completion entry, also encodable into a 64 B channel message
/// (completions travel backend → frontend over the reverse channel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmeCompletion {
    /// Command id being completed.
    pub cid: u16,
    /// Status.
    pub status: NvmeStatus,
    /// Originating frontend driver.
    pub frontend: u32,
}

impl NvmeCompletion {
    /// Encode into a 64 B message (epoch byte left clear).
    pub fn encode(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[0] = 0xfe; // distinguishes completions from commands
        b[1] = self.status.to_byte();
        b[2..4].copy_from_slice(&self.cid.to_le_bytes());
        b[28..32].copy_from_slice(&self.frontend.to_le_bytes());
        b
    }

    /// Decode from a 64 B message. `None` if it is not a completion.
    pub fn decode(b: &[u8; 64]) -> Option<NvmeCompletion> {
        if b[0] != 0xfe {
            return None;
        }
        Some(NvmeCompletion {
            cid: u16::from_le_bytes(sub(b, 2)),
            status: NvmeStatus::from_byte(b[1]),
            frontend: u32::from_le_bytes(sub(b, 28)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let cmd = NvmeCommand {
            opcode: NvmeOpcode::Write,
            cid: 0xBEEF,
            nsid: 3,
            data_ptr: 0x1234_5678_9abc,
            slba: 1_000_000,
            nlb: 8,
            frontend: 2,
        };
        let enc = cmd.encode();
        assert_eq!(enc[63] & 0x80, 0, "epoch byte clear");
        assert_eq!(NvmeCommand::decode(&enc), Some(cmd));
    }

    #[test]
    fn completion_roundtrip_and_discrimination() {
        let c = NvmeCompletion {
            cid: 7,
            status: NvmeStatus::LbaOutOfRange,
            frontend: 5,
        };
        let enc = c.encode();
        assert_eq!(NvmeCompletion::decode(&enc), Some(c));
        // A completion is not decodable as a command and vice versa.
        assert!(NvmeCommand::decode(&enc).is_none());
        let cmd = NvmeCommand {
            opcode: NvmeOpcode::Read,
            cid: 1,
            nsid: 1,
            data_ptr: 0,
            slba: 0,
            nlb: 1,
            frontend: 0,
        };
        assert!(NvmeCompletion::decode(&cmd.encode()).is_none());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = [0u8; 64];
        b[0] = 0x77;
        assert!(NvmeCommand::decode(&b).is_none());
    }

    #[test]
    fn transfer_bytes_by_opcode() {
        let mut cmd = NvmeCommand {
            opcode: NvmeOpcode::Read,
            cid: 0,
            nsid: 1,
            data_ptr: 0,
            slba: 0,
            nlb: 4,
            frontend: 0,
        };
        assert_eq!(cmd.transfer_bytes(), 4 * crate::BLOCK_SIZE);
        cmd.opcode = NvmeOpcode::Flush;
        assert_eq!(cmd.transfer_bytes(), 0);
    }

    #[test]
    fn status_byte_roundtrip() {
        for s in [
            NvmeStatus::Success,
            NvmeStatus::LbaOutOfRange,
            NvmeStatus::InvalidField,
            NvmeStatus::MediaError,
            NvmeStatus::DeviceFailure,
        ] {
            assert_eq!(NvmeStatus::from_byte(s.to_byte()), s);
        }
        assert!(NvmeStatus::Success.is_ok());
        assert!(!NvmeStatus::DeviceFailure.is_ok());
    }
}
