//! MAC-learning store-and-forward switch.
//!
//! Models the testbed's Arista 7060X at the level Oasis cares about:
//!
//! * **MAC learning**: the switch maps each observed source MAC to its
//!   ingress port. This is exactly the mechanism Oasis failover exploits
//!   (§3.3.3): the backup NIC "borrows" the failed NIC's MAC by sending a
//!   frame with it as the source, and the switch immediately re-points the
//!   mapping at the backup's port.
//! * **Per-port admin state**: §5.3 injects NIC failures by disabling the
//!   switch port; a disabled port neither accepts nor emits frames, and the
//!   attached NIC loses carrier.
//! * **Store-and-forward latency** plus egress serialization at the port
//!   rate.

use oasis_sim::detmap::DetMap;
use oasis_sim::fault::{PacketAction, PacketFaultState};
use oasis_sim::time::{SimDuration, SimTime};

use crate::addr::MacAddr;
use crate::packet::Frame;
use crate::WIRE_OVERHEAD_BYTES;

/// Identifies a switch port.
pub type SwitchPort = usize;

/// Forwarding counters.
#[derive(Clone, Debug, Default)]
pub struct SwitchStats {
    /// Frames forwarded to a known unicast destination.
    pub forwarded: u64,
    /// Frames flooded (broadcast or unknown destination).
    pub flooded: u64,
    /// Frames dropped at a disabled ingress port.
    pub dropped_ingress_disabled: u64,
    /// Frame copies dropped at a disabled egress port.
    pub dropped_egress_disabled: u64,
    /// Frames dropped by an injected packet fault.
    pub dropped_fault: u64,
    /// Frames corrupted by an injected packet fault.
    pub corrupted_fault: u64,
    /// Frames duplicated by an injected packet fault.
    pub duplicated_fault: u64,
}

/// The switch.
pub struct Switch {
    enabled: Vec<bool>,
    /// MAC → (port, learned_at); entries age out after `mac_ttl`.
    mac_table: DetMap<MacAddr, (SwitchPort, SimTime)>,
    mac_ttl: SimDuration,
    /// Store-and-forward latency (ingress to egress start).
    latency: SimDuration,
    /// Port rate in Gbit/s (uniform; the testbed is all-100G).
    port_gbps: f64,
    /// When each egress port's serializer frees up.
    egress_free: Vec<SimTime>,
    /// Injected per-port packet fault (drop/corrupt/duplicate), if any.
    port_faults: Vec<Option<PacketFaultState>>,
    /// Forwarding counters.
    pub stats: SwitchStats,
}

impl Switch {
    /// A switch with `ports` ports, all enabled. Defaults match a shallow
    /// ToR: 600 ns port-to-port latency, 100 Gbit/s ports.
    pub fn new(ports: usize) -> Self {
        Switch {
            enabled: vec![true; ports],
            mac_table: DetMap::default(),
            mac_ttl: SimDuration::from_secs(300),
            latency: SimDuration::from_nanos(600),
            port_gbps: 100.0,
            egress_free: vec![SimTime::ZERO; ports],
            port_faults: std::iter::repeat_with(|| None).take(ports).collect(),
            stats: SwitchStats::default(),
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.enabled.len()
    }

    /// Add a port (patching a new cable into the ToR). Returns its index.
    pub fn add_port(&mut self) -> SwitchPort {
        self.enabled.push(true);
        self.egress_free.push(SimTime::ZERO);
        self.port_faults.push(None);
        self.enabled.len() - 1
    }

    /// Is a port administratively enabled?
    pub fn port_enabled(&self, port: SwitchPort) -> bool {
        self.enabled[port]
    }

    /// Enable or disable a port (§5.3 failure injection).
    ///
    /// Re-enabling a previously disabled port invalidates every MAC entry
    /// learned on it: whatever was behind the port may have changed while
    /// the link was down (a real switch restarts learning on link-up), so
    /// traffic to those MACs floods until the station speaks again and is
    /// relearned.
    pub fn set_port_enabled(&mut self, port: SwitchPort, enabled: bool) {
        let relearn = enabled && !self.enabled[port];
        self.enabled[port] = enabled;
        if relearn {
            self.mac_table.retain(|_, &mut (p, _)| p != port);
        }
    }

    /// Install an injected packet-fault profile on a port's ingress. The
    /// state expires on its own; `clear_packet_fault` removes it early.
    pub fn set_packet_fault(&mut self, port: SwitchPort, state: PacketFaultState) {
        self.port_faults[port] = Some(state);
    }

    /// Remove any injected packet fault from a port.
    pub fn clear_packet_fault(&mut self, port: SwitchPort) {
        self.port_faults[port] = None;
    }

    /// Override the MAC-table aging time (datacenter default: 300 s).
    pub fn set_mac_ttl(&mut self, ttl: SimDuration) {
        self.mac_ttl = ttl;
    }

    /// Current port mapping for a MAC, if learned (ignores aging; see
    /// [`Switch::lookup_at`]).
    pub fn lookup(&self, mac: MacAddr) -> Option<SwitchPort> {
        self.mac_table.get(&mac).map(|&(p, _)| p)
    }

    /// Port mapping for a MAC if the entry hasn't aged out by `now`.
    pub fn lookup_at(&self, mac: MacAddr, now: SimTime) -> Option<SwitchPort> {
        self.mac_table
            .get(&mac)
            .filter(|&&(_, learned)| now <= learned + self.mac_ttl)
            .map(|&(p, _)| p)
    }

    /// Number of learned MAC entries.
    pub fn mac_table_len(&self) -> usize {
        self.mac_table.len()
    }

    fn egress_one(
        &mut self,
        now: SimTime,
        port: SwitchPort,
        frame: &Frame,
        out: &mut Vec<(SwitchPort, SimTime, Frame)>,
    ) {
        if !self.enabled[port] {
            self.stats.dropped_egress_disabled += 1;
            return;
        }
        let ser_bits = ((frame.len() as u64 + WIRE_OVERHEAD_BYTES) * 8) as f64;
        let ser = SimDuration::from_nanos((ser_bits / self.port_gbps).ceil() as u64);
        let start = (now + self.latency).max(self.egress_free[port]);
        let done = start + ser;
        self.egress_free[port] = done;
        out.push((port, done, frame.clone()));
    }

    /// Forward a frame that arrived on `in_port` at `now`. Returns the
    /// deliveries as `(port, arrival_time, frame)`; the caller hands each to
    /// the attached NIC or endpoint.
    pub fn forward(
        &mut self,
        now: SimTime,
        in_port: SwitchPort,
        frame: Frame,
    ) -> Vec<(SwitchPort, SimTime, Frame)> {
        let mut out = Vec::new();
        if !self.enabled[in_port] {
            self.stats.dropped_ingress_disabled += 1;
            return out;
        }
        // Injected link faults act at ingress, before learning: a dropped
        // frame never reached the switch fabric at all.
        let mut frame = frame;
        let mut duplicate = false;
        if let Some(state) = self.port_faults[in_port].as_mut() {
            if state.expired(now) {
                self.port_faults[in_port] = None;
            } else {
                match state.decide(now) {
                    PacketAction::Deliver => {}
                    PacketAction::Drop => {
                        self.stats.dropped_fault += 1;
                        return out;
                    }
                    PacketAction::Corrupt => {
                        let (at, mask) = state.corrupt_at(frame.len());
                        let mut bytes = frame.bytes().to_vec();
                        bytes[at] ^= mask;
                        frame = Frame(bytes.into());
                        self.stats.corrupted_fault += 1;
                    }
                    PacketAction::Duplicate => {
                        self.stats.duplicated_fault += 1;
                        duplicate = true;
                    }
                }
            }
        }
        if duplicate {
            // The wire delivered the same frame twice; each copy takes the
            // full forwarding path (learning twice is idempotent).
            self.forward_one(now, in_port, frame.clone(), &mut out);
        }
        self.forward_one(now, in_port, frame, &mut out);
        out
    }

    /// The fault-free forwarding path (learn + unicast/flood).
    fn forward_one(
        &mut self,
        now: SimTime,
        in_port: SwitchPort,
        frame: Frame,
        out: &mut Vec<(SwitchPort, SimTime, Frame)>,
    ) {
        // Learn the source MAC. This is the hook MAC borrowing relies on:
        // any frame sourced with a MAC re-points it here, immediately.
        let src = frame.src_mac();
        if !src.is_broadcast() {
            self.mac_table.insert(src, (in_port, now));
        }
        let dst = frame.dst_mac();
        match (dst.is_broadcast(), self.lookup_at(dst, now)) {
            (false, Some(port)) if port != in_port => {
                self.stats.forwarded += 1;
                self.egress_one(now, port, &frame, out);
            }
            (false, Some(_)) => {
                // Destination learned on the ingress port: hairpin drop.
            }
            _ => {
                // Broadcast or unknown unicast: flood.
                self.stats.flooded += 1;
                for port in 0..self.enabled.len() {
                    if port != in_port && self.enabled[port] {
                        self.egress_one(now, port, &frame, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::packet::UdpPacket;
    use bytes::Bytes;

    fn frame(src: MacAddr, dst: MacAddr) -> Frame {
        UdpPacket {
            src_mac: src,
            dst_mac: dst,
            src_ip: Ipv4Addr::instance(0),
            dst_ip: Ipv4Addr::instance(1),
            src_port: 1,
            dst_port: 2,
            payload: Bytes::from_static(b"x"),
        }
        .encode()
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn unknown_destination_floods_then_learns() {
        let mut sw = Switch::new(4);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        // a (port 0) -> b: unknown, floods to 1,2,3.
        let out = sw.forward(t(0), 0, frame(a, b));
        assert_eq!(out.len(), 3);
        assert_eq!(sw.lookup(a), Some(0));
        // b replies from port 2: learned, unicast back to port 0 only.
        let out = sw.forward(t(0), 2, frame(b, a));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(sw.lookup(b), Some(2));
        // Now a -> b is unicast.
        let out = sw.forward(t(0), 0, frame(a, b));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert_eq!(sw.stats.forwarded, 2);
        assert_eq!(sw.stats.flooded, 1);
    }

    #[test]
    fn mac_borrowing_repoints_mapping() {
        // The failover mechanism: backup NIC sends with the failed NIC's
        // MAC as source; subsequent traffic to that MAC goes to the backup.
        let mut sw = Switch::new(4);
        let failed = MacAddr::nic(1);
        sw.forward(t(0), 0, frame(failed, MacAddr::nic(9))); // learned at 0
        assert_eq!(sw.lookup(failed), Some(0));
        sw.forward(t(0), 3, frame(failed, MacAddr::nic(9))); // borrowed from 3
        assert_eq!(sw.lookup(failed), Some(3));
    }

    #[test]
    fn disabled_ingress_drops() {
        let mut sw = Switch::new(2);
        sw.set_port_enabled(0, false);
        let out = sw.forward(t(0), 0, frame(MacAddr::nic(1), MacAddr::BROADCAST));
        assert!(out.is_empty());
        assert_eq!(sw.stats.dropped_ingress_disabled, 1);
    }

    #[test]
    fn disabled_egress_drops_copy() {
        let mut sw = Switch::new(3);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a)); // learn b at 1
        sw.set_port_enabled(1, false);
        let out = sw.forward(t(0), 0, frame(a, b));
        assert!(out.is_empty());
        assert_eq!(sw.stats.dropped_egress_disabled, 1);
    }

    #[test]
    fn broadcast_floods_to_enabled_only() {
        let mut sw = Switch::new(4);
        sw.set_port_enabled(2, false);
        let out = sw.forward(t(0), 0, frame(MacAddr::nic(1), MacAddr::BROADCAST));
        let ports: Vec<SwitchPort> = out.iter().map(|(p, _, _)| *p).collect();
        assert_eq!(ports, vec![1, 3]);
        // Broadcast source must never be learned.
        assert_eq!(sw.lookup(MacAddr::BROADCAST), None);
    }

    #[test]
    fn latency_and_serialization_applied() {
        let mut sw = Switch::new(2);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a));
        let f = frame(a, b);
        let flen = f.len() as u64;
        let out = sw.forward(t(1_000), 0, f);
        let ser = (((flen + 24) * 8) as f64 / 100.0).ceil() as u64;
        assert_eq!(out[0].1.as_nanos(), 1_000 + 600 + ser);
    }

    #[test]
    fn egress_serializer_backpressure() {
        let mut sw = Switch::new(2);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a));
        let out1 = sw.forward(t(0), 0, frame(a, b));
        let out2 = sw.forward(t(0), 0, frame(a, b));
        assert!(out2[0].1 > out1[0].1, "second frame queues behind first");
    }

    #[test]
    fn stale_mac_entries_age_out_and_flood() {
        let mut sw = Switch::new(3);
        sw.set_mac_ttl(SimDuration::from_secs(1));
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a)); // learn b at port 1
                                          // Within the TTL: unicast.
        let out = sw.forward(SimTime::from_millis(500), 0, frame(a, b));
        assert_eq!(out.len(), 1);
        // Past the TTL: the entry is stale, so the frame floods.
        let out = sw.forward(SimTime::from_secs(2), 0, frame(a, b));
        assert_eq!(out.len(), 2, "flooded to both other ports");
        assert_eq!(sw.lookup_at(b, SimTime::from_secs(2)), None);
        // Relearning refreshes the entry.
        sw.forward(SimTime::from_secs(2), 1, frame(b, a));
        assert_eq!(sw.lookup_at(b, SimTime::from_secs(2)), Some(1));
    }

    #[test]
    fn reenabled_port_relearns_macs() {
        // Satellite regression (ISSUE 2): a flapped port must not serve
        // stale MAC entries after it comes back — whatever sat behind it may
        // have moved while the link was down.
        let mut sw = Switch::new(3);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a)); // learn b at port 1
        assert_eq!(sw.lookup(b), Some(1));
        sw.set_port_enabled(1, false);
        sw.set_port_enabled(1, true);
        assert_eq!(sw.lookup(b), None, "flap invalidated the entry");
        // Traffic to b floods until b speaks again.
        let out = sw.forward(t(10), 0, frame(a, b));
        assert_eq!(out.len(), 2, "unknown unicast floods post-flap");
        sw.forward(t(20), 1, frame(b, a));
        assert_eq!(sw.lookup(b), Some(1), "relearned after the station spoke");
        let out = sw.forward(t(30), 0, frame(a, b));
        assert_eq!(out.len(), 1, "unicast restored");
        // Disabling (without re-enabling) keeps entries: the down window in
        // fig 13 relies on frames being dropped, not forgotten.
        sw.set_port_enabled(1, false);
        assert_eq!(sw.lookup(b), Some(1));
        // Enabling an already enabled port is a no-op for the table.
        sw.set_port_enabled(0, true);
        assert_eq!(sw.lookup(a), Some(0));
    }

    fn full_rate_fault(drop: u32, corrupt: u32, dup: u32) -> PacketFaultState {
        PacketFaultState::new(
            drop,
            corrupt,
            dup,
            SimTime::from_secs(1),
            oasis_sim::SimRng::new(3),
        )
    }

    #[test]
    fn packet_fault_drops_until_expiry() {
        let mut sw = Switch::new(2);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a));
        sw.set_packet_fault(0, full_rate_fault(1_000_000, 0, 0));
        let out = sw.forward(t(100), 0, frame(a, b));
        assert!(out.is_empty());
        assert_eq!(sw.stats.dropped_fault, 1);
        // Past the window the state self-clears and frames flow again.
        let out = sw.forward(SimTime::from_secs(2), 0, frame(a, b));
        assert_eq!(out.len(), 1);
        assert_eq!(sw.stats.dropped_fault, 1);
    }

    #[test]
    fn packet_fault_corrupts_frame_in_flight() {
        let mut sw = Switch::new(2);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a));
        sw.set_packet_fault(0, full_rate_fault(0, 1_000_000, 0));
        let sent = frame(a, b);
        let out = sw.forward(t(100), 0, sent.clone());
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].2, sent, "one byte flipped");
        assert_eq!(sw.stats.corrupted_fault, 1);
    }

    #[test]
    fn packet_fault_duplicates_frame() {
        let mut sw = Switch::new(2);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        sw.forward(t(0), 1, frame(b, a));
        sw.set_packet_fault(0, full_rate_fault(0, 0, 1_000_000));
        let out = sw.forward(t(100), 0, frame(a, b));
        assert_eq!(out.len(), 2, "both copies egress");
        assert_eq!(out[0].2, out[1].2);
        assert!(out[1].1 > out[0].1, "second copy serializes behind first");
        assert_eq!(sw.stats.duplicated_fault, 1);
        sw.clear_packet_fault(0);
        let out = sw.forward(t(200), 0, frame(a, b));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn hairpin_to_same_port_dropped() {
        let mut sw = Switch::new(2);
        let a = MacAddr::nic(1);
        let b = MacAddr::nic(2);
        // Both MACs behind port 0.
        sw.forward(t(0), 0, frame(a, MacAddr::BROADCAST));
        sw.forward(t(0), 0, frame(b, MacAddr::BROADCAST));
        let out = sw.forward(t(0), 0, frame(a, b));
        assert!(out.is_empty());
    }
}
