//! Ethernet / ARP / IPv4 / UDP / TCP packet codecs.
//!
//! Frames on the simulated wire are real byte buffers with real headers and
//! checksums; the Oasis network engine and the instance network stacks parse
//! them the way a kernel-bypass stack parses DMA'd packets. Keeping the wire
//! format honest means the engine's "never inspect the payload at the
//! backend" rule (§3.2.1) is actually observable: the backend driver can
//! forward a packet it never decoded.

use bytes::{BufMut, Bytes, BytesMut};

use crate::addr::{Ipv4Addr, MacAddr};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;

/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;
/// IPv4 protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;

/// Ethernet header length.
pub const ETH_HLEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_HLEN: usize = 20;
/// UDP header length.
pub const UDP_HLEN: usize = 8;
/// TCP header length (no options).
pub const TCP_HLEN: usize = 20;

/// An Ethernet frame on the simulated wire.
#[derive(Clone, PartialEq, Eq)]
pub struct Frame(pub Bytes);

impl Frame {
    /// Total frame length in bytes (L2 payload, excluding preamble/FCS/IFG).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a degenerate empty frame.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Destination MAC.
    pub fn dst_mac(&self) -> MacAddr {
        MacAddr(self.0[0..6].try_into().unwrap())
    }

    /// Source MAC.
    pub fn src_mac(&self) -> MacAddr {
        MacAddr(self.0[6..12].try_into().unwrap())
    }

    /// EtherType.
    pub fn ethertype(&self) -> u16 {
        u16::from_be_bytes([self.0[12], self.0[13]])
    }

    /// Destination IPv4 address, if this is an IPv4 frame.
    pub fn dst_ip(&self) -> Option<Ipv4Addr> {
        if self.ethertype() != ETHERTYPE_IPV4 || self.0.len() < ETH_HLEN + IPV4_HLEN {
            return None;
        }
        Some(Ipv4Addr(
            self.0[ETH_HLEN + 16..ETH_HLEN + 20].try_into().unwrap(),
        ))
    }

    /// Source IPv4 address, if this is an IPv4 frame.
    pub fn src_ip(&self) -> Option<Ipv4Addr> {
        if self.ethertype() != ETHERTYPE_IPV4 || self.0.len() < ETH_HLEN + IPV4_HLEN {
            return None;
        }
        Some(Ipv4Addr(
            self.0[ETH_HLEN + 12..ETH_HLEN + 16].try_into().unwrap(),
        ))
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }
}

impl core::fmt::Debug for Frame {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Frame({} -> {}, type {:#06x}, {} B)",
            self.src_mac(),
            self.dst_mac(),
            self.ethertype(),
            self.len()
        )
    }
}

/// RFC 1071 internet checksum.
pub fn internet_checksum(chunks: &[&[u8]]) -> u16 {
    let mut sum: u32 = 0;
    let mut leftover: Option<u8> = None;
    for chunk in chunks {
        for &b in chunk.iter() {
            match leftover.take() {
                None => leftover = Some(b),
                Some(hi) => {
                    sum += u32::from(u16::from_be_bytes([hi, b]));
                }
            }
        }
    }
    if let Some(hi) = leftover {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A parsed UDP datagram view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpPacket {
    /// Ethernet source MAC.
    pub src_mac: MacAddr,
    /// Ethernet destination MAC.
    pub dst_mac: MacAddr,
    /// IPv4 source.
    pub src_ip: Ipv4Addr,
    /// IPv4 destination.
    pub dst_ip: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

impl UdpPacket {
    /// Encode into a wire frame (Ethernet + IPv4 + UDP, checksums filled).
    pub fn encode(&self) -> Frame {
        let udp_len = UDP_HLEN + self.payload.len();
        let ip_len = IPV4_HLEN + udp_len;
        let mut buf = BytesMut::with_capacity(ETH_HLEN + ip_len);
        buf.put_slice(&self.dst_mac.0);
        buf.put_slice(&self.src_mac.0);
        buf.put_u16(ETHERTYPE_IPV4);
        encode_ipv4_header(&mut buf, self.src_ip, self.dst_ip, IPPROTO_UDP, ip_len);
        // UDP header.
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(udp_len as u16);
        let cksum_at = buf.len();
        buf.put_u16(0);
        buf.put_slice(&self.payload);
        let cksum = l4_checksum(
            self.src_ip,
            self.dst_ip,
            IPPROTO_UDP,
            &buf[ETH_HLEN + IPV4_HLEN..],
        );
        // UDP uses 0xffff to represent a computed zero checksum.
        let cksum = if cksum == 0 { 0xffff } else { cksum };
        buf[cksum_at..cksum_at + 2].copy_from_slice(&cksum.to_be_bytes());
        Frame(buf.freeze())
    }

    /// Parse a frame as UDP/IPv4. Returns `None` for non-UDP frames or
    /// malformed packets (bad lengths or checksums).
    pub fn parse(frame: &Frame) -> Option<UdpPacket> {
        let b = frame.bytes();
        if frame.ethertype() != ETHERTYPE_IPV4 || b.len() < ETH_HLEN + IPV4_HLEN + UDP_HLEN {
            return None;
        }
        let ip = &b[ETH_HLEN..];
        if ip[9] != IPPROTO_UDP || !verify_ipv4_header(ip) {
            return None;
        }
        let udp = &ip[IPV4_HLEN..];
        let udp_len = u16::from_be_bytes([udp[4], udp[5]]) as usize;
        if udp_len < UDP_HLEN || udp_len > udp.len() {
            return None;
        }
        let src_ip = Ipv4Addr(ip[12..16].try_into().unwrap());
        let dst_ip = Ipv4Addr(ip[16..20].try_into().unwrap());
        if l4_checksum(src_ip, dst_ip, IPPROTO_UDP, &udp[..udp_len]) != 0 {
            return None;
        }
        Some(UdpPacket {
            src_mac: frame.src_mac(),
            dst_mac: frame.dst_mac(),
            src_ip,
            dst_ip,
            src_port: u16::from_be_bytes([udp[0], udp[1]]),
            dst_port: u16::from_be_bytes([udp[2], udp[3]]),
            payload: Bytes::copy_from_slice(&udp[UDP_HLEN..udp_len]),
        })
    }
}

/// TCP header flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
}

impl TcpFlags {
    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A parsed TCP segment view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// Ethernet source MAC.
    pub src_mac: MacAddr,
    /// Ethernet destination MAC.
    pub dst_mac: MacAddr,
    /// IPv4 source.
    pub src_ip: Ipv4Addr,
    /// IPv4 destination.
    pub dst_ip: Ipv4Addr,
    /// TCP source port.
    pub src_port: u16,
    /// TCP destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Application payload.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Encode into a wire frame (Ethernet + IPv4 + TCP, checksums filled).
    pub fn encode(&self) -> Frame {
        let tcp_len = TCP_HLEN + self.payload.len();
        let ip_len = IPV4_HLEN + tcp_len;
        let mut buf = BytesMut::with_capacity(ETH_HLEN + ip_len);
        buf.put_slice(&self.dst_mac.0);
        buf.put_slice(&self.src_mac.0);
        buf.put_u16(ETHERTYPE_IPV4);
        encode_ipv4_header(&mut buf, self.src_ip, self.dst_ip, IPPROTO_TCP, ip_len);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8((TCP_HLEN as u8 / 4) << 4); // data offset, no options
        buf.put_u8(self.flags.to_byte());
        buf.put_u16(self.window);
        let cksum_at = buf.len();
        buf.put_u16(0); // checksum
        buf.put_u16(0); // urgent pointer
        buf.put_slice(&self.payload);
        let cksum = l4_checksum(
            self.src_ip,
            self.dst_ip,
            IPPROTO_TCP,
            &buf[ETH_HLEN + IPV4_HLEN..],
        );
        buf[cksum_at..cksum_at + 2].copy_from_slice(&cksum.to_be_bytes());
        Frame(buf.freeze())
    }

    /// Parse a frame as TCP/IPv4; `None` for other traffic or corruption.
    pub fn parse(frame: &Frame) -> Option<TcpSegment> {
        let b = frame.bytes();
        if frame.ethertype() != ETHERTYPE_IPV4 || b.len() < ETH_HLEN + IPV4_HLEN + TCP_HLEN {
            return None;
        }
        let ip = &b[ETH_HLEN..];
        if ip[9] != IPPROTO_TCP || !verify_ipv4_header(ip) {
            return None;
        }
        let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
        if total_len < IPV4_HLEN + TCP_HLEN || total_len > ip.len() {
            return None;
        }
        let tcp = &ip[IPV4_HLEN..total_len];
        let src_ip = Ipv4Addr(ip[12..16].try_into().unwrap());
        let dst_ip = Ipv4Addr(ip[16..20].try_into().unwrap());
        if l4_checksum(src_ip, dst_ip, IPPROTO_TCP, tcp) != 0 {
            return None;
        }
        let data_off = ((tcp[12] >> 4) as usize) * 4;
        if data_off < TCP_HLEN || data_off > tcp.len() {
            return None;
        }
        Some(TcpSegment {
            src_mac: frame.src_mac(),
            dst_mac: frame.dst_mac(),
            src_ip,
            dst_ip,
            src_port: u16::from_be_bytes([tcp[0], tcp[1]]),
            dst_port: u16::from_be_bytes([tcp[2], tcp[3]]),
            seq: u32::from_be_bytes(tcp[4..8].try_into().unwrap()),
            ack: u32::from_be_bytes(tcp[8..12].try_into().unwrap()),
            flags: TcpFlags::from_byte(tcp[13]),
            window: u16::from_be_bytes([tcp[14], tcp[15]]),
            payload: Bytes::copy_from_slice(&tcp[data_off..]),
        })
    }
}

/// ARP operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An ARP packet (IPv4 over Ethernet). Requests resolve an instance's MAC;
/// gratuitous replies announce a changed mapping (§3.3.4's migration GARP).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Ethernet source of the frame.
    pub src_mac: MacAddr,
    /// Ethernet destination of the frame (broadcast for requests/GARP).
    pub dst_mac: MacAddr,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// A broadcast who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            src_mac: sender_mac,
            dst_mac: MacAddr::BROADCAST,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// A unicast is-at reply to `to_mac`/`to_ip`.
    pub fn reply(
        sender_mac: MacAddr,
        sender_ip: Ipv4Addr,
        to_mac: MacAddr,
        to_ip: Ipv4Addr,
    ) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            src_mac: sender_mac,
            dst_mac: to_mac,
            sender_mac,
            sender_ip,
            target_mac: to_mac,
            target_ip: to_ip,
        }
    }

    /// Encode into a wire frame.
    pub fn encode(&self) -> Frame {
        let mut buf = BytesMut::with_capacity(ETH_HLEN + 28);
        buf.put_slice(&self.dst_mac.0);
        buf.put_slice(&self.src_mac.0);
        buf.put_u16(ETHERTYPE_ARP);
        buf.put_u16(1); // htype ethernet
        buf.put_u16(ETHERTYPE_IPV4); // ptype
        buf.put_u8(6); // hlen
        buf.put_u8(4); // plen
        buf.put_u16(match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        });
        buf.put_slice(&self.sender_mac.0);
        buf.put_slice(&self.sender_ip.0);
        buf.put_slice(&self.target_mac.0);
        buf.put_slice(&self.target_ip.0);
        Frame(buf.freeze())
    }

    /// Parse an ARP frame.
    pub fn parse(frame: &Frame) -> Option<ArpPacket> {
        let b = frame.bytes();
        if frame.ethertype() != ETHERTYPE_ARP || b.len() < ETH_HLEN + 28 {
            return None;
        }
        let arp = &b[ETH_HLEN..];
        let op = match u16::from_be_bytes([arp[6], arp[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        Some(ArpPacket {
            op,
            src_mac: frame.src_mac(),
            dst_mac: frame.dst_mac(),
            sender_mac: MacAddr(arp[8..14].try_into().unwrap()),
            sender_ip: Ipv4Addr(arp[14..18].try_into().unwrap()),
            target_mac: MacAddr(arp[18..24].try_into().unwrap()),
            target_ip: Ipv4Addr(arp[24..28].try_into().unwrap()),
        })
    }

    /// Is this a gratuitous announcement (reply with target == sender)?
    pub fn is_gratuitous(&self) -> bool {
        self.op == ArpOp::Reply && self.target_ip == self.sender_ip
    }
}

/// A (gratuitous) ARP announcement — §3.3.4 uses GARP to migrate an
/// instance's traffic to a new NIC's MAC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GarpPacket {
    /// The MAC being announced.
    pub sender_mac: MacAddr,
    /// The IP whose mapping is being announced.
    pub sender_ip: Ipv4Addr,
}

impl GarpPacket {
    /// Encode as a broadcast ARP reply (the classic GARP form).
    pub fn encode(&self) -> Frame {
        ArpPacket {
            op: ArpOp::Reply,
            src_mac: self.sender_mac,
            dst_mac: MacAddr::BROADCAST,
            sender_mac: self.sender_mac,
            sender_ip: self.sender_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
        .encode()
    }

    /// Parse an ARP frame as a mapping announcement: any ARP reply carries
    /// a usable sender mapping.
    pub fn parse(frame: &Frame) -> Option<GarpPacket> {
        let arp = ArpPacket::parse(frame)?;
        if arp.op != ArpOp::Reply {
            return None;
        }
        Some(GarpPacket {
            sender_mac: arp.sender_mac,
            sender_ip: arp.sender_ip,
        })
    }
}

fn encode_ipv4_header(
    buf: &mut BytesMut,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    total_len: usize,
) {
    let start = buf.len();
    buf.put_u8(0x45); // version 4, ihl 5
    buf.put_u8(0); // tos
    buf.put_u16(total_len as u16);
    buf.put_u16(0); // id
    buf.put_u16(0x4000); // don't fragment
    buf.put_u8(64); // ttl
    buf.put_u8(proto);
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&src.0);
    buf.put_slice(&dst.0);
    let cksum = internet_checksum(&[&buf[start..start + IPV4_HLEN]]);
    buf[start + 10..start + 12].copy_from_slice(&cksum.to_be_bytes());
}

fn verify_ipv4_header(ip: &[u8]) -> bool {
    ip.len() >= IPV4_HLEN && ip[0] == 0x45 && internet_checksum(&[&ip[..IPV4_HLEN]]) == 0
}

/// L4 checksum over the IPv4 pseudo-header plus the segment.
fn l4_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let len = (segment.len() as u16).to_be_bytes();
    let pseudo = [
        src.0[0], src.0[1], src.0[2], src.0[3], dst.0[0], dst.0[1], dst.0[2], dst.0[3], 0, proto,
        len[0], len[1],
    ];
    internet_checksum(&[&pseudo, segment])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udp(payload: &[u8]) -> UdpPacket {
        UdpPacket {
            src_mac: MacAddr::nic(1),
            dst_mac: MacAddr::nic(2),
            src_ip: Ipv4Addr::instance(1),
            dst_ip: Ipv4Addr::instance(2),
            src_port: 1234,
            dst_port: 80,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn udp_roundtrip() {
        let p = udp(b"hello oasis");
        let frame = p.encode();
        assert_eq!(frame.dst_mac(), MacAddr::nic(2));
        assert_eq!(frame.src_mac(), MacAddr::nic(1));
        assert_eq!(frame.dst_ip(), Some(Ipv4Addr::instance(2)));
        assert_eq!(frame.src_ip(), Some(Ipv4Addr::instance(1)));
        let q = UdpPacket::parse(&frame).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn udp_empty_payload() {
        let p = udp(b"");
        let q = UdpPacket::parse(&p.encode()).unwrap();
        assert_eq!(q.payload.len(), 0);
    }

    #[test]
    fn corrupted_udp_rejected() {
        let frame = udp(b"payload").encode();
        let mut bytes = frame.bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(UdpPacket::parse(&Frame(Bytes::from(bytes))).is_none());
    }

    #[test]
    fn corrupted_ip_header_rejected() {
        let frame = udp(b"x").encode();
        let mut bytes = frame.bytes().to_vec();
        bytes[ETH_HLEN + 8] = 63; // flip TTL without fixing the checksum
        assert!(UdpPacket::parse(&Frame(Bytes::from(bytes))).is_none());
    }

    #[test]
    fn tcp_roundtrip_with_flags() {
        let seg = TcpSegment {
            src_mac: MacAddr::nic(3),
            dst_mac: MacAddr::client(1),
            src_ip: Ipv4Addr::instance(3),
            dst_ip: Ipv4Addr::client(1),
            src_port: 11211,
            dst_port: 50000,
            seq: 0xdead_beef,
            ack: 0x1234_5678,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 65535,
            payload: Bytes::from_static(b"VALUE k 0 3\r\nabc\r\nEND\r\n"),
        };
        let q = TcpSegment::parse(&seg.encode()).unwrap();
        assert_eq!(seg, q);
    }

    #[test]
    fn tcp_parse_rejects_udp_frame() {
        let frame = udp(b"not tcp").encode();
        assert!(TcpSegment::parse(&frame).is_none());
    }

    #[test]
    fn garp_roundtrip_and_broadcast() {
        let g = GarpPacket {
            sender_mac: MacAddr::nic(7),
            sender_ip: Ipv4Addr::instance(9),
        };
        let frame = g.encode();
        assert!(frame.dst_mac().is_broadcast());
        assert_eq!(frame.src_mac(), MacAddr::nic(7));
        assert_eq!(GarpPacket::parse(&frame).unwrap(), g);
        assert!(UdpPacket::parse(&frame).is_none());
    }

    #[test]
    fn arp_request_reply_roundtrip() {
        let req = ArpPacket::request(
            MacAddr::client(1),
            Ipv4Addr::client(1),
            Ipv4Addr::instance(7),
        );
        let frame = req.encode();
        assert!(frame.dst_mac().is_broadcast());
        let parsed = ArpPacket::parse(&frame).unwrap();
        assert_eq!(parsed, req);
        assert!(!parsed.is_gratuitous());

        let rep = ArpPacket::reply(
            MacAddr::nic(0),
            Ipv4Addr::instance(7),
            MacAddr::client(1),
            Ipv4Addr::client(1),
        );
        let parsed = ArpPacket::parse(&rep.encode()).unwrap();
        assert_eq!(parsed, rep);
        assert!(!parsed.is_gratuitous());
        // A GARP is gratuitous and parses via both views.
        let garp = GarpPacket {
            sender_mac: MacAddr::nic(3),
            sender_ip: Ipv4Addr::instance(3),
        };
        assert!(ArpPacket::parse(&garp.encode()).unwrap().is_gratuitous());
    }

    #[test]
    fn arp_requests_are_not_garps() {
        let req = ArpPacket::request(
            MacAddr::client(1),
            Ipv4Addr::client(1),
            Ipv4Addr::instance(7),
        );
        assert!(GarpPacket::parse(&req.encode()).is_none());
    }

    #[test]
    fn internet_checksum_known_vector() {
        // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2,
        // checksum !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&[&data]), 0x220d);
    }

    #[test]
    fn internet_checksum_odd_length() {
        // Odd final byte is padded with zero.
        let even = internet_checksum(&[&[0xab, 0x00]]);
        let odd = internet_checksum(&[&[0xab]]);
        assert_eq!(even, odd);
    }

    #[test]
    fn checksum_split_across_chunks() {
        let whole = internet_checksum(&[&[1, 2, 3, 4, 5, 6]]);
        let split = internet_checksum(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(whole, split);
    }

    #[test]
    fn max_mtu_frame() {
        let payload = vec![0x5a; 1500 - IPV4_HLEN - UDP_HLEN];
        let p = udp(&payload);
        let frame = p.encode();
        assert_eq!(frame.len(), ETH_HLEN + 1500);
        assert_eq!(
            UdpPacket::parse(&frame).unwrap().payload.len(),
            payload.len()
        );
    }
}
