//! MAC and IPv4 address types.

use core::fmt;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (unset).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Deterministic locally-administered MAC for the `i`-th simulated NIC.
    pub fn nic(i: u64) -> MacAddr {
        let b = i.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x0a, b[4], b[5], b[6], b[7]])
    }

    /// Deterministic MAC for the `i`-th external client endpoint.
    pub fn client(i: u64) -> MacAddr {
        let b = i.to_be_bytes();
        MacAddr([0x02, 0x0c, b[4], b[5], b[6], b[7]])
    }

    /// Is this the broadcast address?
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0; 4]);

    /// Deterministic address for the `i`-th instance: `10.0.x.y`.
    pub fn instance(i: u32) -> Ipv4Addr {
        Ipv4Addr([10, 0, (i >> 8) as u8, i as u8])
    }

    /// Deterministic address for the `i`-th external client: `10.1.x.y`.
    pub fn client(i: u32) -> Ipv4Addr {
        Ipv4Addr([10, 1, (i >> 8) as u8, i as u8])
    }

    /// Big-endian `u32` form (used in 16 B channel messages).
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// From big-endian `u32`.
    pub fn from_u32(v: u32) -> Ipv4Addr {
        Ipv4Addr(v.to_be_bytes())
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_formatting() {
        assert_eq!(format!("{}", MacAddr::BROADCAST), "ff:ff:ff:ff:ff:ff");
        assert_eq!(format!("{}", MacAddr::nic(1)), "02:0a:00:00:00:01");
    }

    #[test]
    fn macs_are_unique_per_index() {
        assert_ne!(MacAddr::nic(1), MacAddr::nic(2));
        assert_ne!(MacAddr::nic(1), MacAddr::client(1));
        assert!(!MacAddr::nic(5).is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn ipv4_u32_roundtrip() {
        let ip = Ipv4Addr::instance(777);
        assert_eq!(Ipv4Addr::from_u32(ip.to_u32()), ip);
        assert_eq!(format!("{}", Ipv4Addr::instance(0x0102)), "10.0.1.2");
        assert_eq!(format!("{}", Ipv4Addr::client(3)), "10.1.0.3");
    }
}
