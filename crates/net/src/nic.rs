//! Simulated NIC with DPDK-like queue pairs.
//!
//! The backend driver programs this NIC the way DPDK programs a ConnectX-5:
//! post a TX work-queue entry carrying a buffer pointer ([`TxDesc`]), poll TX
//! completions, keep the RX ring stocked with free buffers ([`RxDesc`]), and
//! poll RX completions. Two properties of the real device matter to Oasis
//! and are modelled faithfully:
//!
//! * **DMA bypasses CPU caches** (DDIO disabled, §3.2.1): buffer reads and
//!   writes go through [`DmaMemory`], which resolves to pool memory or
//!   host-local DRAM directly — never through a `HostCtx` cache.
//! * **Flow tagging** (§3.3.1): `rte_flow`-style exact-match rules on the
//!   destination IP attach a tag to RX completions so the backend driver can
//!   route a packet to its instance *without inspecting the payload*.
//!
//! Bandwidth is modelled by serialization delay at the configured line rate;
//! link state supports the §5.3 failure injection (switch-port disable
//! drops carrier).

use std::collections::VecDeque;

use oasis_cxl::dma::{DmaMemory, MemRef};
use oasis_sim::time::{SimDuration, SimTime};

use crate::addr::{Ipv4Addr, MacAddr};
use crate::packet::Frame;
use crate::WIRE_OVERHEAD_BYTES;

/// A TX work-queue entry: transmit `len` bytes from `mem`.
#[derive(Clone, Copy, Debug)]
pub struct TxDesc {
    /// Frame bytes to transmit.
    pub mem: MemRef,
    /// Frame length.
    pub len: u32,
    /// Opaque driver cookie returned in the completion.
    pub cookie: u64,
}

/// Completion of a TX descriptor.
#[derive(Clone, Copy, Debug)]
pub struct TxCompletion {
    /// The descriptor's cookie.
    pub cookie: u64,
    /// False if the frame was dropped (link down).
    pub ok: bool,
    /// When the transmit finished on the wire.
    pub done_at: SimTime,
}

/// A free RX buffer posted to the NIC.
#[derive(Clone, Copy, Debug)]
pub struct RxDesc {
    /// Where the NIC may DMA a received frame.
    pub mem: MemRef,
    /// Buffer capacity in bytes.
    pub capacity: u32,
    /// Opaque driver cookie returned in the completion.
    pub cookie: u64,
}

/// Completion of a received frame.
#[derive(Clone, Debug)]
pub struct RxCompletion {
    /// Cookie of the RX descriptor consumed.
    pub cookie: u64,
    /// Buffer holding the frame.
    pub mem: MemRef,
    /// Frame length.
    pub len: u32,
    /// Flow tag if a flow rule matched the destination IP (§3.3.1).
    pub tag: Option<u32>,
    /// When the DMA write completed.
    pub at: SimTime,
}

/// Static NIC configuration.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Line rate in Gbit/s (the paper's testbed: 100).
    pub bandwidth_gbps: f64,
    /// RX descriptor ring capacity.
    pub rx_ring: usize,
    /// TX queue capacity.
    pub tx_ring: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            bandwidth_gbps: 100.0,
            rx_ring: 1024,
            tx_ring: 1024,
        }
    }
}

/// Drop / traffic counters.
#[derive(Clone, Debug, Default)]
pub struct NicStats {
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Bytes transmitted (L2).
    pub tx_bytes: u64,
    /// Frames received and delivered to the driver.
    pub rx_frames: u64,
    /// Bytes received (L2).
    pub rx_bytes: u64,
    /// TX descriptors failed because the link was down.
    pub tx_dropped_link: u64,
    /// Arrived frames dropped because no RX descriptor was available.
    pub rx_dropped_no_desc: u64,
    /// Arrived frames dropped because the link was down.
    pub rx_dropped_link: u64,
    /// TX descriptors rejected because the TX queue was full.
    pub tx_rejected_full: u64,
}

/// The simulated NIC.
pub struct Nic {
    mac: MacAddr,
    cfg: NicConfig,
    link_up: bool,
    tx_queue: VecDeque<TxDesc>,
    tx_completions: VecDeque<TxCompletion>,
    rx_free: VecDeque<RxDesc>,
    rx_completions: VecDeque<RxCompletion>,
    /// Frames delivered by the switch, with their arrival time.
    inbound: VecDeque<(SimTime, Frame)>,
    flow_table: Vec<(Ipv4Addr, u32)>,
    /// When the transmit serializer is next free.
    tx_free_at: SimTime,
    /// Traffic and drop counters.
    pub stats: NicStats,
}

impl Nic {
    /// A NIC with the given MAC and configuration, link up.
    pub fn new(mac: MacAddr, cfg: NicConfig) -> Self {
        Nic {
            mac,
            cfg,
            link_up: true,
            tx_queue: VecDeque::new(),
            tx_completions: VecDeque::new(),
            rx_free: VecDeque::new(),
            rx_completions: VecDeque::new(),
            inbound: VecDeque::new(),
            flow_table: Vec::new(),
            tx_free_at: SimTime::ZERO,
            stats: NicStats::default(),
        }
    }

    /// The NIC's burned-in MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Line rate in Gbit/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.cfg.bandwidth_gbps
    }

    /// Current carrier state. The backend driver monitors this to detect
    /// hardware faults, cable disconnections, and switch linecard issues
    /// (§3.3.3).
    pub fn link_up(&self) -> bool {
        self.link_up
    }

    /// Set carrier state (failure injection / recovery).
    pub fn set_link(&mut self, up: bool) {
        self.link_up = up;
    }

    /// Install an `rte_flow`-style rule: packets to `dst_ip` are tagged
    /// with `tag` in their RX completion.
    pub fn add_flow(&mut self, dst_ip: Ipv4Addr, tag: u32) {
        self.remove_flow(dst_ip);
        self.flow_table.push((dst_ip, tag));
    }

    /// Remove the flow rule for `dst_ip`, if any.
    pub fn remove_flow(&mut self, dst_ip: Ipv4Addr) {
        self.flow_table.retain(|(ip, _)| *ip != dst_ip);
    }

    /// Number of installed flow rules.
    pub fn flow_count(&self) -> usize {
        self.flow_table.len()
    }

    /// Post a TX work-queue entry. Returns `false` if the TX queue is full.
    pub fn post_tx(&mut self, desc: TxDesc) -> bool {
        if self.tx_queue.len() >= self.cfg.tx_ring {
            self.stats.tx_rejected_full += 1;
            return false;
        }
        self.tx_queue.push_back(desc);
        true
    }

    /// Post a free RX buffer. Returns `false` if the RX ring is full.
    pub fn post_rx(&mut self, desc: RxDesc) -> bool {
        if self.rx_free.len() >= self.cfg.rx_ring {
            return false;
        }
        self.rx_free.push_back(desc);
        true
    }

    /// Free RX descriptors currently posted.
    pub fn rx_free_count(&self) -> usize {
        self.rx_free.len()
    }

    /// Called by the switch fabric to hand the NIC a frame arriving at
    /// `at`.
    pub fn deliver(&mut self, at: SimTime, frame: Frame) {
        self.inbound.push_back((at, frame));
    }

    /// Serialization time of a frame at line rate (includes preamble, FCS,
    /// and inter-frame gap).
    fn serialize_ns(&self, len: u64) -> u64 {
        let bits = (len + WIRE_OVERHEAD_BYTES) * 8;
        (bits as f64 / self.cfg.bandwidth_gbps).ceil() as u64
    }

    /// Process queued TX descriptors and arrived frames up to `now`.
    /// Returns frames put on the wire as `(egress_complete_time, frame)`;
    /// the caller forwards them to the switch.
    pub fn process(&mut self, now: SimTime, dma: &mut dyn DmaMemory) -> Vec<(SimTime, Frame)> {
        let mut egress = Vec::new();

        // --- TX path ---
        while let Some(desc) = self.tx_queue.pop_front() {
            if !self.link_up {
                self.stats.tx_dropped_link += 1;
                self.tx_completions.push_back(TxCompletion {
                    cookie: desc.cookie,
                    ok: false,
                    done_at: now,
                });
                continue;
            }
            let mut buf = vec![0u8; desc.len as usize];
            dma.dma_read(now, desc.mem, &mut buf);
            let dma_ns = dma.dma_latency_ns(desc.mem);
            // The DMA fetch pipelines with serialization of earlier frames:
            // a frame starts on the wire once its data has arrived AND the
            // serializer is free.
            let start = (now + SimDuration::from_nanos(dma_ns)).max(self.tx_free_at);
            let done = start + SimDuration::from_nanos(self.serialize_ns(desc.len as u64));
            self.tx_free_at = done;
            self.stats.tx_frames += 1;
            self.stats.tx_bytes += desc.len as u64;
            self.tx_completions.push_back(TxCompletion {
                cookie: desc.cookie,
                ok: true,
                done_at: done,
            });
            egress.push((done, Frame(bytes::Bytes::from(buf))));
        }

        // --- RX path ---
        while let Some(&(at, _)) = self.inbound.front() {
            if at > now {
                break;
            }
            let (at, frame) = self.inbound.pop_front().unwrap();
            if !self.link_up {
                self.stats.rx_dropped_link += 1;
                continue;
            }
            let Some(desc) = self.rx_free.front().copied() else {
                self.stats.rx_dropped_no_desc += 1;
                continue;
            };
            if (desc.capacity as usize) < frame.len() {
                // Oversized for the posted buffer: drop, keep the
                // descriptor (mirrors MTU misconfiguration behaviour).
                self.stats.rx_dropped_no_desc += 1;
                continue;
            }
            self.rx_free.pop_front();
            let tag = frame
                .dst_ip()
                .and_then(|ip| self.flow_table.iter().find(|(r, _)| *r == ip))
                .map(|&(_, tag)| tag);
            dma.dma_write(at, desc.mem, frame.bytes());
            let dma_ns = dma.dma_latency_ns(desc.mem);
            self.stats.rx_frames += 1;
            self.stats.rx_bytes += frame.len() as u64;
            self.rx_completions.push_back(RxCompletion {
                cookie: desc.cookie,
                mem: desc.mem,
                len: frame.len() as u32,
                tag,
                at: at + SimDuration::from_nanos(dma_ns),
            });
        }

        egress
    }

    /// Drain TX completions that finished by `now`.
    pub fn poll_tx_completions(&mut self, now: SimTime) -> Vec<TxCompletion> {
        let mut out = Vec::new();
        while let Some(c) = self.tx_completions.front() {
            if c.done_at > now {
                break;
            }
            out.push(self.tx_completions.pop_front().unwrap());
        }
        out
    }

    /// Drain RX completions that finished by `now`.
    pub fn poll_rx_completions(&mut self, now: SimTime) -> Vec<RxCompletion> {
        let mut out = Vec::new();
        while let Some(c) = self.rx_completions.front() {
            if c.at > now {
                break;
            }
            out.push(self.rx_completions.pop_front().unwrap());
        }
        out
    }

    /// Earliest time at which this NIC has pending work to surface (for
    /// scheduler wake-up planning). `None` when fully idle.
    pub fn next_event_at(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut consider = |x: SimTime| t = Some(t.map_or(x, |cur: SimTime| cur.min(x)));
        if let Some(c) = self.tx_completions.front() {
            consider(c.done_at);
        }
        if let Some(c) = self.rx_completions.front() {
            consider(c.at);
        }
        if let Some(&(at, _)) = self.inbound.front() {
            consider(at);
        }
        if !self.tx_queue.is_empty() {
            consider(SimTime::ZERO);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::UdpPacket;
    use bytes::Bytes;

    /// Trivial DMA world: one flat pool-like memory.
    struct FlatMem {
        mem: Vec<u8>,
    }

    impl DmaMemory for FlatMem {
        fn dma_read(&mut self, _now: SimTime, mem: MemRef, out: &mut [u8]) {
            let MemRef::Pool(a) = mem else { panic!() };
            out.copy_from_slice(&self.mem[a as usize..a as usize + out.len()]);
        }
        fn dma_write(&mut self, _now: SimTime, mem: MemRef, data: &[u8]) {
            let MemRef::Pool(a) = mem else { panic!() };
            self.mem[a as usize..a as usize + data.len()].copy_from_slice(data);
        }
        fn dma_latency_ns(&self, _mem: MemRef) -> u64 {
            850
        }
    }

    fn test_frame(dst_ip: Ipv4Addr, payload_len: usize) -> Frame {
        UdpPacket {
            src_mac: MacAddr::client(0),
            dst_mac: MacAddr::nic(0),
            src_ip: Ipv4Addr::client(0),
            dst_ip,
            src_port: 9,
            dst_port: 7,
            payload: Bytes::from(vec![0u8; payload_len]),
        }
        .encode()
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn tx_roundtrip_with_serialization_delay() {
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let mut mem = FlatMem { mem: vec![0; 4096] };
        let frame = test_frame(Ipv4Addr::instance(0), 100);
        mem.mem[..frame.len()].copy_from_slice(frame.bytes());
        assert!(nic.post_tx(TxDesc {
            mem: MemRef::Pool(0),
            len: frame.len() as u32,
            cookie: 42,
        }));
        let egress = nic.process(t(0), &mut mem);
        assert_eq!(egress.len(), 1);
        let (done, out) = &egress[0];
        assert_eq!(out, &frame);
        // dma 850ns + serialization of (142+24)*8 bits at 100G = ~14ns.
        assert_eq!(done.as_nanos(), 850 + 14);
        // Completion visible only after done.
        assert!(nic.poll_tx_completions(t(100)).is_empty());
        let comps = nic.poll_tx_completions(*done);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].ok);
        assert_eq!(comps[0].cookie, 42);
    }

    #[test]
    fn tx_serializer_backpressure() {
        // Two 1500 B frames: the second's egress starts after the first's
        // serialization finishes.
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let mut mem = FlatMem { mem: vec![0; 8192] };
        let frame = test_frame(Ipv4Addr::instance(0), 1458);
        mem.mem[..frame.len()].copy_from_slice(frame.bytes());
        for c in 0..2 {
            nic.post_tx(TxDesc {
                mem: MemRef::Pool(0),
                len: frame.len() as u32,
                cookie: c,
            });
        }
        let egress = nic.process(t(0), &mut mem);
        let gap = egress[1].0.as_nanos() - egress[0].0.as_nanos();
        let ser = ((frame.len() as u64 + 24) * 8) as f64 / 100.0;
        assert_eq!(gap, ser.ceil() as u64);
    }

    #[test]
    fn link_down_fails_tx() {
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let mut mem = FlatMem { mem: vec![0; 256] };
        nic.set_link(false);
        nic.post_tx(TxDesc {
            mem: MemRef::Pool(0),
            len: 64,
            cookie: 1,
        });
        let egress = nic.process(t(0), &mut mem);
        assert!(egress.is_empty());
        let comps = nic.poll_tx_completions(t(0));
        assert_eq!(comps.len(), 1);
        assert!(!comps[0].ok);
        assert_eq!(nic.stats.tx_dropped_link, 1);
    }

    #[test]
    fn rx_delivery_with_flow_tag() {
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let mut mem = FlatMem { mem: vec![0; 4096] };
        let ip = Ipv4Addr::instance(5);
        nic.add_flow(ip, 99);
        nic.post_rx(RxDesc {
            mem: MemRef::Pool(1024),
            capacity: 2048,
            cookie: 7,
        });
        let frame = test_frame(ip, 64);
        nic.deliver(t(100), frame.clone());
        nic.process(t(200), &mut mem);
        let comps = nic.poll_rx_completions(t(100 + 850));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].tag, Some(99));
        assert_eq!(comps[0].cookie, 7);
        assert_eq!(comps[0].len as usize, frame.len());
        // Frame bytes actually DMA'd into the buffer.
        assert_eq!(&mem.mem[1024..1024 + frame.len()], frame.bytes());
    }

    #[test]
    fn rx_without_matching_flow_untagged() {
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let mut mem = FlatMem { mem: vec![0; 4096] };
        nic.add_flow(Ipv4Addr::instance(1), 1);
        nic.post_rx(RxDesc {
            mem: MemRef::Pool(0),
            capacity: 2048,
            cookie: 0,
        });
        nic.deliver(t(0), test_frame(Ipv4Addr::instance(2), 64));
        nic.process(t(0), &mut mem);
        let comps = nic.poll_rx_completions(t(10_000));
        assert_eq!(comps[0].tag, None);
    }

    #[test]
    fn rx_drop_when_no_descriptor() {
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let mut mem = FlatMem { mem: vec![0; 256] };
        nic.deliver(t(0), test_frame(Ipv4Addr::instance(0), 64));
        nic.process(t(0), &mut mem);
        assert_eq!(nic.stats.rx_dropped_no_desc, 1);
        assert!(nic.poll_rx_completions(t(10_000)).is_empty());
    }

    #[test]
    fn rx_not_processed_before_arrival() {
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let mut mem = FlatMem { mem: vec![0; 4096] };
        nic.post_rx(RxDesc {
            mem: MemRef::Pool(0),
            capacity: 2048,
            cookie: 0,
        });
        nic.deliver(t(500), test_frame(Ipv4Addr::instance(0), 64));
        nic.process(t(100), &mut mem);
        assert_eq!(nic.stats.rx_frames, 0);
        nic.process(t(500), &mut mem);
        assert_eq!(nic.stats.rx_frames, 1);
    }

    #[test]
    fn flow_replace_and_remove() {
        let mut nic = Nic::new(MacAddr::nic(0), NicConfig::default());
        let ip = Ipv4Addr::instance(1);
        nic.add_flow(ip, 1);
        nic.add_flow(ip, 2); // replace
        assert_eq!(nic.flow_count(), 1);
        nic.remove_flow(ip);
        assert_eq!(nic.flow_count(), 0);
    }

    #[test]
    fn tx_ring_capacity_enforced() {
        let mut nic = Nic::new(
            MacAddr::nic(0),
            NicConfig {
                tx_ring: 1,
                ..Default::default()
            },
        );
        assert!(nic.post_tx(TxDesc {
            mem: MemRef::Pool(0),
            len: 64,
            cookie: 0,
        }));
        assert!(!nic.post_tx(TxDesc {
            mem: MemRef::Pool(0),
            len: 64,
            cookie: 1,
        }));
        assert_eq!(nic.stats.tx_rejected_full, 1);
    }
}
