//! Simulated datacenter network substrate.
//!
//! The paper's testbed is a 100 Gbit Mellanox ConnectX-5 NIC per host plus an
//! Arista ToR switch. This crate provides the simulated equivalents the Oasis
//! network engine drives:
//!
//! * [`addr`] — MAC / IPv4 address types,
//! * [`packet`] — real Ethernet / ARP / IPv4 / UDP / TCP header codecs
//!   (packets on the simulated wire are real byte buffers; the engines and
//!   instances parse them exactly as a kernel-bypass stack would),
//! * [`nic`] — a NIC with descriptor-ring queue pairs, a DMA engine that
//!   bypasses CPU caches, `rte_flow`-style destination-IP tagging, a
//!   serialization-rate bandwidth model, link state, and failure injection,
//! * [`switch`] — a MAC-learning store-and-forward switch with per-port
//!   admin state (disabling a port is how §5.3 injects NIC failures).
//!
//! The NIC's driver-facing surface mirrors what DPDK exposes: post a work
//! queue entry carrying a buffer pointer, poll completions, refill RX
//! descriptors. That is the surface the Oasis backend driver (in
//! `oasis-core`) programs.

pub mod addr;
pub mod nic;
pub mod packet;
pub mod switch;

pub use addr::{Ipv4Addr, MacAddr};
pub use nic::{Nic, NicConfig, RxCompletion, RxDesc, TxCompletion, TxDesc};
pub use oasis_cxl::dma::{DmaMemory, MemRef};
pub use packet::Frame;
pub use switch::{Switch, SwitchPort};

/// Per-frame wire overhead besides the L2 payload: preamble (8 B), FCS
/// (4 B), and inter-frame gap (12 B). Used when converting frame sizes to
/// line-rate utilization, as the paper does when accounting for Ethernet
/// line-coding.
pub const WIRE_OVERHEAD_BYTES: u64 = 24;
