//! Device-side memory access.
//!
//! PCIe devices (NICs, SSDs) reach memory through DMA, which — with DDIO
//! disabled as the paper assumes (§3.2.1) — bypasses every CPU cache. A
//! device's buffer may live either in the shared CXL pool (the Oasis
//! datapath) or in its host's local DRAM (the baseline configuration), so
//! DMA is abstracted over [`MemRef`]; the pod world implements [`DmaMemory`]
//! by dispatching to [`crate::CxlPool`] or the owning host's DRAM.

use oasis_sim::time::SimTime;

/// Where an I/O buffer lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemRef {
    /// Shared CXL pool memory at this address.
    Pool(u64),
    /// The device's host's local DRAM at this address.
    HostLocal(u64),
}

/// How a device reaches memory. Both paths bypass CPU caches.
pub trait DmaMemory {
    /// DMA read `out.len()` bytes from `mem`.
    fn dma_read(&mut self, now: SimTime, mem: MemRef, out: &mut [u8]);
    /// DMA write `data` to `mem`.
    fn dma_write(&mut self, now: SimTime, mem: MemRef, data: &[u8]);
    /// Access latency for a DMA transaction against `mem`.
    fn dma_latency_ns(&self, mem: MemRef) -> u64;
}
