//! Simulated CXL 2.0 memory pool with *functional* non-coherence.
//!
//! The Oasis paper builds on a multi-headed CXL memory device (MHD) shared by
//! several hosts. Crucially, CXL 2.0 pools are **not cache-coherent across
//! hosts**: a host that caches a line keeps reading its stale copy after
//! another host (or a device DMA) overwrites pool memory, and a host's dirty
//! cached write is invisible to everyone else until it is written back. The
//! entire design of Oasis's datapath (§3.2 of the paper) exists to manage
//! this, so this crate models non-coherence functionally, not just as a
//! latency number:
//!
//! * [`pool::CxlPool`] — flat pool memory plus per-host-port link meters that
//!   attribute traffic to a [`pool::TrafficClass`] (payload vs. message
//!   vs. control — Table 3 of the paper splits bandwidth this way).
//! * [`cache::HostCache`] — a per-host write-back cache of 64 B lines with
//!   LRU eviction and prefetch tracking. Reads hit stale snapshots; dirty
//!   lines are invisible to the pool until `clwb`/`clflushopt`/eviction.
//! * [`host::HostCtx`] — the CPU-visible memory-operation API
//!   (`read`/`write`/`clflushopt`/`clwb`/`mfence`/`prefetch`), every
//!   operation advancing the host's cycle-accounted local clock per
//!   [`cost::CostModel`].
//! * Device DMA ([`pool::CxlPool::dma_read`]/[`pool::CxlPool::dma_write`])
//!   bypasses all CPU caches, exactly as the paper assumes once DDIO is
//!   disabled (§3.2.1).
//!
//! Latency constants are calibrated to the paper's published ratios: CXL
//! load-to-use ≈ 2.3× local DDR, one-way message latency ≈ 0.6 µs.

pub mod cache;
pub mod cost;
pub mod dma;
pub mod host;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod region;
#[cfg(feature = "sanitize")]
pub mod sanitizer;
pub mod topology;

pub use cache::HostCache;
pub use cost::CostModel;
pub use dma::{DmaMemory, MemRef};
pub use host::HostCtx;
pub use pool::{CxlPool, LinkMeter, PortId, TrafficClass};
pub use region::{Region, RegionAllocator};
#[cfg(feature = "sanitize")]
pub use sanitizer::{Report, ReportKind, Sanitizer, Severity};
pub use topology::{CrossPodLink, FleetTopology, PodTopology};

/// Cache-line size in bytes; everything in the pool is managed at this
/// granularity.
pub const LINE: u64 = 64;

/// Round an address down to its line base.
#[inline]
pub fn line_base(addr: u64) -> u64 {
    addr & !(LINE - 1)
}

/// Iterate over the base addresses of all lines touched by `[addr, addr+len)`
/// (a zero-length access still touches its containing line).
#[inline]
pub fn lines_covering(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = line_base(addr);
    let last = if len == 0 {
        first
    } else {
        line_base(addr + len - 1)
    };
    (first..=last).step_by(LINE as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_masks_low_bits() {
        assert_eq!(line_base(0), 0);
        assert_eq!(line_base(63), 0);
        assert_eq!(line_base(64), 64);
        assert_eq!(line_base(130), 128);
    }

    #[test]
    fn lines_covering_spans() {
        let v: Vec<u64> = lines_covering(10, 4).collect();
        assert_eq!(v, vec![0]);
        let v: Vec<u64> = lines_covering(60, 8).collect();
        assert_eq!(v, vec![0, 64]);
        let v: Vec<u64> = lines_covering(64, 128).collect();
        assert_eq!(v, vec![64, 128]);
        let v: Vec<u64> = lines_covering(0, 0).collect();
        assert_eq!(v, vec![0]);
    }
}
