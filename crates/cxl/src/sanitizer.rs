//! Coherence sanitizer: shadow-state tracking of every memory operation.
//!
//! The pool is *non-coherent by design* (§3.2): a host that skips a
//! `clflushopt`/`mfence` really reads stale data, and the only thing
//! standing between the datapath and silent corruption is the software
//! coherence discipline the drivers follow. Chaos testing found exactly one
//! such bug (PR 2: reused DMA buffers keeping clean cached lines) — by
//! chance. This module catches that class of bug systematically.
//!
//! Compiled only under the `sanitize` cargo feature. When enabled, the
//! [`Sanitizer`] lives inside [`crate::CxlPool`] and observes every
//! [`crate::HostCtx`] operation (read/write/clwb/clflushopt/mfence/
//! prefetch), every posted write-back, and every DMA transfer. It is a
//! **pure observer**: it never touches host clocks, link meters, or pool
//! memory, so simulation results are bit-identical with the feature on or
//! off — only wall-clock time changes.
//!
//! ## Shadow state
//!
//! Per 64 B line the sanitizer keeps a *version* (a global epoch counter
//! bumped whenever new data becomes visible in pool memory: a write-back
//! applying, or a device DMA write), the identity of the writer, and the
//! line's still-in-flight posted write-backs. Per (line, host) it keeps the
//! version the host's cached snapshot reflects and the host's last
//! operation on the line; per host it keeps flush/fence ordering counters.
//! Presence and dirtiness are never mirrored — they are queried live from
//! the real [`crate::HostCache`] at the annotation points, so the shadow
//! can not drift from the cache it describes.
//!
//! ## Detectors
//!
//! Two kinds of check sites exist. *Implicit* sites fire on the ops
//! themselves: double-flush waste and no-op fences. *Annotated* sites fire
//! where driver code declares its coherence intent via
//! [`crate::HostCtx::publish`] / [`crate::HostCtx::publish_fenced`] /
//! [`crate::HostCtx::expect_fresh`]: unflushed publishes, missing fences
//! before doorbells, cross-host stale reads, and reads of torn/in-flight
//! write-back lines. Polling reads (channel receivers spinning on an epoch
//! bit) are *not* annotated — reading a stale line and retrying is the
//! protocol working as designed, so only declared acquire points are
//! checked for staleness.

use oasis_sim::detmap::DetMap;
use oasis_sim::time::SimTime;

use oasis_sim::addrmap::AddrMap;

use crate::line_base;
use crate::pool::PortId;

/// What a diagnostic is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReportKind {
    /// An annotated acquire point read a present cache line whose snapshot
    /// predates the current pool contents (or whose dirty local data masks
    /// a newer remote write).
    StaleRead,
    /// An annotated acquire point read a line with another host's
    /// write-back still in flight: the bytes observed are about to change.
    TornRead,
    /// A device DMA read covered a line with a CPU write-back still in
    /// flight — the device sees pre-write-back data.
    TornDmaRead,
    /// An annotated publish point covered a line still dirty in the
    /// publishing host's cache: receivers/devices can never see the data.
    UnflushedPublish,
    /// A fenced publish point (doorbell) was reached with a flush not yet
    /// covered by an `mfence`: the doorbell can overtake the data.
    MissingFence,
    /// A flush (`clwb`/`clflushopt`) of a line that the same kind of flush
    /// already cleaned, with no intervening access — wasted CPU.
    DoubleFlush,
    /// An `mfence` with no flush issued since the last fence and no own
    /// write-backs in flight — wasted CPU.
    NoopFence,
}

impl ReportKind {
    /// Stable label used in rendered reports.
    pub fn label(self) -> &'static str {
        match self {
            ReportKind::StaleRead => "stale-read",
            ReportKind::TornRead => "torn-read",
            ReportKind::TornDmaRead => "torn-dma-read",
            ReportKind::UnflushedPublish => "unflushed-publish",
            ReportKind::MissingFence => "missing-fence",
            ReportKind::DoubleFlush => "double-flush",
            ReportKind::NoopFence => "noop-fence",
        }
    }

    /// Errors are coherence-protocol violations; warnings are wasted work.
    pub fn severity(self) -> Severity {
        match self {
            ReportKind::StaleRead
            | ReportKind::TornRead
            | ReportKind::TornDmaRead
            | ReportKind::UnflushedPublish
            | ReportKind::MissingFence => Severity::Error,
            ReportKind::DoubleFlush | ReportKind::NoopFence => Severity::Warning,
        }
    }
}

/// Report severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A coherence violation: some agent observed (or published) wrong
    /// bytes relative to the declared protocol intent.
    Error,
    /// Wasted work (correct but needlessly slow).
    Warning,
}

/// One diagnostic, carrying everything needed to localize the bug.
#[derive(Clone, Debug)]
pub struct Report {
    /// Detector that fired.
    pub kind: ReportKind,
    /// Error or warning.
    pub severity: Severity,
    /// Host (CXL port) whose operation triggered the report.
    pub port: PortId,
    /// Pool address (line base) involved.
    pub addr: u64,
    /// Name of the region the address falls in, if registered.
    pub region: Option<String>,
    /// Simulated time of the triggering operation (the host's local clock).
    pub time: SimTime,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} host{} addr={:#x} region={} t={}ns: {}",
            match self.severity {
                Severity::Error => "ERROR",
                Severity::Warning => "warn",
            },
            self.kind.label(),
            self.port.0,
            self.addr,
            self.region.as_deref().unwrap_or("?"),
            self.time.as_nanos(),
            self.detail
        )
    }
}

/// The last thing a host did to a line (shadow granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum LastOp {
    #[default]
    None,
    /// Demand or RFO fill, streaming fill.
    Fill,
    /// Asynchronous prefetch fill.
    Prefetch,
    /// Cached read hit.
    Read,
    /// Local store.
    Write,
    /// `clwb` (line kept cached).
    Clwb,
    /// `clflushopt` (line evicted).
    Clflush,
}

/// Who last made pool memory at a line visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Writer {
    /// Initial zeroed memory (or test `poke`).
    Init,
    /// A CPU write-back from this port applied.
    Host(PortId),
    /// A device DMA write through this port.
    Dma(PortId),
}

/// Per-(line, host) shadow entry. Slots whose `gen` predates the host's
/// current generation (bumped on crash/restart cache drops) are treated as
/// empty.
#[derive(Clone, Copy, Debug, Default)]
struct PortSnap {
    gen: u32,
    /// Line version the host's cached snapshot reflects.
    snap: u64,
    /// Last op this host performed on the line.
    last_op: LastOp,
    /// Host op-sequence number of the last flush of this line.
    flush_op: u64,
}

/// Per-line shadow state.
struct LineShadow {
    /// Version of the bytes currently visible in pool memory.
    ver: u64,
    /// Who produced them.
    writer: Writer,
    /// Posted write-backs not yet visible: (posting port, visible_at).
    pending: Vec<(PortId, SimTime)>,
    /// Per-port snapshot info, indexed by port number.
    snaps: Vec<PortSnap>,
}

impl LineShadow {
    fn new(ports: usize) -> Self {
        LineShadow {
            ver: 0,
            writer: Writer::Init,
            pending: Vec::new(),
            snaps: vec![PortSnap::default(); ports],
        }
    }
}

/// Per-host ordering counters.
#[derive(Clone, Debug, Default)]
struct HostShadow {
    /// Monotone per-host operation counter (orders flushes vs fences).
    op_seq: u64,
    /// `op_seq` at the last `mfence`.
    last_fence_op: u64,
    /// Flushes issued since the last fence.
    flushes_since_fence: u64,
    /// Generation; bumped when the host's cache is dropped (crash) so stale
    /// per-line snapshots are ignored.
    gen: u32,
}

/// Cap on stored reports; repeats of an already-seen (kind, port, line) key
/// and anything past the cap are counted but not stored.
const MAX_REPORTS: usize = 1024;

/// The shadow-state tracker. Owned by [`crate::CxlPool`] when the
/// `sanitize` feature is enabled.
pub struct Sanitizer {
    ports: usize,
    lines: AddrMap<LineShadow>,
    hosts: Vec<HostShadow>,
    /// Region name registry: (base, end, name), sorted by base, disjoint.
    regions: Vec<(u64, u64, String)>,
    /// Global visibility epoch counter.
    next_ver: u64,
    reports: Vec<Report>,
    /// (kind, port, line) keys already reported (dedup).
    seen: DetMap<(ReportKind, usize, u64), u64>,
    errors: u64,
    warnings: u64,
    /// Reports dropped past [`MAX_REPORTS`] (still counted above).
    dropped: u64,
}

impl Sanitizer {
    /// Tracker for a pool with `ports` host ports.
    pub fn new(ports: usize) -> Self {
        Sanitizer {
            ports,
            lines: AddrMap::new(),
            hosts: vec![HostShadow::default(); ports],
            regions: Vec::new(),
            next_ver: 0,
            reports: Vec::new(),
            seen: DetMap::default(),
            errors: 0,
            warnings: 0,
            dropped: 0,
        }
    }

    // -- registry -----------------------------------------------------------

    /// Record a region name for diagnostics (called on region allocation;
    /// reused ranges are re-registered under their new name).
    pub fn note_region(&mut self, base: u64, end: u64, name: &str) {
        // Drop anything overlapping the new range (reuse renames it).
        self.regions.retain(|&(b, e, _)| e <= base || b >= end);
        let idx = self.regions.partition_point(|&(b, _, _)| b < base);
        self.regions.insert(idx, (base, end, name.to_string()));
    }

    fn region_of(&self, addr: u64) -> Option<String> {
        let idx = self.regions.partition_point(|&(b, _, _)| b <= addr);
        let (_, e, name) = self.regions.get(idx.checked_sub(1)?)?;
        (addr < *e).then(|| name.clone())
    }

    // -- report plumbing ----------------------------------------------------

    fn report(&mut self, kind: ReportKind, port: PortId, addr: u64, time: SimTime, detail: String) {
        match kind.severity() {
            Severity::Error => self.errors += 1,
            Severity::Warning => self.warnings += 1,
        }
        let key = (kind, port.0, line_base(addr));
        let n = self.seen.entry(key).or_insert(0);
        *n += 1;
        if *n > 1 || self.reports.len() >= MAX_REPORTS {
            self.dropped += 1;
            return;
        }
        let region = self.region_of(addr);
        self.reports.push(Report {
            kind,
            severity: kind.severity(),
            port,
            addr,
            region,
            time,
            detail,
        });
    }

    /// Stored reports (deduplicated by (kind, host, line), capped).
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Take the stored reports, leaving counters intact.
    pub fn take_reports(&mut self) -> Vec<Report> {
        std::mem::take(&mut self.reports)
    }

    /// Total error-severity findings (including deduplicated repeats).
    pub fn error_count(&self) -> u64 {
        self.errors
    }

    /// Total warning-severity findings (including deduplicated repeats).
    pub fn warning_count(&self) -> u64 {
        self.warnings
    }

    /// Findings of one kind stored so far.
    pub fn count_of(&self, kind: ReportKind) -> u64 {
        self.seen
            .iter()
            .filter(|((k, _, _), _)| *k == kind)
            .map(|(_, n)| *n)
            .sum()
    }

    /// One-line summary for harness logs.
    pub fn summary(&self) -> String {
        format!(
            "sanitizer: {} error(s), {} warning(s), {} report(s) stored, {} deduplicated",
            self.errors,
            self.warnings,
            self.reports.len(),
            self.dropped
        )
    }

    fn line_mut(&mut self, la: u64) -> &mut LineShadow {
        let ports = self.ports;
        self.lines.get_or_insert_with(la, || LineShadow::new(ports))
    }

    fn snap_mut<'a>(
        sh: &'a mut LineShadow,
        hosts: &[HostShadow],
        port: PortId,
    ) -> &'a mut PortSnap {
        let s = &mut sh.snaps[port.0];
        if s.gen != hosts[port.0].gen {
            *s = PortSnap {
                gen: hosts[port.0].gen,
                ..PortSnap::default()
            };
        }
        s
    }

    // -- op hooks (called from HostCtx / CxlPool) ---------------------------

    /// A demand/RFO/stream fill installed fresh pool bytes in `port`'s
    /// cache.
    pub(crate) fn on_fill(&mut self, port: PortId, la: u64) {
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        let ver = sh.ver;
        let s = Self::snap_mut(sh, &hosts, port);
        s.snap = ver;
        s.last_op = LastOp::Fill;
        self.hosts = hosts;
    }

    /// An asynchronous prefetch fill (same snapshot semantics as a fill).
    pub(crate) fn on_prefetch_fill(&mut self, port: PortId, la: u64) {
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        let ver = sh.ver;
        let s = Self::snap_mut(sh, &hosts, port);
        s.snap = ver;
        s.last_op = LastOp::Prefetch;
        self.hosts = hosts;
    }

    /// A cached read hit.
    pub(crate) fn on_read_hit(&mut self, port: PortId, la: u64) {
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        Self::snap_mut(sh, &hosts, port).last_op = LastOp::Read;
        self.hosts = hosts;
    }

    /// A local store into the cache.
    pub(crate) fn on_write(&mut self, port: PortId, la: u64) {
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        Self::snap_mut(sh, &hosts, port).last_op = LastOp::Write;
        self.hosts = hosts;
    }

    /// A `clwb`. `was_dirty` is the line's dirtiness before the write-back.
    pub(crate) fn on_clwb(&mut self, port: PortId, la: u64, was_dirty: bool, now: SimTime) {
        self.hosts[port.0].op_seq += 1;
        self.hosts[port.0].flushes_since_fence += 1;
        let op = self.hosts[port.0].op_seq;
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        let s = Self::snap_mut(sh, &hosts, port);
        let double = !was_dirty && s.last_op == LastOp::Clwb;
        s.last_op = LastOp::Clwb;
        s.flush_op = op;
        self.hosts = hosts;
        if double {
            self.report(
                ReportKind::DoubleFlush,
                port,
                la,
                now,
                "clwb of a clean line already written back, no access in between".into(),
            );
        }
    }

    /// A `clflushopt`. `was_present`/`was_dirty` describe the line before.
    pub(crate) fn on_clflush(
        &mut self,
        port: PortId,
        la: u64,
        was_present: bool,
        was_dirty: bool,
        now: SimTime,
    ) {
        self.hosts[port.0].op_seq += 1;
        self.hosts[port.0].flushes_since_fence += 1;
        let op = self.hosts[port.0].op_seq;
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        let s = Self::snap_mut(sh, &hosts, port);
        let double = (!was_present || !was_dirty) && s.last_op == LastOp::Clflush;
        s.last_op = LastOp::Clflush;
        s.flush_op = op;
        s.snap = 0;
        self.hosts = hosts;
        if double {
            self.report(
                ReportKind::DoubleFlush,
                port,
                la,
                now,
                "clflushopt of a line the previous clflushopt already evicted".into(),
            );
        }
    }

    /// An `mfence`. `had_inflight` is whether the host had own posted
    /// write-backs not yet visible when the fence was issued.
    pub(crate) fn on_fence(&mut self, port: PortId, had_inflight: bool, now: SimTime) {
        let h = &mut self.hosts[port.0];
        h.op_seq += 1;
        let noop = h.flushes_since_fence == 0 && !had_inflight;
        h.last_fence_op = h.op_seq;
        h.flushes_since_fence = 0;
        if noop {
            self.report(
                ReportKind::NoopFence,
                port,
                0,
                now,
                "mfence with no flush since the last fence and no write-backs in flight".into(),
            );
        }
    }

    /// A write-back was posted (clwb/clflushopt/eviction).
    pub(crate) fn on_post_writeback(&mut self, port: PortId, la: u64, visible_at: SimTime) {
        self.line_mut(la).pending.push((port, visible_at));
    }

    /// A posted write-back reached visibility and was applied to memory.
    pub(crate) fn on_apply_writeback(&mut self, port: PortId, la: u64) {
        self.next_ver += 1;
        let ver = self.next_ver;
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        if let Some(i) = sh.pending.iter().position(|&(p, _)| p == port) {
            sh.pending.remove(i);
        }
        sh.ver = ver;
        sh.writer = Writer::Host(port);
        // The applied bytes are the poster's own: its cached copy (if it
        // still holds one) now matches pool memory.
        Self::snap_mut(sh, &hosts, port).snap = ver;
        self.hosts = hosts;
    }

    /// A device DMA write made new bytes visible on `[addr, addr+len)`.
    pub(crate) fn on_dma_write(&mut self, port: PortId, addr: u64, len: u64) {
        for la in crate::lines_covering(addr, len) {
            self.next_ver += 1;
            let ver = self.next_ver;
            let sh = self.line_mut(la);
            sh.ver = ver;
            sh.writer = Writer::Dma(port);
        }
    }

    /// A device DMA read of `[addr, addr+len)` at `now`: flag lines whose
    /// posted write-backs have not reached visibility (the device observes
    /// pre-write-back bytes that are about to change underneath it).
    pub(crate) fn on_dma_read(&mut self, port: PortId, addr: u64, len: u64, now: SimTime) {
        if self.lines.is_empty() {
            return;
        }
        for la in crate::lines_covering(addr, len) {
            let Some(sh) = self.lines.get(la) else {
                continue;
            };
            if let Some(&(wport, at)) = sh.pending.iter().find(|&&(_, at)| at > now) {
                let detail = format!(
                    "DMA read observes line before host{}'s write-back lands at {}ns",
                    wport.0,
                    at.as_nanos()
                );
                self.report(ReportKind::TornDmaRead, port, la, now, detail);
            }
        }
    }

    /// The host's CPU cache was dropped wholesale (crash). Invalidate all
    /// its per-line shadow snapshots via a generation bump.
    pub(crate) fn on_host_reset(&mut self, port: PortId) {
        let h = &mut self.hosts[port.0];
        h.gen = h.gen.wrapping_add(1);
        h.flushes_since_fence = 0;
    }

    // -- annotated check points --------------------------------------------

    /// Publish point: lines in the range must not be dirty in the
    /// publisher's cache. `dirty` reports the line's live cache state
    /// (None = absent).
    pub(crate) fn on_publish(&mut self, port: PortId, la: u64, dirty: Option<bool>, now: SimTime) {
        if dirty == Some(true) {
            self.report(
                ReportKind::UnflushedPublish,
                port,
                la,
                now,
                "published line is still dirty in the publisher's cache".into(),
            );
        }
    }

    /// Fenced publish point (doorbell): in addition to the dirty check, the
    /// last flush of each line must be covered by an `mfence`.
    pub(crate) fn on_publish_fenced(
        &mut self,
        port: PortId,
        la: u64,
        dirty: Option<bool>,
        now: SimTime,
    ) {
        if dirty == Some(true) {
            self.report(
                ReportKind::UnflushedPublish,
                port,
                la,
                now,
                "doorbell published a line still dirty in the publisher's cache".into(),
            );
            return;
        }
        let hosts = std::mem::take(&mut self.hosts);
        let sh = self.line_mut(la);
        let s = Self::snap_mut(sh, &hosts, port);
        let unfenced = s.flush_op > hosts[port.0].last_fence_op;
        self.hosts = hosts;
        if unfenced {
            self.report(
                ReportKind::MissingFence,
                port,
                la,
                now,
                "doorbell rung with the line's flush not yet covered by an mfence".into(),
            );
        }
    }

    /// Acquire point: a read the driver declares must observe current pool
    /// bytes. `dirty` is the line's live cache state (None = absent).
    pub(crate) fn on_expect_fresh(
        &mut self,
        port: PortId,
        la: u64,
        dirty: Option<bool>,
        now: SimTime,
    ) {
        let Some(sh) = self.lines.get(la) else {
            return; // never written: zeroed memory is trivially fresh
        };
        match dirty {
            Some(d) => {
                let s = sh.snaps[port.0];
                let valid = s.gen == self.hosts[port.0].gen;
                let snap = if valid { s.snap } else { 0 };
                if snap < sh.ver {
                    let detail = if d {
                        format!(
                            "dirty local line (snapshot v{}) masks newer pool data v{} ({})",
                            snap,
                            sh.ver,
                            writer_str(sh.writer)
                        )
                    } else {
                        format!(
                            "cached snapshot v{} is stale; pool has v{} ({})",
                            snap,
                            sh.ver,
                            writer_str(sh.writer)
                        )
                    };
                    self.report(ReportKind::StaleRead, port, la, now, detail);
                }
            }
            None => {
                // Absent: the read fetches from the pool. Another host's
                // in-flight write-back means the fetched bytes are torn.
                if let Some(&(wport, at)) =
                    sh.pending.iter().find(|&&(p, at)| p != port && at > now)
                {
                    let detail = format!(
                        "fetch observes line before host{}'s write-back lands at {}ns",
                        wport.0,
                        at.as_nanos()
                    );
                    self.report(ReportKind::TornRead, port, la, now, detail);
                }
            }
        }
    }
}

fn writer_str(w: Writer) -> String {
    match w {
        Writer::Init => "initial memory".to_string(),
        Writer::Host(p) => format!("written back by host{}", p.0),
        Writer::Dma(p) => format!("DMA-written via port{}", p.0),
    }
}
