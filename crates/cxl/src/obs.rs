//! Metric export for the CXL layer.
//!
//! Always compiled: the per-port link meters and per-host cache stats are
//! existing, unconditional tallies — exporting them into a
//! [`MetricSink`] is how figures source their numbers from a
//! [`oasis_obs::MetricsSnapshot`] with or without the `obs` feature. Only
//! the *ambient* transfer timelines (recorded per pool access) live behind
//! `obs`.

use oasis_obs::MetricSink;

use crate::host::HostCtx;
use crate::metrics;
use crate::pool::{CxlPool, PortId, TrafficClass};

/// Export every port's link-meter tallies (and the pending write-back
/// depth) into `sink`, tagged by port number.
pub fn export_pool_metrics(pool: &CxlPool, sink: &mut MetricSink) {
    for port in 0..pool.ports() {
        let m = pool.meter(PortId(port));
        let tag = port as u32;
        let read: u64 = TrafficClass::ALL.iter().map(|&c| m.read_bytes(c)).sum();
        let write: u64 = TrafficClass::ALL.iter().map(|&c| m.write_bytes(c)).sum();
        sink.set(metrics::LINK_READ_BYTES, tag, read);
        sink.set(metrics::LINK_WRITE_BYTES, tag, write);
        sink.set(
            metrics::LINK_BYTES_PAYLOAD,
            tag,
            m.class_bytes(TrafficClass::Payload),
        );
        sink.set(
            metrics::LINK_BYTES_MESSAGE,
            tag,
            m.class_bytes(TrafficClass::Message),
        );
        sink.set(
            metrics::LINK_BYTES_CONTROL,
            tag,
            m.class_bytes(TrafficClass::Control),
        );
        sink.set(
            metrics::LINK_BYTES_UNCLASSIFIED,
            tag,
            m.class_bytes(TrafficClass::Unclassified),
        );
    }
    sink.set(
        metrics::POOL_PENDING_WRITEBACKS,
        0,
        pool.pending_writebacks() as u64,
    );
    #[cfg(feature = "obs")]
    for (port, tl) in pool.transfer_timelines().iter().enumerate() {
        sink.merge_timeline(metrics::LINK_BYTES_TIMELINE, port as u32, tl);
    }
}

/// Export one host's memory-operation counters into `sink`, tagged by its
/// port number.
pub fn export_host_metrics(host: &HostCtx, sink: &mut MetricSink) {
    let tag = host.port.0 as u32;
    let s = &host.stats;
    sink.set(metrics::CACHE_HITS, tag, s.hits);
    sink.set(metrics::CACHE_MISSES, tag, s.misses);
    sink.set(metrics::CACHE_PREFETCH_STALLS, tag, s.prefetch_stalls);
    sink.set(metrics::CACHE_STORE_HITS, tag, s.store_hits);
    sink.set(metrics::CACHE_STORE_MISSES, tag, s.store_misses);
    sink.set(metrics::CACHE_FLUSHES, tag, s.flushes);
    sink.set(metrics::CACHE_WRITEBACKS, tag, s.writebacks);
    sink.set(metrics::CACHE_FENCES, tag, s.fences);
    sink.set(metrics::CACHE_PREFETCHES, tag, s.prefetches);
    sink.set(metrics::CACHE_PREFETCH_SKIPS, tag, s.prefetch_skips);
    sink.set(metrics::CACHE_EVICT_WRITEBACKS, tag, s.evict_writebacks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_sim::time::SimTime;

    #[test]
    fn pool_export_mirrors_meters() {
        let mut pool = CxlPool::new(4096, 2);
        pool.register_class(0, 1024, TrafficClass::Payload);
        pool.dma_write(SimTime::ZERO, PortId(0), 0, &[0u8; 256]);
        pool.dma_read(SimTime::ZERO, PortId(1), 0, &mut [0u8; 64]);
        let mut sink = MetricSink::new();
        export_pool_metrics(&pool, &mut sink);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(metrics::LINK_WRITE_BYTES, 0), 256);
        assert_eq!(snap.counter(metrics::LINK_READ_BYTES, 1), 64);
        assert_eq!(snap.counter(metrics::LINK_BYTES_PAYLOAD, 0), 256);
        assert_eq!(snap.counter(metrics::LINK_BYTES_UNCLASSIFIED, 0), 0);
    }

    #[test]
    fn host_export_mirrors_stats() {
        let mut pool = CxlPool::new(4096, 1);
        let mut host = HostCtx::new(PortId(0), 0);
        host.write_u64(&mut pool, 128, 7);
        let _ = host.read_u64(&mut pool, 128);
        let mut sink = MetricSink::new();
        export_host_metrics(&host, &mut sink);
        let snap = sink.snapshot();
        assert_eq!(
            snap.counter(metrics::CACHE_STORE_MISSES, 0),
            host.stats.store_misses
        );
        assert_eq!(snap.counter(metrics::CACHE_HITS, 0), host.stats.hits);
    }
}
