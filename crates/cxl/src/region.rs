//! Carving the pool into named regions.
//!
//! The real system exposes CXL memory as DAX devices and hands out regions
//! for TX buffer areas (4 GB per frontend), RX buffer areas (4 GB per NIC),
//! message channels, and allocator state (§3.3, §3.5). This allocator is the
//! simulated stand-in: bump allocation of line-aligned, class-tagged ranges.
//! The pod layout is set up once at boot, exactly like the paper's
//! prototype; the one dynamic piece is per-instance buffer areas, which are
//! [freed](RegionAllocator::free) when a host failure reclaims its
//! instances and reused (class-matched) by later launches. Outstanding
//! bytes are tracked so recovery tests can assert nothing leaks.

use crate::pool::{CxlPool, TrafficClass};
use crate::LINE;

/// A named, class-tagged range of pool memory.
#[derive(Clone, Debug)]
pub struct Region {
    /// Human-readable name ("host0.tx_area", "nic1.rx_area", ...).
    pub name: String,
    /// First byte.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Traffic class registered for metering.
    pub class: TrafficClass,
}

impl Region {
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Does the region contain `addr`?
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.end()).contains(&addr)
    }

    /// Split off a line-aligned sub-region (for carving per-instance buffer
    /// areas out of a frontend's TX area).
    pub fn sub(&self, name: impl Into<String>, offset: u64, size: u64) -> Region {
        assert!(
            offset.is_multiple_of(LINE),
            "sub-region offset must be line-aligned"
        );
        assert!(offset + size <= self.size, "sub-region escapes parent");
        Region {
            name: name.into(),
            base: self.base + offset,
            size,
            class: self.class,
        }
    }
}

/// Bump allocator over the pool address space, with a free list for the
/// regions that do come back (reclaimed instances).
pub struct RegionAllocator {
    next: u64,
    limit: u64,
    /// Freed ranges available for class-matched reuse: `(base, size,
    /// class)`, kept sorted by base.
    free_list: Vec<(u64, u64, TrafficClass)>,
    /// Bytes currently allocated and not freed.
    outstanding: u64,
}

impl RegionAllocator {
    /// Allocator covering the whole pool.
    pub fn new(pool: &CxlPool) -> Self {
        RegionAllocator {
            next: 0,
            limit: pool.size(),
            free_list: Vec::new(),
            outstanding: 0,
        }
    }

    /// Bytes not yet allocated (freed ranges are counted as available).
    pub fn remaining(&self) -> u64 {
        self.limit - self.next + self.free_list.iter().map(|&(_, s, _)| s).sum::<u64>()
    }

    /// Bytes currently allocated (the chaos harness asserts this returns
    /// to its pre-fault level after recovery — no leaked regions).
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Allocate a line-aligned region and register its traffic class with
    /// the pool. Panics if the pool is exhausted — pod layout is static and
    /// sized up front, so running out is a configuration bug.
    pub fn alloc(
        &mut self,
        pool: &mut CxlPool,
        name: impl Into<String>,
        size: u64,
        class: TrafficClass,
    ) -> Region {
        let size_aligned = (size + LINE - 1) & !(LINE - 1);
        let name = name.into();
        // Class-matched reuse first (the range keeps its registered class,
        // so no re-registration is needed — or allowed).
        if let Some(i) = self
            .free_list
            .iter()
            .position(|&(_, s, c)| c == class && s >= size_aligned)
        {
            let (base, s, c) = self.free_list[i];
            if s == size_aligned {
                self.free_list.remove(i);
            } else {
                self.free_list[i] = (base + size_aligned, s - size_aligned, c);
            }
            self.outstanding += size_aligned;
            pool.note_region(base, base + size_aligned, &name);
            return Region {
                name,
                base,
                size: size_aligned,
                class,
            };
        }
        let base = (self.next + LINE - 1) & !(LINE - 1);
        assert!(
            base + size_aligned <= self.limit,
            "CXL pool exhausted allocating {name} ({size} bytes; {} remaining)",
            self.limit - base
        );
        self.next = base + size_aligned;
        self.outstanding += size_aligned;
        pool.register_class(base, base + size_aligned, class);
        pool.note_region(base, base + size_aligned, &name);
        Region {
            name,
            base,
            size: size_aligned,
            class,
        }
    }

    /// Return a region's range to the allocator for later class-matched
    /// reuse (instance reclaim after a host failure, §3.5). Adjacent free
    /// ranges of the same class are coalesced.
    pub fn free(&mut self, region: &Region) {
        assert!(
            region.end() <= self.next,
            "free of a region never handed out"
        );
        assert!(region.size.is_multiple_of(LINE), "regions are line-sized");
        // oasis-check: allow(no-panic) allocator-misuse contract like the
        // asserts above: freeing more than was allocated is a setup bug in
        // the calling driver, caught at development time.
        self.outstanding = self
            .outstanding
            .checked_sub(region.size)
            .expect("more bytes freed than allocated");
        let idx = self.free_list.partition_point(|&(b, _, _)| b < region.base);
        debug_assert!(
            idx == self.free_list.len() || self.free_list[idx].0 >= region.end(),
            "double free of {}",
            region.name
        );
        self.free_list
            .insert(idx, (region.base, region.size, region.class));
        // Coalesce with the neighbour on either side.
        if idx + 1 < self.free_list.len() {
            let (b, s, c) = self.free_list[idx];
            let (nb, ns, nc) = self.free_list[idx + 1];
            if b + s == nb && c == nc {
                self.free_list[idx] = (b, s + ns, c);
                self.free_list.remove(idx + 1);
            }
        }
        if idx > 0 {
            let (pb, ps, pc) = self.free_list[idx - 1];
            let (b, s, c) = self.free_list[idx];
            if pb + ps == b && pc == c {
                self.free_list[idx - 1] = (pb, ps + s, pc);
                self.free_list.remove(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let a = ra.alloc(&mut pool, "a", 100, TrafficClass::Payload);
        let b = ra.alloc(&mut pool, "b", 64, TrafficClass::Message);
        assert_eq!(a.base % LINE, 0);
        assert_eq!(b.base % LINE, 0);
        assert!(a.end() <= b.base);
        assert_eq!(a.size, 128, "rounded up to lines");
    }

    #[test]
    fn classes_registered_with_pool() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let a = ra.alloc(&mut pool, "payload", 256, TrafficClass::Payload);
        let b = ra.alloc(&mut pool, "msgs", 256, TrafficClass::Message);
        assert_eq!(pool.classify(a.base), TrafficClass::Payload);
        assert_eq!(pool.classify(b.base + 100), TrafficClass::Message);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut pool = CxlPool::new(128, 1);
        let mut ra = RegionAllocator::new(&pool);
        ra.alloc(&mut pool, "too-big", 256, TrafficClass::Payload);
    }

    #[test]
    fn sub_region_within_parent() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let area = ra.alloc(&mut pool, "tx", 1024, TrafficClass::Payload);
        let sub = area.sub("tx.inst0", 256, 128);
        assert_eq!(sub.base, area.base + 256);
        assert!(area.contains(sub.base) && area.contains(sub.end() - 1));
        assert_eq!(sub.class, TrafficClass::Payload);
    }

    #[test]
    #[should_panic(expected = "escapes")]
    fn sub_region_escape_panics() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let area = ra.alloc(&mut pool, "tx", 256, TrafficClass::Payload);
        area.sub("oops", 192, 128);
    }

    #[test]
    fn free_then_realloc_reuses_range() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let a = ra.alloc(&mut pool, "inst0.tx", 256, TrafficClass::Payload);
        let b = ra.alloc(&mut pool, "inst1.tx", 256, TrafficClass::Payload);
        assert_eq!(ra.outstanding(), 512);
        ra.free(&a);
        assert_eq!(ra.outstanding(), 256);
        // Same class and size: the freed range is reused verbatim.
        let c = ra.alloc(&mut pool, "inst2.tx", 256, TrafficClass::Payload);
        assert_eq!(c.base, a.base);
        assert_eq!(pool.classify(c.base), TrafficClass::Payload);
        // A different class must not reuse it.
        ra.free(&c);
        let d = ra.alloc(&mut pool, "ctrl", 256, TrafficClass::Control);
        assert!(d.base >= b.end(), "class-mismatched range not reused");
    }

    #[test]
    fn free_coalesces_adjacent_ranges() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let a = ra.alloc(&mut pool, "a", 128, TrafficClass::Payload);
        let b = ra.alloc(&mut pool, "b", 128, TrafficClass::Payload);
        ra.free(&a);
        ra.free(&b);
        assert_eq!(ra.outstanding(), 0);
        // The coalesced 256-byte range satisfies a larger request.
        let big = ra.alloc(&mut pool, "big", 256, TrafficClass::Payload);
        assert_eq!(big.base, a.base);
    }

    #[test]
    fn remaining_decreases() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let before = ra.remaining();
        ra.alloc(&mut pool, "a", 64, TrafficClass::Control);
        assert_eq!(ra.remaining(), before - 64);
    }
}
