//! Carving the pool into named regions.
//!
//! The real system exposes CXL memory as DAX devices and hands out regions
//! for TX buffer areas (4 GB per frontend), RX buffer areas (4 GB per NIC),
//! message channels, and allocator state (§3.3, §3.5). This allocator is the
//! simulated stand-in: bump allocation of line-aligned, class-tagged ranges.
//! Regions are never freed — pods set up their layout once at boot, exactly
//! like the paper's prototype.

use crate::pool::{CxlPool, TrafficClass};
use crate::LINE;

/// A named, class-tagged range of pool memory.
#[derive(Clone, Debug)]
pub struct Region {
    /// Human-readable name ("host0.tx_area", "nic1.rx_area", ...).
    pub name: String,
    /// First byte.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Traffic class registered for metering.
    pub class: TrafficClass,
}

impl Region {
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Does the region contain `addr`?
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.end()).contains(&addr)
    }

    /// Split off a line-aligned sub-region (for carving per-instance buffer
    /// areas out of a frontend's TX area).
    pub fn sub(&self, name: impl Into<String>, offset: u64, size: u64) -> Region {
        assert!(
            offset.is_multiple_of(LINE),
            "sub-region offset must be line-aligned"
        );
        assert!(offset + size <= self.size, "sub-region escapes parent");
        Region {
            name: name.into(),
            base: self.base + offset,
            size,
            class: self.class,
        }
    }
}

/// Bump allocator over the pool address space.
pub struct RegionAllocator {
    next: u64,
    limit: u64,
}

impl RegionAllocator {
    /// Allocator covering the whole pool.
    pub fn new(pool: &CxlPool) -> Self {
        RegionAllocator {
            next: 0,
            limit: pool.size(),
        }
    }

    /// Bytes not yet allocated.
    pub fn remaining(&self) -> u64 {
        self.limit - self.next
    }

    /// Allocate a line-aligned region and register its traffic class with
    /// the pool. Panics if the pool is exhausted — pod layout is static and
    /// sized up front, so running out is a configuration bug.
    pub fn alloc(
        &mut self,
        pool: &mut CxlPool,
        name: impl Into<String>,
        size: u64,
        class: TrafficClass,
    ) -> Region {
        let base = (self.next + LINE - 1) & !(LINE - 1);
        let size_aligned = (size + LINE - 1) & !(LINE - 1);
        let name = name.into();
        assert!(
            base + size_aligned <= self.limit,
            "CXL pool exhausted allocating {name} ({size} bytes; {} remaining)",
            self.limit - base
        );
        self.next = base + size_aligned;
        pool.register_class(base, base + size_aligned, class);
        Region {
            name,
            base,
            size: size_aligned,
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let a = ra.alloc(&mut pool, "a", 100, TrafficClass::Payload);
        let b = ra.alloc(&mut pool, "b", 64, TrafficClass::Message);
        assert_eq!(a.base % LINE, 0);
        assert_eq!(b.base % LINE, 0);
        assert!(a.end() <= b.base);
        assert_eq!(a.size, 128, "rounded up to lines");
    }

    #[test]
    fn classes_registered_with_pool() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let a = ra.alloc(&mut pool, "payload", 256, TrafficClass::Payload);
        let b = ra.alloc(&mut pool, "msgs", 256, TrafficClass::Message);
        assert_eq!(pool.classify(a.base), TrafficClass::Payload);
        assert_eq!(pool.classify(b.base + 100), TrafficClass::Message);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut pool = CxlPool::new(128, 1);
        let mut ra = RegionAllocator::new(&pool);
        ra.alloc(&mut pool, "too-big", 256, TrafficClass::Payload);
    }

    #[test]
    fn sub_region_within_parent() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let area = ra.alloc(&mut pool, "tx", 1024, TrafficClass::Payload);
        let sub = area.sub("tx.inst0", 256, 128);
        assert_eq!(sub.base, area.base + 256);
        assert!(area.contains(sub.base) && area.contains(sub.end() - 1));
        assert_eq!(sub.class, TrafficClass::Payload);
    }

    #[test]
    #[should_panic(expected = "escapes")]
    fn sub_region_escape_panics() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let area = ra.alloc(&mut pool, "tx", 256, TrafficClass::Payload);
        area.sub("oops", 192, 128);
    }

    #[test]
    fn remaining_decreases() {
        let mut pool = CxlPool::new(4096, 1);
        let mut ra = RegionAllocator::new(&pool);
        let before = ra.remaining();
        ra.alloc(&mut pool, "a", 64, TrafficClass::Control);
        assert_eq!(ra.remaining(), before - 64);
    }
}
