//! The CPU-visible memory-operation API of a simulated host.
//!
//! [`HostCtx`] is what driver code (message channels, engines, allocator)
//! uses to touch shared CXL memory. Every operation:
//!
//! 1. goes through the host's private [`HostCache`] with write-back
//!    semantics, so stale reads and invisible dirty writes happen exactly as
//!    on real non-coherent CXL 2.0 hardware, and
//! 2. advances the host's *local clock* by the operation's cost from the
//!    [`CostModel`], which is how experiments measure latency and
//!    throughput.
//!
//! The explicit `clflushopt`/`clwb`/`mfence`/`prefetch` calls mirror the x86
//! instructions the paper's implementation uses (§3.2.2, §4).

use oasis_sim::time::{SimDuration, SimTime};

use crate::cache::HostCache;
use crate::cost::CostModel;
use crate::pool::{CxlPool, PortId};
use crate::{line_base, lines_covering, LINE};

/// Counters of memory operations a host has performed (for assertions and
/// overhead breakdowns).
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    /// Loads served from the local cache.
    pub hits: u64,
    /// Loads that had to fetch from the pool.
    pub misses: u64,
    /// Loads that stalled on an in-flight prefetch.
    pub prefetch_stalls: u64,
    /// Stores into present lines.
    pub store_hits: u64,
    /// Stores that required a read-for-ownership fetch.
    pub store_misses: u64,
    /// CLFLUSHOPT instructions issued.
    pub flushes: u64,
    /// CLWB instructions issued.
    pub writebacks: u64,
    /// MFENCE instructions issued.
    pub fences: u64,
    /// PREFETCHT0 issued for absent lines.
    pub prefetches: u64,
    /// PREFETCHT0 that found the line already present (and did nothing —
    /// the property that breaks naive prefetching on stale lines).
    pub prefetch_skips: u64,
    /// Dirty lines written back due to capacity eviction.
    pub evict_writebacks: u64,
}

/// A simulated host CPU context: cache + local clock + private DRAM.
pub struct HostCtx {
    /// This host's port on the CXL pool device.
    pub port: PortId,
    /// Local cycle-accounted clock.
    pub clock: SimTime,
    /// The host's private CPU cache for pool lines.
    pub cache: HostCache,
    /// Cost model used for clock accounting.
    pub costs: CostModel,
    /// Operation counters.
    pub stats: MemStats,
    /// Host-private DRAM (instance memory, IPC rings, baseline I/O buffers).
    local: Vec<u8>,
    /// Latest visibility time of a write-back this host has posted;
    /// `mfence` stalls until it (SFENCE-after-CLWB completion semantics).
    pending_visible: SimTime,
    /// Scratch buffer for bulk streaming fetches (reused across calls so
    /// the hot path never allocates).
    stream_buf: Vec<u8>,
    /// Hardware next-line prefetcher depth (0 = disabled, the default).
    /// When two consecutive lines miss in ascending order, the next
    /// `hw_prefetch_depth` lines are prefetched — and, like all prefetches,
    /// *skip lines already present*, which is why hardware prefetching is
    /// just as ineffective as software prefetching over non-coherent
    /// memory (§3.2.2).
    hw_prefetch_depth: u64,
    /// Line address of the most recent demand miss (stream detection).
    last_miss_line: u64,
}

impl HostCtx {
    /// Host with the default 4096-line cache and default cost model.
    pub fn new(port: PortId, local_mem: u64) -> Self {
        Self::with_cache(port, local_mem, 4096, CostModel::default())
    }

    /// Host with explicit cache capacity (lines) and cost model.
    pub fn with_cache(port: PortId, local_mem: u64, cache_lines: usize, costs: CostModel) -> Self {
        HostCtx {
            port,
            clock: SimTime::ZERO,
            cache: HostCache::new(cache_lines),
            costs,
            stats: MemStats::default(),
            local: vec![0; local_mem as usize],
            stream_buf: Vec::new(),
            pending_visible: SimTime::ZERO,
            hw_prefetch_depth: 0,
            last_miss_line: u64::MAX,
        }
    }

    /// Enable the hardware next-line stream prefetcher.
    pub fn set_hw_prefetch_depth(&mut self, depth: u64) {
        self.hw_prefetch_depth = depth;
    }

    /// Advance the local clock by `ns` (used by drivers to charge
    /// non-memory work like descriptor processing).
    #[inline]
    pub fn advance(&mut self, ns: u64) {
        self.clock += SimDuration::from_nanos(ns);
    }

    fn evict(&mut self, pool: &mut CxlPool, victim: crate::cache::Evicted) {
        if victim.line.dirty {
            self.stats.evict_writebacks += 1;
            let visible = self.clock + SimDuration::from_nanos(self.costs.cxl_write_visible_ns);
            self.pending_visible = self.pending_visible.max(visible);
            pool.post_writeback(self.port, victim.addr, victim.line.data, visible);
        }
    }

    /// Load bytes from pool memory through the cache. Present lines are
    /// served from the (possibly stale!) snapshot; absent lines fetch from
    /// the pool at CXL latency.
    pub fn read(&mut self, pool: &mut CxlPool, addr: u64, out: &mut [u8]) {
        let mut off = 0usize;
        for la in lines_covering(addr, out.len() as u64) {
            // Overlap of this line with the request.
            let lo = addr.max(la);
            let hi = (addr + out.len() as u64).min(la + LINE);
            let n = (hi - lo) as usize;
            let s = (lo - la) as usize;
            // Stall or fetch this line; copy in-branch so the hit path
            // costs a single cache-index lookup.
            if let Some(line) = self.cache.touch(la) {
                let ready = line.ready_at;
                if ready > self.clock {
                    self.stats.prefetch_stalls += 1;
                    self.clock = ready;
                } else {
                    self.stats.hits += 1;
                    self.clock += SimDuration::from_nanos(self.costs.cache_hit_ns);
                }
                out[off..off + n].copy_from_slice(&line.data[s..s + n]);
                #[cfg(feature = "sanitize")]
                pool.san.on_read_hit(self.port, la);
            } else {
                self.stats.misses += 1;
                self.clock += SimDuration::from_nanos(self.costs.cxl_load_ns);
                let data = pool.fetch_line(self.clock, self.port, la);
                out[off..off + n].copy_from_slice(&data[s..s + n]);
                if let Some(v) = self.cache.insert(la, data, false, self.clock) {
                    self.evict(pool, v);
                }
                #[cfg(feature = "sanitize")]
                pool.san.on_fill(self.port, la);
                self.hw_prefetch(pool, la);
            }
            off += n;
        }
    }

    /// Load a `u64` (little-endian) from pool memory.
    pub fn read_u64(&mut self, pool: &mut CxlPool, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(pool, addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Bulk streaming load from pool memory (memcpy-style). Sequential
    /// misses pipeline across the CXL link: the first missing line of the
    /// call costs a full load-to-use latency, every further missing line a
    /// per-line streaming cost at link bandwidth. Lines are left cached.
    ///
    /// Consecutive missing lines are fetched as one [`CxlPool::fetch_lines`]
    /// run — one metering charge and one bulk copy instead of a per-line
    /// walk — with identical clocks, stats, eviction times, and meter
    /// attribution. Runs are re-derived at every cached-line boundary
    /// (an eviction inside a run can remove a line that looked cached when
    /// the call started) and clamped at traffic-class span edges so per-run
    /// metering charges the class a per-line walk would have.
    pub fn read_stream(&mut self, pool: &mut CxlPool, addr: u64, out: &mut [u8]) {
        let mut first_miss = true;
        let mut off = 0usize;
        let end = addr + out.len() as u64;
        let mut la = line_base(addr);
        while la < end {
            if let Some(line) = self.cache.touch(la) {
                let ready = line.ready_at;
                if ready > self.clock {
                    self.stats.prefetch_stalls += 1;
                    self.clock = ready;
                } else {
                    self.stats.hits += 1;
                    self.clock += SimDuration::from_nanos(self.costs.cache_hit_ns);
                }
                let lo = addr.max(la);
                let hi = end.min(la + LINE);
                let n = (hi - lo) as usize;
                let s = (lo - la) as usize;
                out[off..off + n].copy_from_slice(&line.data[s..s + n]);
                #[cfg(feature = "sanitize")]
                pool.san.on_read_hit(self.port, la);
                off += n;
                la += LINE;
                continue;
            }

            // Maximal run of consecutive missing lines, clamped to the
            // request and to the class span containing `la`.
            let span_end = pool.class_span_end(la);
            let mut run_end = la + LINE;
            while run_end < end && run_end < span_end && !self.cache.contains(run_end) {
                run_end += LINE;
            }
            let n_lines = (run_end - la) / LINE;
            self.stats.misses += n_lines;
            let first_cost = if first_miss {
                self.costs.cxl_load_ns
            } else {
                self.costs.cxl_stream_line_ns
            };
            first_miss = false;
            let step = self.costs.cxl_stream_line_ns;
            let t0 = self.clock + SimDuration::from_nanos(first_cost);

            let mut buf = std::mem::take(&mut self.stream_buf);
            buf.resize((n_lines * LINE) as usize, 0);
            pool.fetch_lines(t0, step, self.port, la, &mut buf);
            // Install each line at its exact fetch time so eviction
            // write-backs post at the instants the per-line walk would use.
            for i in 0..n_lines {
                let t_i = t0 + SimDuration::from_nanos(i * step);
                self.clock = t_i;
                let mut data = [0u8; LINE as usize];
                data.copy_from_slice(&buf[(i * LINE) as usize..((i + 1) * LINE) as usize]);
                if let Some(v) = self.cache.insert(la + i * LINE, data, false, t_i) {
                    self.evict(pool, v);
                }
                #[cfg(feature = "sanitize")]
                pool.san.on_fill(self.port, la + i * LINE);
            }
            let lo = addr.max(la);
            let hi = end.min(run_end);
            let n = (hi - lo) as usize;
            out[off..off + n].copy_from_slice(&buf[(lo - la) as usize..(lo - la) as usize + n]);
            off += n;
            self.stream_buf = buf;
            la = run_end;
        }
    }

    /// Store bytes to pool memory through the cache (write-back: the data is
    /// *not* visible to other hosts or device DMA until `clwb`,
    /// `clflushopt`, or eviction).
    pub fn write(&mut self, pool: &mut CxlPool, addr: u64, data: &[u8]) {
        let mut off = 0usize;
        for la in lines_covering(addr, data.len() as u64) {
            let lo = addr.max(la);
            let hi = (addr + data.len() as u64).min(la + LINE);
            let n = (hi - lo) as usize;
            if let Some(line) = self.cache.touch(la) {
                // Stall if the line is still being filled by a prefetch.
                if line.ready_at > self.clock {
                    self.clock = line.ready_at;
                }
                self.stats.store_hits += 1;
                self.clock += SimDuration::from_nanos(self.costs.store_hit_ns);
                line.data[(lo - la) as usize..(lo - la) as usize + n]
                    .copy_from_slice(&data[off..off + n]);
                line.dirty = true;
                #[cfg(feature = "sanitize")]
                pool.san.on_write(self.port, la);
            } else if n as u64 == LINE {
                // Full-line store: no read-for-ownership fetch needed.
                self.stats.store_hits += 1;
                self.clock += SimDuration::from_nanos(self.costs.store_hit_ns);
                let mut buf = [0u8; LINE as usize];
                buf.copy_from_slice(&data[off..off + n]);
                if let Some(v) = self.cache.insert(la, buf, true, self.clock) {
                    self.evict(pool, v);
                }
                #[cfg(feature = "sanitize")]
                pool.san.on_write(self.port, la);
            } else {
                // Partial-line write miss: read-for-ownership at CXL latency.
                self.stats.store_misses += 1;
                self.clock += SimDuration::from_nanos(self.costs.cxl_load_ns);
                let mut buf = pool.fetch_line(self.clock, self.port, la);
                buf[(lo - la) as usize..(lo - la) as usize + n]
                    .copy_from_slice(&data[off..off + n]);
                self.clock += SimDuration::from_nanos(self.costs.store_hit_ns);
                if let Some(v) = self.cache.insert(la, buf, true, self.clock) {
                    self.evict(pool, v);
                }
                #[cfg(feature = "sanitize")]
                {
                    pool.san.on_fill(self.port, la);
                    pool.san.on_write(self.port, la);
                }
            }
            off += n;
        }
    }

    /// Store a `u64` (little-endian) to pool memory.
    pub fn write_u64(&mut self, pool: &mut CxlPool, addr: u64, value: u64) {
        self.write(pool, addr, &value.to_le_bytes());
    }

    /// `CLWB`: write a dirty line back to the pool but keep it cached. The
    /// data becomes visible in pool memory after the propagation delay.
    pub fn clwb(&mut self, pool: &mut CxlPool, addr: u64) {
        let la = line_base(addr);
        self.stats.writebacks += 1;
        self.clock += SimDuration::from_nanos(self.costs.clwb_ns);
        #[cfg(feature = "sanitize")]
        let mut was_dirty = false;
        if let Some(line) = self.cache.touch(la) {
            if line.dirty {
                #[cfg(feature = "sanitize")]
                {
                    was_dirty = true;
                }
                line.dirty = false;
                let data = line.data;
                let visible = self.clock + SimDuration::from_nanos(self.costs.cxl_write_visible_ns);
                self.pending_visible = self.pending_visible.max(visible);
                pool.post_writeback(self.port, la, data, visible);
            }
        }
        #[cfg(feature = "sanitize")]
        pool.san.on_clwb(self.port, la, was_dirty, self.clock);
    }

    /// `CLFLUSHOPT`: write back if dirty, then evict the line so the next
    /// access fetches fresh data from the pool.
    pub fn clflushopt(&mut self, pool: &mut CxlPool, addr: u64) {
        let la = line_base(addr);
        self.stats.flushes += 1;
        self.clock += SimDuration::from_nanos(self.costs.clflushopt_ns);
        #[cfg(feature = "sanitize")]
        let (mut was_present, mut was_dirty) = (false, false);
        if let Some(line) = self.cache.remove(la) {
            #[cfg(feature = "sanitize")]
            {
                was_present = true;
                was_dirty = line.dirty;
            }
            if line.dirty {
                let visible = self.clock + SimDuration::from_nanos(self.costs.cxl_write_visible_ns);
                self.pending_visible = self.pending_visible.max(visible);
                pool.post_writeback(self.port, la, line.data, visible);
            }
        }
        #[cfg(feature = "sanitize")]
        pool.san
            .on_clflush(self.port, la, was_present, was_dirty, self.clock);
    }

    /// `MFENCE`: ordering point. Stalls until this host's posted
    /// write-backs are visible in pool memory (the SFENCE-after-CLWB
    /// completion guarantee drivers rely on before ringing a doorbell),
    /// plus the fixed drain cost.
    pub fn mfence(&mut self, pool: &mut CxlPool) {
        self.stats.fences += 1;
        #[cfg(feature = "sanitize")]
        let had_inflight = self.pending_visible > self.clock;
        #[cfg(not(feature = "sanitize"))]
        let _ = &pool;
        self.clock = self.clock.max(self.pending_visible);
        self.clock += SimDuration::from_nanos(self.costs.mfence_ns);
        #[cfg(feature = "sanitize")]
        pool.san.on_fence(self.port, had_inflight, self.clock);
    }

    /// Hardware stream prefetcher: fired on a demand miss; if the previous
    /// demand miss was the preceding line, asynchronously fill the next
    /// `hw_prefetch_depth` lines (skipping lines already present).
    fn hw_prefetch(&mut self, pool: &mut CxlPool, miss_line: u64) {
        let streaming =
            self.hw_prefetch_depth > 0 && self.last_miss_line.wrapping_add(LINE) == miss_line;
        self.last_miss_line = miss_line;
        if !streaming {
            return;
        }
        for k in 1..=self.hw_prefetch_depth {
            let la = miss_line + k * LINE;
            if la + LINE > pool.size() || self.cache.contains(la) {
                self.stats.prefetch_skips += u64::from(self.cache.contains(la));
                continue;
            }
            self.stats.prefetches += 1;
            let data = pool.fetch_line(self.clock, self.port, la);
            let ready = self.clock + SimDuration::from_nanos(self.costs.cxl_load_ns);
            if let Some(v) = self.cache.insert(la, data, false, ready) {
                self.evict(pool, v);
            }
            #[cfg(feature = "sanitize")]
            pool.san.on_prefetch_fill(self.port, la);
        }
    }

    /// `PREFETCHT0`: start an asynchronous fill of an absent line. If the
    /// line is already present — even if its snapshot is stale — the
    /// prefetch does nothing, which is exactly why naive prefetching fails
    /// over non-coherent memory (§3.2.2 ②).
    pub fn prefetch(&mut self, pool: &mut CxlPool, addr: u64) {
        let la = line_base(addr);
        self.clock += SimDuration::from_nanos(self.costs.prefetch_issue_ns);
        if self.cache.contains(la) {
            self.stats.prefetch_skips += 1;
            return;
        }
        self.stats.prefetches += 1;
        let data = pool.fetch_line(self.clock, self.port, la);
        let ready = self.clock + SimDuration::from_nanos(self.costs.cxl_load_ns);
        if let Some(v) = self.cache.insert(la, data, false, ready) {
            self.evict(pool, v);
        }
        #[cfg(feature = "sanitize")]
        pool.san.on_prefetch_fill(self.port, la);
    }

    /// Sanitizer annotation: declare that `[addr, addr+len)` has just been
    /// *published* — flushed so that other hosts/devices can observe it. The
    /// sanitizer reports any line still dirty in this host's cache. Pure
    /// observer; free when the `sanitize` feature is off.
    #[cfg(feature = "sanitize")]
    pub fn publish(&mut self, pool: &mut CxlPool, addr: u64, len: u64) {
        for la in lines_covering(addr, len) {
            let dirty = self.cache.get(la).map(|l| l.dirty);
            pool.san.on_publish(self.port, la, dirty, self.clock);
        }
    }

    /// Sanitizer annotation (no-op: `sanitize` feature disabled).
    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    pub fn publish(&mut self, _pool: &mut CxlPool, _addr: u64, _len: u64) {}

    /// Sanitizer annotation: declare a *fenced* publish point (a doorbell
    /// another agent may act on immediately). In addition to the
    /// [`Self::publish`] dirty check, the sanitizer reports lines whose
    /// last flush is not yet covered by an `mfence`. Pure observer; free
    /// when the `sanitize` feature is off.
    #[cfg(feature = "sanitize")]
    pub fn publish_fenced(&mut self, pool: &mut CxlPool, addr: u64, len: u64) {
        for la in lines_covering(addr, len) {
            let dirty = self.cache.get(la).map(|l| l.dirty);
            pool.san.on_publish_fenced(self.port, la, dirty, self.clock);
        }
    }

    /// Sanitizer annotation (no-op: `sanitize` feature disabled).
    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    pub fn publish_fenced(&mut self, _pool: &mut CxlPool, _addr: u64, _len: u64) {}

    /// Sanitizer annotation: declare that the next read of
    /// `[addr, addr+len)` must observe *current* pool bytes (an acquire
    /// point whose protocol guarantees freshness). The sanitizer reports
    /// stale cached snapshots and fetches torn by other hosts' in-flight
    /// write-backs. Pure observer; free when the `sanitize` feature is off.
    #[cfg(feature = "sanitize")]
    pub fn expect_fresh(&mut self, pool: &mut CxlPool, addr: u64, len: u64) {
        for la in lines_covering(addr, len) {
            let dirty = self.cache.get(la).map(|l| l.dirty);
            pool.san.on_expect_fresh(self.port, la, dirty, self.clock);
        }
    }

    /// Sanitizer annotation (no-op: `sanitize` feature disabled).
    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    pub fn expect_fresh(&mut self, _pool: &mut CxlPool, _addr: u64, _len: u64) {}

    /// Size of the host's private DRAM.
    pub fn local_size(&self) -> u64 {
        self.local.len() as u64
    }

    /// Read host-private DRAM (always coherent within the host; flat cached
    /// cost since the hot structures live in cache).
    pub fn local_read(&mut self, addr: u64, out: &mut [u8]) {
        let n_lines = lines_covering(addr, out.len() as u64).count() as u64;
        self.clock += SimDuration::from_nanos(self.costs.cache_hit_ns * n_lines);
        let base = addr as usize;
        out.copy_from_slice(&self.local[base..base + out.len()]);
    }

    /// Write host-private DRAM.
    pub fn local_write(&mut self, addr: u64, data: &[u8]) {
        let n_lines = lines_covering(addr, data.len() as u64).count() as u64;
        self.clock += SimDuration::from_nanos(self.costs.store_hit_ns * n_lines);
        let base = addr as usize;
        self.local[base..base + data.len()].copy_from_slice(data);
    }

    /// Direct borrow of local DRAM for device DMA into host memory (the
    /// device charges its own latency).
    pub fn local_mem_mut(&mut self) -> &mut [u8] {
        &mut self.local
    }

    /// Direct borrow of local DRAM for device DMA out of host memory.
    pub fn local_mem(&self) -> &[u8] {
        &self.local
    }

    /// Split borrow for building a device DMA context: local DRAM, the
    /// host's CXL port, and the cost model, without aliasing the rest of
    /// the context.
    pub fn dma_parts(&mut self) -> (&mut [u8], PortId, &CostModel) {
        (&mut self.local, self.port, &self.costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CxlPool, HostCtx, HostCtx) {
        let pool = CxlPool::new(1 << 20, 2);
        let a = HostCtx::new(PortId(0), 4096);
        let b = HostCtx::new(PortId(1), 4096);
        (pool, a, b)
    }

    #[test]
    fn stale_read_without_invalidation() {
        let (mut pool, mut a, mut b) = setup();
        // B reads line 0 (caches zeros).
        assert_eq!(b.read_u64(&mut pool, 0), 0);
        // A writes and flushes.
        a.write_u64(&mut pool, 0, 0xfeed);
        a.clflushopt(&mut pool, 0);
        pool.flush_pending();
        // B still sees the stale cached zero — the defining non-coherence
        // behaviour.
        assert_eq!(b.read_u64(&mut pool, 0), 0);
        // After invalidating, B sees the new value.
        b.clflushopt(&mut pool, 0);
        b.mfence(&mut pool);
        assert_eq!(b.read_u64(&mut pool, 0), 0xfeed);
    }

    #[test]
    fn dirty_write_invisible_until_writeback() {
        let (mut pool, mut a, mut b) = setup();
        a.write_u64(&mut pool, 128, 77);
        // Not written back yet: B (cold cache) sees zero.
        assert_eq!(b.read_u64(&mut pool, 128), 0);
        a.clwb(&mut pool, 128);
        pool.flush_pending();
        b.clflushopt(&mut pool, 128);
        assert_eq!(b.read_u64(&mut pool, 128), 77);
    }

    #[test]
    fn clwb_keeps_line_cached_clflush_evicts() {
        let (mut pool, mut a, _) = setup();
        a.write_u64(&mut pool, 0, 1);
        a.clwb(&mut pool, 0);
        assert!(a.cache.contains(0));
        a.clflushopt(&mut pool, 0);
        assert!(!a.cache.contains(0));
    }

    #[test]
    fn read_costs_hit_vs_miss() {
        let (mut pool, mut a, _) = setup();
        let t0 = a.clock;
        a.read_u64(&mut pool, 0);
        let miss_cost = (a.clock - t0).as_nanos();
        assert_eq!(miss_cost, a.costs.cxl_load_ns);
        let t1 = a.clock;
        a.read_u64(&mut pool, 0);
        let hit_cost = (a.clock - t1).as_nanos();
        assert_eq!(hit_cost, a.costs.cache_hit_ns);
        assert_eq!(a.stats.misses, 1);
        assert_eq!(a.stats.hits, 1);
    }

    #[test]
    fn prefetch_overlaps_latency() {
        let (mut pool, mut a, _) = setup();
        pool.poke(256, &42u64.to_le_bytes());
        a.prefetch(&mut pool, 256);
        let t0 = a.clock;
        // Immediately reading stalls for most of the fill latency.
        assert_eq!(a.read_u64(&mut pool, 256), 42);
        let stall = (a.clock - t0).as_nanos();
        assert!(stall >= a.costs.cxl_load_ns - a.costs.prefetch_issue_ns - 1);
        assert_eq!(a.stats.prefetch_stalls, 1);

        // Prefetch far in advance: read is a cheap hit.
        a.prefetch(&mut pool, 512);
        a.advance(10_000);
        let t1 = a.clock;
        a.read_u64(&mut pool, 512);
        assert_eq!((a.clock - t1).as_nanos(), a.costs.cache_hit_ns);
    }

    #[test]
    fn prefetch_skips_present_stale_line() {
        let (mut pool, mut a, mut b) = setup();
        // B caches line 0 (zeros).
        b.read_u64(&mut pool, 0);
        // A publishes new data.
        a.write_u64(&mut pool, 0, 9);
        a.clwb(&mut pool, 0);
        pool.flush_pending();
        // B prefetches: skipped because the stale line is present.
        b.prefetch(&mut pool, 0);
        assert_eq!(b.stats.prefetch_skips, 1);
        assert_eq!(b.read_u64(&mut pool, 0), 0, "still stale");
    }

    #[test]
    fn full_line_store_avoids_rfo() {
        let (mut pool, mut a, _) = setup();
        let buf = [7u8; 64];
        let t0 = a.clock;
        a.write(&mut pool, 0, &buf);
        let cost = (a.clock - t0).as_nanos();
        assert_eq!(cost, a.costs.store_hit_ns);
        assert_eq!(a.stats.store_misses, 0);

        // Partial write to a cold line pays the RFO fetch.
        let t1 = a.clock;
        a.write(&mut pool, 64, &[1u8; 8]);
        let cost = (a.clock - t1).as_nanos();
        assert!(cost >= a.costs.cxl_load_ns);
        assert_eq!(a.stats.store_misses, 1);
    }

    #[test]
    fn hw_prefetcher_streams_sequential_misses() {
        let (mut pool, mut a, _) = setup();
        a.set_hw_prefetch_depth(4);
        for i in 0..32u64 {
            pool.poke(i * 64, &i.to_le_bytes());
        }
        // Two sequential misses trigger the stream.
        a.read_u64(&mut pool, 0);
        a.read_u64(&mut pool, 64);
        assert!(a.stats.prefetches >= 4, "stream detected");
        // The prefetched lines are present (async fill in flight or done).
        assert!(a.cache.contains(128));
        a.advance(10_000);
        let t0 = a.clock;
        assert_eq!(a.read_u64(&mut pool, 128), 2);
        assert_eq!((a.clock - t0).as_nanos(), a.costs.cache_hit_ns, "hit");
    }

    #[test]
    fn hw_prefetcher_blocked_by_stale_lines_like_software() {
        // The §3.2.2 claim: hardware prefetching is also ineffective over
        // non-coherent memory, because present-but-stale lines are skipped.
        let (mut pool, mut a, mut b) = setup();
        b.set_hw_prefetch_depth(4);
        // B streams through lines 0..4 (caching them).
        for i in 0..4u64 {
            b.read_u64(&mut pool, i * 64);
        }
        // A publishes new data everywhere.
        for i in 0..8u64 {
            a.write_u64(&mut pool, i * 64, 0xbeef + i);
            a.clwb(&mut pool, i * 64);
        }
        a.mfence(&mut pool);
        pool.flush_pending();
        // B streams again: lines 0..4 are present (stale) so the HW
        // prefetcher skips them and B reads stale values.
        let skips_before = b.stats.prefetch_skips;
        for i in 0..4u64 {
            assert_ne!(b.read_u64(&mut pool, i * 64), 0xbeef + i, "stale");
        }
        let _ = skips_before;
        // Only after invalidation does the stream deliver fresh data.
        for i in 0..4u64 {
            b.clflushopt(&mut pool, i * 64);
        }
        b.mfence(&mut pool);
        for i in 0..4u64 {
            assert_eq!(b.read_u64(&mut pool, i * 64), 0xbeef + i);
        }
    }

    #[test]
    fn eviction_writes_back_dirty_victims() {
        let mut pool = CxlPool::new(1 << 20, 1);
        let mut a = HostCtx::with_cache(PortId(0), 0, 2, CostModel::default());
        a.write_u64(&mut pool, 0, 11);
        a.write_u64(&mut pool, 64, 22);
        a.write_u64(&mut pool, 128, 33); // evicts line 0
        assert_eq!(a.stats.evict_writebacks, 1);
        pool.flush_pending();
        let mut buf = [0u8; 8];
        pool.peek(0, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 11);
    }

    #[test]
    fn cross_line_read_write() {
        let (mut pool, mut a, mut b) = setup();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        a.write(&mut pool, 100, &data);
        for la in [64, 128, 192, 256] {
            a.clwb(&mut pool, la);
        }
        pool.flush_pending();
        let mut out = vec![0u8; 200];
        b.read(&mut pool, 100, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn local_memory_roundtrip() {
        let (_, mut a, _) = setup();
        a.local_write(10, b"abc");
        let mut out = [0u8; 3];
        a.local_read(10, &mut out);
        assert_eq!(&out, b"abc");
    }

    #[test]
    fn dma_bypasses_receiver_cache() {
        let (mut pool, _, mut b) = setup();
        // B caches the line, then a device DMA-writes it.
        b.read_u64(&mut pool, 0);
        pool.dma_write(SimTime::ZERO, PortId(0), 0, &5u64.to_le_bytes());
        // DMA read sees the new data immediately (pool-direct)...
        let mut buf = [0u8; 8];
        pool.dma_read(SimTime::ZERO, PortId(0), 0, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 5);
        // ...but B's cached read is stale until invalidated.
        assert_eq!(b.read_u64(&mut pool, 0), 0);
        b.clflushopt(&mut pool, 0);
        assert_eq!(b.read_u64(&mut pool, 0), 5);
    }
}
