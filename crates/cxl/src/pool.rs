//! The shared CXL pool memory and its per-port link meters.
//!
//! Pool memory is a flat byte array addressed from zero. Hosts reach it
//! through their [`crate::HostCtx`] (which models their CPU cache); PCIe
//! devices reach it through [`CxlPool::dma_read`] / [`CxlPool::dma_write`],
//! which bypass every CPU cache — the paper's datapath depends on exactly
//! this property (§3.2.1, DDIO disabled).
//!
//! Write-backs from CPU caches are *posted*: they become visible in pool
//! memory only after the configured propagation delay, which is what gives
//! the one-way message latency its 2× CXL-access floor (Fig. 6).
//!
//! Every transfer is metered per host port and per [`TrafficClass`], so
//! experiments can reproduce Table 3's payload/message bandwidth split.

use oasis_sim::addrmap::AddrMap;
use oasis_sim::time::SimTime;

use crate::LINE;

/// Identifies a host's port on the multi-headed CXL device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// What a range of pool memory is used for; Table 3 of the paper reports
/// CXL bandwidth split along these lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// I/O buffer contents (packet payloads, block data).
    Payload,
    /// Message-channel slots and consumed counters.
    Message,
    /// Allocator/telemetry/Raft state.
    Control,
    /// Anything not registered.
    Unclassified,
}

impl TrafficClass {
    const COUNT: usize = 4;

    #[inline]
    fn index(self) -> usize {
        match self {
            TrafficClass::Payload => 0,
            TrafficClass::Message => 1,
            TrafficClass::Control => 2,
            TrafficClass::Unclassified => 3,
        }
    }

    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Payload,
        TrafficClass::Message,
        TrafficClass::Control,
        TrafficClass::Unclassified,
    ];
}

/// Cumulative traffic counters for one host's CXL port.
#[derive(Clone, Debug, Default)]
pub struct LinkMeter {
    read_bytes: [u64; TrafficClass::COUNT],
    write_bytes: [u64; TrafficClass::COUNT],
}

impl LinkMeter {
    /// Bytes read from the pool over this port for a class.
    pub fn read_bytes(&self, class: TrafficClass) -> u64 {
        self.read_bytes[class.index()]
    }

    /// Bytes written to the pool over this port for a class.
    pub fn write_bytes(&self, class: TrafficClass) -> u64 {
        self.write_bytes[class.index()]
    }

    /// Total bytes in both directions, all classes.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes.iter().sum::<u64>() + self.write_bytes.iter().sum::<u64>()
    }

    /// Total bytes in both directions for one class.
    pub fn class_bytes(&self, class: TrafficClass) -> u64 {
        self.read_bytes[class.index()] + self.write_bytes[class.index()]
    }

    /// Reset all counters (used to delimit measurement windows).
    pub fn reset(&mut self) {
        self.read_bytes = [0; TrafficClass::COUNT];
        self.write_bytes = [0; TrafficClass::COUNT];
    }
}

/// Queue entry for a posted write-back: ordering metadata only. The data
/// itself lives in the per-line index (`pending_by_line`), whose per-line
/// order mirrors the queue order restricted to that line.
struct QueuedWrite {
    visible_at: SimTime,
    addr: u64,
}

/// A write-back posted by a CPU cache, indexed by line.
struct LineWrite {
    visible_at: SimTime,
    /// Port that posted it: the memory device serializes same-source,
    /// same-address streams, so a *fetch* from this port observes it even
    /// before global visibility.
    port: PortId,
    data: [u8; LINE as usize],
}

/// The shared pool: flat memory + meters + class registry + posted writes.
pub struct CxlPool {
    mem: Vec<u8>,
    meters: Vec<LinkMeter>,
    /// `(start, end, class)` ranges registered by the region allocator,
    /// kept sorted by `start` and pairwise disjoint so classification is a
    /// binary search.
    class_ranges: Vec<(u64, u64, TrafficClass)>,
    /// Posted write-backs not yet visible, kept sorted by `visible_at`
    /// (ties in posting order). Holds ordering only; see `pending_by_line`.
    pending: Vec<QueuedWrite>,
    /// Line address → this line's still-pending writes, in queue order.
    /// Lets `fetch_line`'s own-port overlay look at one short vector
    /// instead of scanning the whole queue.
    pending_by_line: AddrMap<Vec<LineWrite>>,
    /// Memo of the last classified range (start, end, class): datapath
    /// traffic hammers one region at a time, so most lookups hit here and
    /// skip the binary search. `(0, 0, _)` never matches.
    last_class: std::cell::Cell<(u64, u64, TrafficClass)>,
    /// Coherence sanitizer shadow state (pure observer; never affects
    /// timing, metering, or memory contents).
    #[cfg(feature = "sanitize")]
    pub san: crate::sanitizer::Sanitizer,
    /// Per-port bytes-on-the-wire timelines (pure observer, like the
    /// sanitizer: never affects timing, metering, or memory contents).
    #[cfg(feature = "obs")]
    tl_xfer: Vec<oasis_obs::Timeline>,
}

impl CxlPool {
    /// Create a pool of `size` bytes shared by `ports` host ports.
    pub fn new(size: u64, ports: usize) -> Self {
        CxlPool {
            mem: vec![0; size as usize],
            meters: vec![LinkMeter::default(); ports],
            class_ranges: Vec::new(),
            pending: Vec::new(),
            pending_by_line: AddrMap::new(),
            last_class: std::cell::Cell::new((0, 0, TrafficClass::Unclassified)),
            #[cfg(feature = "sanitize")]
            san: crate::sanitizer::Sanitizer::new(ports),
            #[cfg(feature = "obs")]
            tl_xfer: vec![oasis_obs::Timeline::default(); ports],
        }
    }

    /// Per-port transfer timelines recorded so far (`obs` feature).
    #[cfg(feature = "obs")]
    pub fn transfer_timelines(&self) -> &[oasis_obs::Timeline] {
        &self.tl_xfer
    }

    #[cfg(feature = "obs")]
    #[inline]
    fn note_xfer(&mut self, at: SimTime, port: PortId, bytes: u64) {
        self.tl_xfer[port.0].add(at, bytes);
    }

    #[cfg(not(feature = "obs"))]
    #[inline(always)]
    fn note_xfer(&mut self, _at: SimTime, _port: PortId, _bytes: u64) {}

    /// Register a region name for sanitizer diagnostics. No-op unless the
    /// `sanitize` feature is enabled.
    #[cfg(feature = "sanitize")]
    pub fn note_region(&mut self, base: u64, end: u64, name: &str) {
        self.san.note_region(base, end, name);
    }

    /// Register a region name for sanitizer diagnostics. No-op unless the
    /// `sanitize` feature is enabled.
    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    pub fn note_region(&mut self, _base: u64, _end: u64, _name: &str) {}

    /// Tell the sanitizer a host's CPU cache was dropped wholesale (crash):
    /// its shadow snapshots are invalidated. No-op unless the `sanitize`
    /// feature is enabled.
    #[cfg(feature = "sanitize")]
    pub fn san_host_reset(&mut self, port: PortId) {
        self.san.on_host_reset(port);
    }

    /// Tell the sanitizer a host's CPU cache was dropped wholesale (crash).
    /// No-op unless the `sanitize` feature is enabled.
    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    pub fn san_host_reset(&mut self, _port: PortId) {}

    /// Pool capacity in bytes.
    pub fn size(&self) -> u64 {
        self.mem.len() as u64
    }

    /// Number of host ports.
    pub fn ports(&self) -> usize {
        self.meters.len()
    }

    /// Traffic meter of a port.
    pub fn meter(&self, port: PortId) -> &LinkMeter {
        &self.meters[port.0]
    }

    /// Reset all port meters.
    pub fn reset_meters(&mut self) {
        for m in &mut self.meters {
            m.reset();
        }
    }

    /// Register a class for an address range (called by the region
    /// allocator). Ranges must not overlap previously registered ones; they
    /// are kept sorted by start address so [`Self::classify`] can binary
    /// search.
    pub fn register_class(&mut self, start: u64, end: u64, class: TrafficClass) {
        debug_assert!(start <= end && end <= self.size());
        let idx = self.class_ranges.partition_point(|&(s, _, _)| s < start);
        debug_assert!(
            idx == 0 || self.class_ranges[idx - 1].1 <= start,
            "class range overlaps its predecessor"
        );
        debug_assert!(
            idx == self.class_ranges.len() || end <= self.class_ranges[idx].0,
            "class range overlaps its successor"
        );
        self.class_ranges.insert(idx, (start, end, class));
        self.last_class.set((0, 0, TrafficClass::Unclassified));
    }

    /// Classify an address by its registered region (binary search over the
    /// sorted, disjoint range set).
    pub fn classify(&self, addr: u64) -> TrafficClass {
        let (ms, me, mc) = self.last_class.get();
        if ms <= addr && addr < me {
            return mc;
        }
        let idx = self.class_ranges.partition_point(|&(s, _, _)| s <= addr);
        match idx.checked_sub(1).map(|i| self.class_ranges[i]) {
            Some((s, e, c)) if addr < e => {
                self.last_class.set((s, e, c));
                c
            }
            _ => TrafficClass::Unclassified,
        }
    }

    /// End of the contiguous same-class span containing `addr`: the end of
    /// its registered range, or — for unclassified addresses — the start of
    /// the next registered range (or pool size). Bulk transfers clamp their
    /// runs here so per-run metering attributes bytes to exactly the class
    /// a per-line walk would have.
    pub(crate) fn class_span_end(&self, addr: u64) -> u64 {
        let idx = self.class_ranges.partition_point(|&(s, _, _)| s <= addr);
        if let Some((_, e, _)) = idx.checked_sub(1).map(|i| self.class_ranges[i]) {
            if addr < e {
                return e;
            }
        }
        self.class_ranges
            .get(idx)
            .map_or(self.size(), |&(s, _, _)| s)
    }

    /// Apply all posted write-backs that have become visible by `now`.
    ///
    /// `pending` is sorted by visibility time, so the visible entries are a
    /// prefix: one `partition_point` + `drain`, with an O(1) early return
    /// when nothing is due (the common case on hot paths).
    pub fn apply_pending(&mut self, now: SimTime) {
        match self.pending.first() {
            Some(w) if w.visible_at <= now => {}
            _ => return,
        }
        let idx = self.pending.partition_point(|w| w.visible_at <= now);
        for w in self.pending.drain(..idx) {
            // The queue's global order restricted to one line equals that
            // line's index order, so this write is its line's front entry.
            // oasis-check: allow(no-panic) pending and pending_by_line are
            // updated together; a missing index entry is memory corruption,
            // not a recoverable condition.
            let entries = self
                .pending_by_line
                .get_mut(w.addr)
                .expect("queued write has an index entry");
            let e = entries.remove(0);
            debug_assert_eq!(e.visible_at, w.visible_at);
            if entries.is_empty() {
                self.pending_by_line.remove(w.addr);
            }
            #[cfg(feature = "sanitize")]
            self.san.on_apply_writeback(e.port, w.addr);
            let base = w.addr as usize;
            self.mem[base..base + LINE as usize].copy_from_slice(&e.data);
        }
    }

    /// Force all posted write-backs visible immediately (used when tearing
    /// down a measurement or by tests).
    pub fn flush_pending(&mut self) {
        self.apply_pending(SimTime::MAX);
    }

    /// Fetch one line for a CPU cache fill. Meters a 64 B read on `port`.
    ///
    /// The device serializes requests from the same port to the same
    /// address, so the fetch observes this port's *own* still-in-flight
    /// write-backs (read-your-own-writes holds within a host even across a
    /// flush–refetch race); other hosts' posted writes stay invisible until
    /// their propagation delay elapses.
    pub(crate) fn fetch_line(
        &mut self,
        now: SimTime,
        port: PortId,
        line_addr: u64,
    ) -> [u8; LINE as usize] {
        self.apply_pending(now);
        let class = self.classify(line_addr);
        self.meters[port.0].read_bytes[class.index()] += LINE;
        self.note_xfer(now, port, LINE);
        let base = line_addr as usize;
        let mut out = [0u8; LINE as usize];
        out.copy_from_slice(&self.mem[base..base + LINE as usize]);
        // Overlay this port's own pending write-backs: the last matching
        // entry in the line's (queue-ordered) index, if any.
        if !self.pending_by_line.is_empty() {
            if let Some(entries) = self.pending_by_line.get(line_addr) {
                if let Some(w) = entries.iter().rev().find(|w| w.port == port) {
                    out.copy_from_slice(&w.data);
                }
            }
        }
        out
    }

    /// Fetch a run of contiguous lines for a streaming CPU fill: line `i`
    /// of the run is fetched at `t0 + i * step_ns`, exactly as if
    /// [`Self::fetch_line`] had been called once per line at those times,
    /// but with one metering charge and one bulk copy for the whole run.
    ///
    /// The caller guarantees the run lies within a single traffic-class
    /// span (see [`Self::class_span_end`]). `out.len()` must be a whole
    /// number of lines.
    pub(crate) fn fetch_lines(
        &mut self,
        t0: SimTime,
        step_ns: u64,
        port: PortId,
        line_addr: u64,
        out: &mut [u8],
    ) {
        debug_assert!(out.len().is_multiple_of(LINE as usize));
        if out.is_empty() {
            return;
        }
        let n_lines = (out.len() as u64) / LINE;
        // Every line *base* must share `line_addr`'s class (spans need not
        // be line-aligned, so the last line may extend past the span end —
        // classification is by base, exactly as in the per-line walk).
        debug_assert!(line_addr + (n_lines - 1) * LINE < self.class_span_end(line_addr));
        self.apply_pending(t0);
        let class = self.classify(line_addr);
        self.meters[port.0].read_bytes[class.index()] += out.len() as u64;
        self.note_xfer(t0, port, out.len() as u64);
        let base = line_addr as usize;
        out.copy_from_slice(&self.mem[base..base + out.len()]);
        // Per-line fixups for writes still queued after the t0 apply: a
        // queued write is observed by line `i`'s fetch if it has become
        // globally visible by that line's fetch time, or if this port
        // posted it (same-source serialization). Walking the line's index
        // in order and keeping the last match reproduces the apply-then-
        // overlay order of per-line fetches. Skipped entirely when nothing
        // is queued — the common case.
        if !self.pending_by_line.is_empty() {
            for i in 0..n_lines {
                let la = line_addr + i * LINE;
                let Some(entries) = self.pending_by_line.get(la) else {
                    continue;
                };
                let t_i = t0 + oasis_sim::time::SimDuration::from_nanos(i * step_ns);
                let off = (i * LINE) as usize;
                for w in entries {
                    if w.visible_at <= t_i || w.port == port {
                        out[off..off + LINE as usize].copy_from_slice(&w.data);
                    }
                }
            }
            // Match the queue state a per-line walk would have left: every
            // write due by the final fetch time has been applied.
            self.apply_pending(
                t0 + oasis_sim::time::SimDuration::from_nanos((n_lines - 1) * step_ns),
            );
        }
    }

    /// Post a line write-back from a CPU cache; visible at `visible_at`.
    /// Meters a 64 B write on `port`.
    pub(crate) fn post_writeback(
        &mut self,
        port: PortId,
        line_addr: u64,
        data: [u8; LINE as usize],
        visible_at: SimTime,
    ) {
        let class = self.classify(line_addr);
        self.meters[port.0].write_bytes[class.index()] += LINE;
        // Timeline-binned at visibility time — the instant the line is on
        // the wire toward pool memory (posting time is not plumbed here).
        self.note_xfer(visible_at, port, LINE);
        #[cfg(feature = "sanitize")]
        self.san.on_post_writeback(port, line_addr, visible_at);
        // Insert keeping `pending` sorted by visibility time so apply order
        // is deterministic even when host clocks are slightly skewed.
        let idx = self.pending.partition_point(|w| w.visible_at <= visible_at);
        self.pending.insert(
            idx,
            QueuedWrite {
                visible_at,
                addr: line_addr,
            },
        );
        // Mirror into the per-line index at the same relative position so
        // the line's vector stays in queue order.
        let entries = self.pending_by_line.get_or_insert_with(line_addr, Vec::new);
        let line_idx = entries.partition_point(|w| w.visible_at <= visible_at);
        entries.insert(
            line_idx,
            LineWrite {
                visible_at,
                port,
                data,
            },
        );
    }

    /// Device DMA read: bypasses CPU caches entirely, reads pool memory
    /// directly. Metered on `port` (the port of the host the device hangs
    /// off).
    pub fn dma_read(&mut self, now: SimTime, port: PortId, addr: u64, out: &mut [u8]) {
        self.apply_pending(now);
        #[cfg(feature = "sanitize")]
        self.san.on_dma_read(port, addr, out.len() as u64, now);
        let class = self.classify(addr);
        self.meters[port.0].read_bytes[class.index()] += out.len() as u64;
        self.note_xfer(now, port, out.len() as u64);
        let base = addr as usize;
        out.copy_from_slice(&self.mem[base..base + out.len()]);
    }

    /// Device DMA write: bypasses CPU caches, immediately visible in pool
    /// memory (devices do not have a posted write-back queue in this model;
    /// their latency is charged by the device's own timing model).
    pub fn dma_write(&mut self, now: SimTime, port: PortId, addr: u64, data: &[u8]) {
        self.apply_pending(now);
        #[cfg(feature = "sanitize")]
        self.san.on_dma_write(port, addr, data.len() as u64);
        let class = self.classify(addr);
        self.meters[port.0].write_bytes[class.index()] += data.len() as u64;
        self.note_xfer(now, port, data.len() as u64);
        let base = addr as usize;
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Unmetered debug read of pool memory (tests and assertions only).
    pub fn peek(&self, addr: u64, out: &mut [u8]) {
        let base = addr as usize;
        out.copy_from_slice(&self.mem[base..base + out.len()]);
    }

    /// Unmetered debug write of pool memory (test setup only).
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        let base = addr as usize;
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Number of write-backs still in flight.
    pub fn pending_writebacks(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn dma_write_then_read_roundtrip() {
        let mut p = CxlPool::new(4096, 2);
        p.dma_write(t(0), PortId(0), 100, b"hello");
        let mut buf = [0u8; 5];
        p.dma_read(t(1), PortId(1), 100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn posted_writeback_invisible_until_deadline() {
        let mut p = CxlPool::new(4096, 1);
        let mut line = [0u8; 64];
        line[0] = 42;
        p.post_writeback(PortId(0), 0, line, t(100));
        let mut buf = [0u8; 1];
        p.dma_read(t(50), PortId(0), 0, &mut buf);
        assert_eq!(buf[0], 0, "write must not be visible before t=100");
        p.dma_read(t(100), PortId(0), 0, &mut buf);
        assert_eq!(buf[0], 42, "write must be visible at t=100");
    }

    #[test]
    fn meters_attribute_by_class_and_port() {
        let mut p = CxlPool::new(4096, 2);
        p.register_class(0, 1024, TrafficClass::Payload);
        p.register_class(1024, 2048, TrafficClass::Message);
        p.dma_write(t(0), PortId(0), 0, &[0u8; 128]);
        p.dma_read(t(0), PortId(1), 1024, &mut [0u8; 64]);
        assert_eq!(p.meter(PortId(0)).write_bytes(TrafficClass::Payload), 128);
        assert_eq!(p.meter(PortId(0)).total_bytes(), 128);
        assert_eq!(p.meter(PortId(1)).read_bytes(TrafficClass::Message), 64);
        assert_eq!(p.meter(PortId(1)).class_bytes(TrafficClass::Message), 64);
        p.reset_meters();
        assert_eq!(p.meter(PortId(0)).total_bytes(), 0);
    }

    #[test]
    fn classify_falls_back_to_unclassified() {
        let mut p = CxlPool::new(4096, 1);
        p.register_class(0, 64, TrafficClass::Control);
        assert_eq!(p.classify(10), TrafficClass::Control);
        assert_eq!(p.classify(64), TrafficClass::Unclassified);
    }

    #[test]
    fn fetch_line_sees_applied_writebacks_in_time_order() {
        // Cross-host view: another port observes write-backs only as their
        // propagation delays elapse, in visibility order.
        let mut p = CxlPool::new(4096, 2);
        let mut l1 = [0u8; 64];
        l1[0] = 1;
        let mut l2 = [0u8; 64];
        l2[0] = 2;
        // Two write-backs to the same line: later-visible one posted first.
        p.post_writeback(PortId(0), 0, l2, t(200));
        p.post_writeback(PortId(0), 0, l1, t(100));
        let line = p.fetch_line(t(150), PortId(1), 0);
        assert_eq!(line[0], 1);
        let line = p.fetch_line(t(250), PortId(1), 0);
        assert_eq!(line[0], 2);
    }

    #[test]
    fn fetch_line_observes_own_port_inflight_writebacks() {
        // Same-source ordering: the posting port reads its own write-back
        // immediately, even before global visibility.
        let mut p = CxlPool::new(4096, 2);
        let mut l = [0u8; 64];
        l[0] = 7;
        p.post_writeback(PortId(0), 0, l, t(1_000));
        assert_eq!(p.fetch_line(t(10), PortId(0), 0)[0], 7, "own write seen");
        assert_eq!(p.fetch_line(t(10), PortId(1), 0)[0], 0, "peer still stale");
        assert_eq!(p.fetch_line(t(1_000), PortId(1), 0)[0], 7);
    }

    #[test]
    fn flush_pending_applies_everything() {
        let mut p = CxlPool::new(4096, 1);
        let mut l = [0u8; 64];
        l[7] = 9;
        p.post_writeback(PortId(0), 64, l, t(1_000_000));
        assert_eq!(p.pending_writebacks(), 1);
        p.flush_pending();
        assert_eq!(p.pending_writebacks(), 0);
        let mut buf = [0u8; 1];
        p.peek(64 + 7, &mut buf);
        assert_eq!(buf[0], 9);
    }
}

#[cfg(test)]
mod pending_props {
    use super::*;
    use oasis_sim::time::SimDuration;
    use proptest::prelude::*;

    /// A posted write as the reference model remembers it: the full history
    /// in posting order, never drained.
    #[derive(Clone, Copy, Debug)]
    struct MWrite {
        visible_at: SimTime,
        port: usize,
        line: u64,
        byte: u8,
    }

    /// What a fetch of `line` by `port` at `now` must return, derived from
    /// the full posting history instead of the pool's queue:
    ///
    /// 1. writes with `visible_at <= now` land in memory in visibility
    ///    order (posting order breaks ties) — so the last such write wins;
    /// 2. of the writes still in flight, the fetching port observes its
    ///    *own* (same-source serialization: read-your-own-writes), again
    ///    the last in that order; every other port's in-flight write stays
    ///    invisible until its deadline.
    fn model_fetch(history: &[MWrite], now: SimTime, port: usize, line: u64) -> u8 {
        let mut to_line: Vec<&MWrite> = history.iter().filter(|w| w.line == line).collect();
        // Stable sort: ties in visible_at keep posting order.
        to_line.sort_by_key(|w| w.visible_at);
        let mut landed = 0u8; // pool memory starts zeroed
        let mut own_inflight = None;
        for w in to_line {
            if w.visible_at <= now {
                landed = w.byte;
            } else if w.port == port {
                own_inflight = Some(w.byte);
            }
        }
        own_inflight.unwrap_or(landed)
    }

    #[derive(Clone, Debug)]
    enum Op {
        Post {
            port: usize,
            line: u64,
            byte: u8,
            delay: u64,
        },
        Advance {
            ns: u64,
        },
        Fetch {
            port: usize,
            line: u64,
        },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // 4 lines × 3 ports with short horizons keeps same-line collisions
        // and visibility ties frequent.
        prop_oneof![
            (0usize..3, 0u64..4, any::<u8>(), 0u64..500).prop_map(|(port, line, byte, delay)| {
                Op::Post {
                    port,
                    line,
                    byte,
                    delay,
                }
            }),
            (0u64..300).prop_map(|ns| Op::Advance { ns }),
            (0usize..3, 0u64..4).prop_map(|(port, line)| Op::Fetch { port, line }),
        ]
    }

    proptest! {
        /// Pending-write-back semantics against the reference model: each
        /// port reads its own posted writes immediately; no port observes
        /// another port's write before its `visible_at`; once due, writes
        /// land in visibility order. Also checks that the prefix-drain
        /// `apply_pending` retires exactly the due writes.
        #[test]
        fn pending_writebacks_match_model(
            ops in proptest::collection::vec(op_strategy(), 1..150),
        ) {
            let mut pool = CxlPool::new(4 * LINE, 3);
            let mut history: Vec<MWrite> = Vec::new();
            let mut now = SimTime::ZERO;
            for op in ops {
                match op {
                    Op::Post { port, line, byte, delay } => {
                        let visible_at = now + SimDuration::from_nanos(delay);
                        pool.post_writeback(
                            PortId(port),
                            line * LINE,
                            [byte; LINE as usize],
                            visible_at,
                        );
                        history.push(MWrite { visible_at, port, line, byte });
                    }
                    Op::Advance { ns } => now += SimDuration::from_nanos(ns),
                    Op::Fetch { port, line } => {
                        let got = pool.fetch_line(now, PortId(port), line * LINE);
                        let want = model_fetch(&history, now, port, line);
                        prop_assert_eq!(
                            got,
                            [want; LINE as usize],
                            "fetch(line {} port {} at {:?}) diverged from model",
                            line,
                            port,
                            now
                        );
                        // fetch_line applied everything due by `now`, so the
                        // queue must hold exactly the not-yet-due writes.
                        let inflight =
                            history.iter().filter(|w| w.visible_at > now).count();
                        prop_assert_eq!(pool.pending_writebacks(), inflight);
                    }
                }
            }
        }

        /// The bulk streaming fetch is observationally identical to the
        /// per-line walk it replaces: same bytes, same meter totals, same
        /// retired-queue state, for any posted-write history and any
        /// (start, length, step, port, t0).
        #[test]
        fn bulk_fetch_matches_per_line_walk(
            posts in proptest::collection::vec(
                (0usize..3, 0u64..4, any::<u8>(), 0u64..800),
                0..24,
            ),
            start in 0u64..4,
            len in 1u64..5,
            step_ns in 0u64..120,
            port in 0usize..3,
            t0_ns in 0u64..900,
        ) {
            let n_lines = len.min(4 - start);
            prop_assume!(n_lines >= 1);
            let t0 = SimTime::from_nanos(t0_ns);
            // Two pools fed the identical posting history.
            let mut bulk = CxlPool::new(4 * LINE, 3);
            let mut walk = CxlPool::new(4 * LINE, 3);
            for &(p, line, byte, vis) in &posts {
                let data = [byte; LINE as usize];
                let at = SimTime::from_nanos(vis);
                bulk.post_writeback(PortId(p), line * LINE, data, at);
                walk.post_writeback(PortId(p), line * LINE, data, at);
            }

            let mut got = vec![0u8; (n_lines * LINE) as usize];
            bulk.fetch_lines(t0, step_ns, PortId(port), start * LINE, &mut got);

            let mut want = vec![0u8; (n_lines * LINE) as usize];
            for i in 0..n_lines {
                let t_i = t0 + SimDuration::from_nanos(i * step_ns);
                let line = walk.fetch_line(t_i, PortId(port), (start + i) * LINE);
                let off = (i * LINE) as usize;
                want[off..off + LINE as usize].copy_from_slice(&line);
            }

            prop_assert_eq!(got, want, "bulk bytes diverged from per-line walk");
            prop_assert_eq!(
                bulk.meter(PortId(port)).total_bytes(),
                walk.meter(PortId(port)).total_bytes(),
                "meter totals diverged"
            );
            prop_assert_eq!(
                bulk.pending_writebacks(),
                walk.pending_writebacks(),
                "retired-queue state diverged"
            );
        }
    }
}
