//! The shared CXL pool memory and its per-port link meters.
//!
//! Pool memory is a flat byte array addressed from zero. Hosts reach it
//! through their [`crate::HostCtx`] (which models their CPU cache); PCIe
//! devices reach it through [`CxlPool::dma_read`] / [`CxlPool::dma_write`],
//! which bypass every CPU cache — the paper's datapath depends on exactly
//! this property (§3.2.1, DDIO disabled).
//!
//! Write-backs from CPU caches are *posted*: they become visible in pool
//! memory only after the configured propagation delay, which is what gives
//! the one-way message latency its 2× CXL-access floor (Fig. 6).
//!
//! Every transfer is metered per host port and per [`TrafficClass`], so
//! experiments can reproduce Table 3's payload/message bandwidth split.

use oasis_sim::time::SimTime;

use crate::LINE;

/// Identifies a host's port on the multi-headed CXL device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// What a range of pool memory is used for; Table 3 of the paper reports
/// CXL bandwidth split along these lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// I/O buffer contents (packet payloads, block data).
    Payload,
    /// Message-channel slots and consumed counters.
    Message,
    /// Allocator/telemetry/Raft state.
    Control,
    /// Anything not registered.
    Unclassified,
}

impl TrafficClass {
    const COUNT: usize = 4;

    #[inline]
    fn index(self) -> usize {
        match self {
            TrafficClass::Payload => 0,
            TrafficClass::Message => 1,
            TrafficClass::Control => 2,
            TrafficClass::Unclassified => 3,
        }
    }

    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Payload,
        TrafficClass::Message,
        TrafficClass::Control,
        TrafficClass::Unclassified,
    ];
}

/// Cumulative traffic counters for one host's CXL port.
#[derive(Clone, Debug, Default)]
pub struct LinkMeter {
    read_bytes: [u64; TrafficClass::COUNT],
    write_bytes: [u64; TrafficClass::COUNT],
}

impl LinkMeter {
    /// Bytes read from the pool over this port for a class.
    pub fn read_bytes(&self, class: TrafficClass) -> u64 {
        self.read_bytes[class.index()]
    }

    /// Bytes written to the pool over this port for a class.
    pub fn write_bytes(&self, class: TrafficClass) -> u64 {
        self.write_bytes[class.index()]
    }

    /// Total bytes in both directions, all classes.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes.iter().sum::<u64>() + self.write_bytes.iter().sum::<u64>()
    }

    /// Total bytes in both directions for one class.
    pub fn class_bytes(&self, class: TrafficClass) -> u64 {
        self.read_bytes[class.index()] + self.write_bytes[class.index()]
    }

    /// Reset all counters (used to delimit measurement windows).
    pub fn reset(&mut self) {
        self.read_bytes = [0; TrafficClass::COUNT];
        self.write_bytes = [0; TrafficClass::COUNT];
    }
}

/// A write-back posted by a CPU cache, visible in pool memory at `visible_at`.
struct PendingWrite {
    visible_at: SimTime,
    addr: u64,
    /// Port that posted it: the memory device serializes same-source,
    /// same-address streams, so a *fetch* from this port observes it even
    /// before global visibility.
    port: PortId,
    data: [u8; LINE as usize],
}

/// The shared pool: flat memory + meters + class registry + posted writes.
pub struct CxlPool {
    mem: Vec<u8>,
    meters: Vec<LinkMeter>,
    /// `(start, end, class)` ranges registered by the region allocator.
    class_ranges: Vec<(u64, u64, TrafficClass)>,
    /// Posted write-backs not yet visible, kept sorted by `visible_at`.
    pending: Vec<PendingWrite>,
}

impl CxlPool {
    /// Create a pool of `size` bytes shared by `ports` host ports.
    pub fn new(size: u64, ports: usize) -> Self {
        CxlPool {
            mem: vec![0; size as usize],
            meters: vec![LinkMeter::default(); ports],
            class_ranges: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Pool capacity in bytes.
    pub fn size(&self) -> u64 {
        self.mem.len() as u64
    }

    /// Number of host ports.
    pub fn ports(&self) -> usize {
        self.meters.len()
    }

    /// Traffic meter of a port.
    pub fn meter(&self, port: PortId) -> &LinkMeter {
        &self.meters[port.0]
    }

    /// Reset all port meters.
    pub fn reset_meters(&mut self) {
        for m in &mut self.meters {
            m.reset();
        }
    }

    /// Register a class for an address range (called by the region
    /// allocator).
    pub fn register_class(&mut self, start: u64, end: u64, class: TrafficClass) {
        debug_assert!(start <= end && end <= self.size());
        self.class_ranges.push((start, end, class));
    }

    /// Classify an address by its registered region.
    pub fn classify(&self, addr: u64) -> TrafficClass {
        for &(s, e, c) in &self.class_ranges {
            if (s..e).contains(&addr) {
                return c;
            }
        }
        TrafficClass::Unclassified
    }

    /// Apply all posted write-backs that have become visible by `now`.
    pub fn apply_pending(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].visible_at <= now {
                let w = self.pending.remove(i);
                let base = w.addr as usize;
                self.mem[base..base + LINE as usize].copy_from_slice(&w.data);
            } else {
                i += 1;
            }
        }
    }

    /// Force all posted write-backs visible immediately (used when tearing
    /// down a measurement or by tests).
    pub fn flush_pending(&mut self) {
        self.apply_pending(SimTime::MAX);
    }

    /// Fetch one line for a CPU cache fill. Meters a 64 B read on `port`.
    ///
    /// The device serializes requests from the same port to the same
    /// address, so the fetch observes this port's *own* still-in-flight
    /// write-backs (read-your-own-writes holds within a host even across a
    /// flush–refetch race); other hosts' posted writes stay invisible until
    /// their propagation delay elapses.
    pub(crate) fn fetch_line(
        &mut self,
        now: SimTime,
        port: PortId,
        line_addr: u64,
    ) -> [u8; LINE as usize] {
        self.apply_pending(now);
        let class = self.classify(line_addr);
        self.meters[port.0].read_bytes[class.index()] += LINE;
        let base = line_addr as usize;
        let mut out = [0u8; LINE as usize];
        out.copy_from_slice(&self.mem[base..base + LINE as usize]);
        // Overlay this port's own pending write-backs, in posting order.
        for w in &self.pending {
            if w.addr == line_addr && w.port == port {
                out.copy_from_slice(&w.data);
            }
        }
        out
    }

    /// Post a line write-back from a CPU cache; visible at `visible_at`.
    /// Meters a 64 B write on `port`.
    pub(crate) fn post_writeback(
        &mut self,
        port: PortId,
        line_addr: u64,
        data: [u8; LINE as usize],
        visible_at: SimTime,
    ) {
        let class = self.classify(line_addr);
        self.meters[port.0].write_bytes[class.index()] += LINE;
        // Insert keeping `pending` sorted by visibility time so apply order
        // is deterministic even when host clocks are slightly skewed.
        let idx = self.pending.partition_point(|w| w.visible_at <= visible_at);
        self.pending.insert(
            idx,
            PendingWrite {
                visible_at,
                addr: line_addr,
                port,
                data,
            },
        );
    }

    /// Device DMA read: bypasses CPU caches entirely, reads pool memory
    /// directly. Metered on `port` (the port of the host the device hangs
    /// off).
    pub fn dma_read(&mut self, now: SimTime, port: PortId, addr: u64, out: &mut [u8]) {
        self.apply_pending(now);
        let class = self.classify(addr);
        self.meters[port.0].read_bytes[class.index()] += out.len() as u64;
        let base = addr as usize;
        out.copy_from_slice(&self.mem[base..base + out.len()]);
    }

    /// Device DMA write: bypasses CPU caches, immediately visible in pool
    /// memory (devices do not have a posted write-back queue in this model;
    /// their latency is charged by the device's own timing model).
    pub fn dma_write(&mut self, now: SimTime, port: PortId, addr: u64, data: &[u8]) {
        self.apply_pending(now);
        let class = self.classify(addr);
        self.meters[port.0].write_bytes[class.index()] += data.len() as u64;
        let base = addr as usize;
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Unmetered debug read of pool memory (tests and assertions only).
    pub fn peek(&self, addr: u64, out: &mut [u8]) {
        let base = addr as usize;
        out.copy_from_slice(&self.mem[base..base + out.len()]);
    }

    /// Unmetered debug write of pool memory (test setup only).
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        let base = addr as usize;
        self.mem[base..base + data.len()].copy_from_slice(data);
    }

    /// Number of write-backs still in flight.
    pub fn pending_writebacks(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn dma_write_then_read_roundtrip() {
        let mut p = CxlPool::new(4096, 2);
        p.dma_write(t(0), PortId(0), 100, b"hello");
        let mut buf = [0u8; 5];
        p.dma_read(t(1), PortId(1), 100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn posted_writeback_invisible_until_deadline() {
        let mut p = CxlPool::new(4096, 1);
        let mut line = [0u8; 64];
        line[0] = 42;
        p.post_writeback(PortId(0), 0, line, t(100));
        let mut buf = [0u8; 1];
        p.dma_read(t(50), PortId(0), 0, &mut buf);
        assert_eq!(buf[0], 0, "write must not be visible before t=100");
        p.dma_read(t(100), PortId(0), 0, &mut buf);
        assert_eq!(buf[0], 42, "write must be visible at t=100");
    }

    #[test]
    fn meters_attribute_by_class_and_port() {
        let mut p = CxlPool::new(4096, 2);
        p.register_class(0, 1024, TrafficClass::Payload);
        p.register_class(1024, 2048, TrafficClass::Message);
        p.dma_write(t(0), PortId(0), 0, &[0u8; 128]);
        p.dma_read(t(0), PortId(1), 1024, &mut [0u8; 64]);
        assert_eq!(p.meter(PortId(0)).write_bytes(TrafficClass::Payload), 128);
        assert_eq!(p.meter(PortId(0)).total_bytes(), 128);
        assert_eq!(p.meter(PortId(1)).read_bytes(TrafficClass::Message), 64);
        assert_eq!(p.meter(PortId(1)).class_bytes(TrafficClass::Message), 64);
        p.reset_meters();
        assert_eq!(p.meter(PortId(0)).total_bytes(), 0);
    }

    #[test]
    fn classify_falls_back_to_unclassified() {
        let mut p = CxlPool::new(4096, 1);
        p.register_class(0, 64, TrafficClass::Control);
        assert_eq!(p.classify(10), TrafficClass::Control);
        assert_eq!(p.classify(64), TrafficClass::Unclassified);
    }

    #[test]
    fn fetch_line_sees_applied_writebacks_in_time_order() {
        // Cross-host view: another port observes write-backs only as their
        // propagation delays elapse, in visibility order.
        let mut p = CxlPool::new(4096, 2);
        let mut l1 = [0u8; 64];
        l1[0] = 1;
        let mut l2 = [0u8; 64];
        l2[0] = 2;
        // Two write-backs to the same line: later-visible one posted first.
        p.post_writeback(PortId(0), 0, l2, t(200));
        p.post_writeback(PortId(0), 0, l1, t(100));
        let line = p.fetch_line(t(150), PortId(1), 0);
        assert_eq!(line[0], 1);
        let line = p.fetch_line(t(250), PortId(1), 0);
        assert_eq!(line[0], 2);
    }

    #[test]
    fn fetch_line_observes_own_port_inflight_writebacks() {
        // Same-source ordering: the posting port reads its own write-back
        // immediately, even before global visibility.
        let mut p = CxlPool::new(4096, 2);
        let mut l = [0u8; 64];
        l[0] = 7;
        p.post_writeback(PortId(0), 0, l, t(1_000));
        assert_eq!(p.fetch_line(t(10), PortId(0), 0)[0], 7, "own write seen");
        assert_eq!(p.fetch_line(t(10), PortId(1), 0)[0], 0, "peer still stale");
        assert_eq!(p.fetch_line(t(1_000), PortId(1), 0)[0], 7);
    }

    #[test]
    fn flush_pending_applies_everything() {
        let mut p = CxlPool::new(4096, 1);
        let mut l = [0u8; 64];
        l[7] = 9;
        p.post_writeback(PortId(0), 64, l, t(1_000_000));
        assert_eq!(p.pending_writebacks(), 1);
        p.flush_pending();
        assert_eq!(p.pending_writebacks(), 0);
        let mut buf = [0u8; 1];
        p.peek(64 + 7, &mut buf);
        assert_eq!(buf[0], 9);
    }
}
