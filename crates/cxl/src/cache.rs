//! Per-host write-back CPU cache model.
//!
//! Only the lines that matter for non-coherence are modelled: presence,
//! dirtiness, the data snapshot taken at fill time, and the time at which an
//! asynchronous prefetch fill completes. A host reading a present line gets
//! the (possibly stale) snapshot — there is no snooping across hosts, and
//! device DMA never looks in here. That is precisely the CXL 2.0 behaviour
//! Oasis is designed around.
//!
//! Eviction is exact LRU via a `BTreeSet<(tick, addr)>` index, deterministic
//! and O(log n).

use std::collections::BTreeSet;

use oasis_sim::detmap::DetMap;
use oasis_sim::time::SimTime;

use crate::LINE;

/// One cached 64 B line.
#[derive(Clone)]
pub struct CacheLine {
    /// Snapshot of the line contents as of fill time plus any local stores.
    pub data: [u8; LINE as usize],
    /// True if the host has stored to this line since fill/write-back.
    pub dirty: bool,
    /// When an asynchronous (prefetch) fill completes; reads before this
    /// stall until it.
    pub ready_at: SimTime,
    lru_tick: u64,
}

/// A host's cache of pool lines, keyed by line base address.
pub struct HostCache {
    lines: DetMap<u64, CacheLine>,
    lru: BTreeSet<(u64, u64)>,
    capacity: usize,
    tick: u64,
}

/// A victim line evicted to make room; dirty victims must be written back by
/// the caller.
pub struct Evicted {
    /// Line base address.
    pub addr: u64,
    /// The line, with `dirty` indicating whether a write-back is required.
    pub line: CacheLine,
}

impl HostCache {
    /// Cache with room for `capacity` lines. The default used by hosts is
    /// 4096 lines (256 KiB), enough for a polling core's working set
    /// including a full 8192-slot 16 B message ring.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        HostCache {
            lines: DetMap::default(),
            lru: BTreeSet::new(),
            capacity,
            tick: 0,
        }
    }

    /// Number of lines currently cached.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no lines are cached.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Line capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is the line present?
    pub fn contains(&self, line_addr: u64) -> bool {
        self.lines.contains_key(&line_addr)
    }

    fn bump(tick: &mut u64, lru: &mut BTreeSet<(u64, u64)>, addr: u64, line: &mut CacheLine) {
        lru.remove(&(line.lru_tick, addr));
        *tick += 1;
        line.lru_tick = *tick;
        lru.insert((*tick, addr));
    }

    /// Access a present line, refreshing its LRU position. Returns `None` on
    /// miss.
    pub fn touch(&mut self, line_addr: u64) -> Option<&mut CacheLine> {
        let line = self.lines.get_mut(&line_addr)?;
        Self::bump(&mut self.tick, &mut self.lru, line_addr, line);
        Some(line)
    }

    /// Look at a line without refreshing LRU (used by assertions/tests).
    pub fn get(&self, line_addr: u64) -> Option<&CacheLine> {
        self.lines.get(&line_addr)
    }

    /// Insert (or replace) a line, evicting the LRU victim if at capacity.
    pub fn insert(
        &mut self,
        line_addr: u64,
        data: [u8; LINE as usize],
        dirty: bool,
        ready_at: SimTime,
    ) -> Option<Evicted> {
        // Replacing an existing line never evicts.
        if let Some(existing) = self.lines.get_mut(&line_addr) {
            existing.data = data;
            existing.dirty = dirty;
            existing.ready_at = ready_at;
            Self::bump(&mut self.tick, &mut self.lru, line_addr, existing);
            return None;
        }
        let victim = if self.lines.len() >= self.capacity {
            let &(vt, vaddr) = self.lru.iter().next().expect("lru nonempty at capacity");
            self.lru.remove(&(vt, vaddr));
            let line = self.lines.remove(&vaddr).expect("lru entry has line");
            Some(Evicted { addr: vaddr, line })
        } else {
            None
        };
        self.tick += 1;
        self.lines.insert(
            line_addr,
            CacheLine {
                data,
                dirty,
                ready_at,
                lru_tick: self.tick,
            },
        );
        self.lru.insert((self.tick, line_addr));
        victim
    }

    /// Remove a line (CLFLUSHOPT). Returns it so the caller can write back a
    /// dirty victim.
    pub fn remove(&mut self, line_addr: u64) -> Option<CacheLine> {
        let line = self.lines.remove(&line_addr)?;
        self.lru.remove(&(line.lru_tick, line_addr));
        Some(line)
    }

    /// Drop everything (e.g. host reset in failure tests). Dirty lines are
    /// returned for write-back.
    pub fn drain(&mut self) -> Vec<(u64, CacheLine)> {
        self.lru.clear();
        let mut out: Vec<(u64, CacheLine)> = self.lines.drain().collect();
        out.sort_by_key(|(addr, _)| *addr);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of(byte: u8) -> [u8; LINE as usize] {
        [byte; LINE as usize]
    }

    #[test]
    fn insert_and_touch() {
        let mut c = HostCache::new(4);
        assert!(c.insert(0, line_of(1), false, SimTime::ZERO).is_none());
        assert!(c.contains(0));
        assert_eq!(c.touch(0).unwrap().data[0], 1);
        assert!(c.touch(64).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = HostCache::new(2);
        c.insert(0, line_of(1), false, SimTime::ZERO);
        c.insert(64, line_of(2), false, SimTime::ZERO);
        // Touch 0 so 64 becomes LRU.
        c.touch(0);
        let victim = c.insert(128, line_of(3), false, SimTime::ZERO).unwrap();
        assert_eq!(victim.addr, 64);
        assert!(c.contains(0) && c.contains(128));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = HostCache::new(1);
        c.insert(0, line_of(9), true, SimTime::ZERO);
        let victim = c.insert(64, line_of(1), false, SimTime::ZERO).unwrap();
        assert!(victim.line.dirty);
        assert_eq!(victim.line.data[0], 9);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut c = HostCache::new(1);
        c.insert(0, line_of(1), false, SimTime::ZERO);
        assert!(c.insert(0, line_of(2), true, SimTime::ZERO).is_none());
        assert_eq!(c.get(0).unwrap().data[0], 2);
        assert!(c.get(0).unwrap().dirty);
    }

    #[test]
    fn remove_returns_line() {
        let mut c = HostCache::new(2);
        c.insert(0, line_of(5), true, SimTime::ZERO);
        let line = c.remove(0).unwrap();
        assert!(line.dirty);
        assert!(!c.contains(0));
        assert!(c.remove(0).is_none());
        // LRU index stays consistent after removal.
        c.insert(64, line_of(1), false, SimTime::ZERO);
        c.insert(128, line_of(2), false, SimTime::ZERO);
        let v = c.insert(192, line_of(3), false, SimTime::ZERO).unwrap();
        assert_eq!(v.addr, 64);
    }

    #[test]
    fn drain_returns_all_sorted() {
        let mut c = HostCache::new(8);
        c.insert(128, line_of(3), false, SimTime::ZERO);
        c.insert(0, line_of(1), true, SimTime::ZERO);
        c.insert(64, line_of(2), false, SimTime::ZERO);
        let drained = c.drain();
        assert_eq!(
            drained.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
            vec![0, 64, 128]
        );
        assert!(c.is_empty());
    }
}
