//! Per-host write-back CPU cache model.
//!
//! Only the lines that matter for non-coherence are modelled: presence,
//! dirtiness, the data snapshot taken at fill time, and the time at which an
//! asynchronous prefetch fill completes. A host reading a present line gets
//! the (possibly stale) snapshot — there is no snooping across hosts, and
//! device DMA never looks in here. That is precisely the CXL 2.0 behaviour
//! Oasis is designed around.
//!
//! Eviction is exact LRU in O(1): an intrusive doubly-linked list threaded
//! through a slab of line slots, with a hash map from line address to slab
//! index. The list runs LRU (head) → MRU (tail); every hit or (re)insert
//! unlinks the slot and relinks it at the tail, and eviction pops the head.
//! This replaces the original `BTreeSet<(tick, addr)>` index — kept below as
//! a `#[cfg(test)]` reference model — with bit-identical eviction order:
//! both structures order lines purely by last-access recency (the BTree's
//! tick was strictly monotonic, so address tiebreaks never fired).

use oasis_sim::addrmap::AddrMap;
use oasis_sim::time::SimTime;

use crate::LINE;

/// One cached 64 B line.
#[derive(Clone, Copy, Debug)]
pub struct CacheLine {
    /// Snapshot of the line contents as of fill time plus any local stores.
    pub data: [u8; LINE as usize],
    /// True if the host has stored to this line since fill/write-back.
    pub dirty: bool,
    /// When an asynchronous (prefetch) fill completes; reads before this
    /// stall until it.
    pub ready_at: SimTime,
}

/// Intrusive LRU links for one slab slot. Kept in their own array so a
/// relink (three link updates on every non-MRU hit) stays inside a small
/// hot region instead of striding across 96 B slots.
#[derive(Clone, Copy)]
struct Link {
    prev: u32,
    next: u32,
}

/// Sentinel slab index for "no slot".
const NIL: u32 = u32::MAX;

/// A host's cache of pool lines, keyed by line base address.
///
/// Slot storage is struct-of-arrays: `addrs`/`lines`/`links` are parallel
/// vectors indexed by slab slot.
pub struct HostCache {
    addrs: Vec<u64>,
    lines: Vec<CacheLine>,
    links: Vec<Link>,
    /// Line base address → slab index.
    index: AddrMap<u32>,
    /// LRU end of the recency list (eviction victim).
    head: u32,
    /// MRU end of the recency list.
    tail: u32,
    /// Head of the free-slot chain (linked through `Link::next`).
    free: u32,
    capacity: usize,
}

/// A victim line evicted to make room; dirty victims must be written back by
/// the caller.
pub struct Evicted {
    /// Line base address.
    pub addr: u64,
    /// The line, with `dirty` indicating whether a write-back is required.
    pub line: CacheLine,
}

impl HostCache {
    /// Cache with room for `capacity` lines. The default used by hosts is
    /// 4096 lines (256 KiB), enough for a polling core's working set
    /// including a full 8192-slot 16 B message ring.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        HostCache {
            addrs: Vec::new(),
            lines: Vec::new(),
            links: Vec::new(),
            index: AddrMap::new(),
            head: NIL,
            tail: NIL,
            free: NIL,
            capacity,
        }
    }

    /// Number of lines currently cached.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no lines are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Line capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is the line present?
    pub fn contains(&self, line_addr: u64) -> bool {
        self.index.contains(line_addr)
    }

    /// Detach slot `i` from the recency list (it stays in the slab).
    fn unlink(&mut self, i: u32) {
        let Link { prev, next } = self.links[i as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.links[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.links[next as usize].prev = prev;
        }
    }

    /// Attach slot `i` at the MRU tail.
    fn link_mru(&mut self, i: u32) {
        let old_tail = self.tail;
        self.links[i as usize] = Link {
            prev: old_tail,
            next: NIL,
        };
        if old_tail == NIL {
            self.head = i;
        } else {
            self.links[old_tail as usize].next = i;
        }
        self.tail = i;
    }

    /// Access a present line, refreshing its LRU position. Returns `None` on
    /// miss.
    pub fn touch(&mut self, line_addr: u64) -> Option<&mut CacheLine> {
        let i = *self.index.get(line_addr)?;
        if self.tail != i {
            self.unlink(i);
            self.link_mru(i);
        }
        Some(&mut self.lines[i as usize])
    }

    /// Look at a line without refreshing LRU (used by assertions/tests).
    pub fn get(&self, line_addr: u64) -> Option<&CacheLine> {
        let i = *self.index.get(line_addr)?;
        Some(&self.lines[i as usize])
    }

    /// Insert (or replace) a line, evicting the LRU victim if at capacity.
    pub fn insert(
        &mut self,
        line_addr: u64,
        data: [u8; LINE as usize],
        dirty: bool,
        ready_at: SimTime,
    ) -> Option<Evicted> {
        // Replacing an existing line never evicts.
        if let Some(&i) = self.index.get(line_addr) {
            let line = &mut self.lines[i as usize];
            line.data = data;
            line.dirty = dirty;
            line.ready_at = ready_at;
            if self.tail != i {
                self.unlink(i);
                self.link_mru(i);
            }
            return None;
        }
        let line = CacheLine {
            data,
            dirty,
            ready_at,
        };
        let mut victim = None;
        let slot = if self.index.len() >= self.capacity {
            // Reuse the LRU victim's slot for the incoming line.
            let i = self.head;
            self.unlink(i);
            let old_addr = self.addrs[i as usize];
            self.index.remove(old_addr);
            victim = Some(Evicted {
                addr: old_addr,
                line: self.lines[i as usize],
            });
            self.addrs[i as usize] = line_addr;
            self.lines[i as usize] = line;
            i
        } else if self.free != NIL {
            let i = self.free;
            self.free = self.links[i as usize].next;
            self.addrs[i as usize] = line_addr;
            self.lines[i as usize] = line;
            i
        } else {
            self.addrs.push(line_addr);
            self.lines.push(line);
            self.links.push(Link {
                prev: NIL,
                next: NIL,
            });
            (self.addrs.len() - 1) as u32
        };
        self.index.insert(line_addr, slot);
        self.link_mru(slot);
        victim
    }

    /// Remove a line (CLFLUSHOPT). Returns it so the caller can write back a
    /// dirty victim.
    pub fn remove(&mut self, line_addr: u64) -> Option<CacheLine> {
        let i = self.index.remove(line_addr)?;
        self.unlink(i);
        self.links[i as usize].next = self.free;
        self.free = i;
        // `CacheLine` is `Copy`: the stale bytes stay in the free slot (it
        // is fully overwritten before reuse), so no blanking write here.
        Some(self.lines[i as usize])
    }

    /// Drop everything (e.g. host reset in failure tests). Dirty lines are
    /// returned in LRU→MRU order — the recency list itself, which is already
    /// deterministic — without any intermediate allocation or sort.
    pub fn drain(&mut self) -> Vec<(u64, CacheLine)> {
        let mut out = Vec::with_capacity(self.index.len());
        let mut i = self.head;
        while i != NIL {
            out.push((self.addrs[i as usize], self.lines[i as usize]));
            i = self.links[i as usize].next;
        }
        self.addrs.clear();
        self.lines.clear();
        self.links.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.free = NIL;
        out
    }
}

/// The original `BTreeSet<(tick, addr)>` implementation, kept verbatim as
/// the executable specification the intrusive-list cache is cross-checked
/// against (see the `lru_cross_check` proptest below).
#[cfg(test)]
pub mod reference {
    use std::collections::BTreeSet;

    use oasis_sim::detmap::DetMap;
    use oasis_sim::time::SimTime;

    use super::{CacheLine, Evicted};
    use crate::LINE;

    struct RefLine {
        line: CacheLine,
        lru_tick: u64,
    }

    /// Reference LRU cache: exact LRU via a sorted `(tick, addr)` index.
    pub struct RefCache {
        lines: DetMap<u64, RefLine>,
        lru: BTreeSet<(u64, u64)>,
        capacity: usize,
        tick: u64,
    }

    impl RefCache {
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0);
            RefCache {
                lines: DetMap::default(),
                lru: BTreeSet::new(),
                capacity,
                tick: 0,
            }
        }

        pub fn len(&self) -> usize {
            self.lines.len()
        }

        pub fn is_empty(&self) -> bool {
            self.lines.is_empty()
        }

        pub fn contains(&self, line_addr: u64) -> bool {
            self.lines.contains_key(&line_addr)
        }

        fn bump(tick: &mut u64, lru: &mut BTreeSet<(u64, u64)>, addr: u64, line: &mut RefLine) {
            lru.remove(&(line.lru_tick, addr));
            *tick += 1;
            line.lru_tick = *tick;
            lru.insert((*tick, addr));
        }

        pub fn touch(&mut self, line_addr: u64) -> Option<&mut CacheLine> {
            let line = self.lines.get_mut(&line_addr)?;
            Self::bump(&mut self.tick, &mut self.lru, line_addr, line);
            Some(&mut line.line)
        }

        pub fn get(&self, line_addr: u64) -> Option<&CacheLine> {
            self.lines.get(&line_addr).map(|l| &l.line)
        }

        pub fn insert(
            &mut self,
            line_addr: u64,
            data: [u8; LINE as usize],
            dirty: bool,
            ready_at: SimTime,
        ) -> Option<Evicted> {
            if let Some(existing) = self.lines.get_mut(&line_addr) {
                existing.line.data = data;
                existing.line.dirty = dirty;
                existing.line.ready_at = ready_at;
                Self::bump(&mut self.tick, &mut self.lru, line_addr, existing);
                return None;
            }
            let victim = if self.lines.len() >= self.capacity {
                let &(vt, vaddr) = self.lru.iter().next().expect("lru nonempty at capacity");
                self.lru.remove(&(vt, vaddr));
                let line = self.lines.remove(&vaddr).expect("lru entry has line");
                Some(Evicted {
                    addr: vaddr,
                    line: line.line,
                })
            } else {
                None
            };
            self.tick += 1;
            self.lines.insert(
                line_addr,
                RefLine {
                    line: CacheLine {
                        data,
                        dirty,
                        ready_at,
                    },
                    lru_tick: self.tick,
                },
            );
            self.lru.insert((self.tick, line_addr));
            victim
        }

        pub fn remove(&mut self, line_addr: u64) -> Option<CacheLine> {
            let line = self.lines.remove(&line_addr)?;
            self.lru.remove(&(line.lru_tick, line_addr));
            Some(line.line)
        }

        /// Drain in LRU→MRU order (the `(tick, addr)` index order), matching
        /// the production cache's recency-list drain.
        pub fn drain(&mut self) -> Vec<(u64, CacheLine)> {
            let order: Vec<u64> = self.lru.iter().map(|&(_, addr)| addr).collect();
            self.lru.clear();
            let mut out = Vec::with_capacity(order.len());
            for addr in order {
                let line = self.lines.remove(&addr).expect("lru entry has line");
                out.push((addr, line.line));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line_of(byte: u8) -> [u8; LINE as usize] {
        [byte; LINE as usize]
    }

    #[test]
    fn insert_and_touch() {
        let mut c = HostCache::new(4);
        assert!(c.insert(0, line_of(1), false, SimTime::ZERO).is_none());
        assert!(c.contains(0));
        assert_eq!(c.touch(0).unwrap().data[0], 1);
        assert!(c.touch(64).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = HostCache::new(2);
        c.insert(0, line_of(1), false, SimTime::ZERO);
        c.insert(64, line_of(2), false, SimTime::ZERO);
        // Touch 0 so 64 becomes LRU.
        c.touch(0);
        let victim = c.insert(128, line_of(3), false, SimTime::ZERO).unwrap();
        assert_eq!(victim.addr, 64);
        assert!(c.contains(0) && c.contains(128));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = HostCache::new(1);
        c.insert(0, line_of(9), true, SimTime::ZERO);
        let victim = c.insert(64, line_of(1), false, SimTime::ZERO).unwrap();
        assert!(victim.line.dirty);
        assert_eq!(victim.line.data[0], 9);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut c = HostCache::new(1);
        c.insert(0, line_of(1), false, SimTime::ZERO);
        assert!(c.insert(0, line_of(2), true, SimTime::ZERO).is_none());
        assert_eq!(c.get(0).unwrap().data[0], 2);
        assert!(c.get(0).unwrap().dirty);
    }

    #[test]
    fn remove_returns_line() {
        let mut c = HostCache::new(2);
        c.insert(0, line_of(5), true, SimTime::ZERO);
        let line = c.remove(0).unwrap();
        assert!(line.dirty);
        assert!(!c.contains(0));
        assert!(c.remove(0).is_none());
        // LRU index stays consistent after removal.
        c.insert(64, line_of(1), false, SimTime::ZERO);
        c.insert(128, line_of(2), false, SimTime::ZERO);
        let v = c.insert(192, line_of(3), false, SimTime::ZERO).unwrap();
        assert_eq!(v.addr, 64);
    }

    #[test]
    fn drain_returns_lru_order() {
        let mut c = HostCache::new(8);
        c.insert(128, line_of(3), false, SimTime::ZERO);
        c.insert(0, line_of(1), true, SimTime::ZERO);
        c.insert(64, line_of(2), false, SimTime::ZERO);
        // Touch 128 so it moves to MRU; drain order is recency, not address.
        c.touch(128);
        let drained = c.drain();
        assert_eq!(
            drained.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
            vec![0, 64, 128]
        );
        assert!(c.is_empty());
        // The slab is reusable after a drain.
        assert!(c.insert(256, line_of(7), false, SimTime::ZERO).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn free_slots_are_reused() {
        let mut c = HostCache::new(4);
        for i in 0..4u64 {
            c.insert(i * 64, line_of(i as u8), false, SimTime::ZERO);
        }
        c.remove(64);
        c.remove(192);
        c.insert(1024, line_of(9), false, SimTime::ZERO);
        c.insert(2048, line_of(10), false, SimTime::ZERO);
        // Slab never grew past capacity despite churn.
        assert!(c.addrs.len() <= 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(1024).unwrap().data[0], 9);
        assert_eq!(c.get(2048).unwrap().data[0], 10);
    }

    /// Every operation the cache supports, drawn randomly.
    #[derive(Clone, Debug)]
    enum Op {
        Insert { addr: u64, byte: u8, dirty: bool },
        Touch { addr: u64 },
        Remove { addr: u64 },
        Drain,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // A small address universe (32 lines) against small capacities keeps
        // eviction constantly exercised.
        prop_oneof![
            (0u64..32, any::<u8>(), any::<bool>()).prop_map(|(l, byte, dirty)| Op::Insert {
                addr: l * 64,
                byte,
                dirty
            }),
            (0u64..32).prop_map(|l| Op::Touch { addr: l * 64 }),
            (0u64..32).prop_map(|l| Op::Remove { addr: l * 64 }),
            Just(Op::Drain),
        ]
    }

    proptest! {
        /// Cross-check the intrusive-list cache against the original
        /// BTreeSet implementation (the `reference` module): identical
        /// evictions (address, data, dirtiness), identical hit/miss
        /// behaviour, identical contents, identical drain order.
        #[test]
        fn lru_cross_check(
            capacity in prop_oneof![Just(1usize), Just(2), Just(7), Just(16)],
            ops in proptest::collection::vec(op_strategy(), 1..300),
        ) {
            let mut new = HostCache::new(capacity);
            let mut old = reference::RefCache::new(capacity);
            for op in ops {
                match op {
                    Op::Insert { addr, byte, dirty } => {
                        let data = line_of(byte);
                        let a = new.insert(addr, data, dirty, SimTime::ZERO);
                        let b = old.insert(addr, data, dirty, SimTime::ZERO);
                        match (a, b) {
                            (None, None) => {}
                            (Some(x), Some(y)) => {
                                prop_assert_eq!(x.addr, y.addr, "victim addr diverged");
                                prop_assert_eq!(x.line.data, y.line.data);
                                prop_assert_eq!(x.line.dirty, y.line.dirty);
                            }
                            (a, b) => prop_assert!(
                                false,
                                "eviction mismatch: new={:?} old={:?}",
                                a.map(|e| e.addr), b.map(|e| e.addr)
                            ),
                        }
                    }
                    Op::Touch { addr } => {
                        let a = new.touch(addr).map(|l| (l.data, l.dirty));
                        let b = old.touch(addr).map(|l| (l.data, l.dirty));
                        prop_assert_eq!(a, b, "touch diverged at {}", addr);
                    }
                    Op::Remove { addr } => {
                        let a = new.remove(addr).map(|l| (l.data, l.dirty));
                        let b = old.remove(addr).map(|l| (l.data, l.dirty));
                        prop_assert_eq!(a, b, "remove diverged at {}", addr);
                    }
                    Op::Drain => {
                        let a: Vec<(u64, [u8; 64], bool)> = new
                            .drain()
                            .into_iter()
                            .map(|(addr, l)| (addr, l.data, l.dirty))
                            .collect();
                        let b: Vec<(u64, [u8; 64], bool)> = old
                            .drain()
                            .into_iter()
                            .map(|(addr, l)| (addr, l.data, l.dirty))
                            .collect();
                        prop_assert_eq!(a, b, "drain order diverged");
                    }
                }
                prop_assert_eq!(new.len(), old.len());
            }
        }
    }
}
