//! Metric name registry for `oasis-cxl` (`oasis-check` `metric-name` rule:
//! all metric name literals live here, `snake_case`, crate-prefixed).
//!
//! Tags are host port numbers unless noted.

/// Bytes read from the pool over a port (all traffic classes).
pub const LINK_READ_BYTES: &str = "cxl.link_read_bytes";
/// Bytes written to the pool over a port (all traffic classes).
pub const LINK_WRITE_BYTES: &str = "cxl.link_write_bytes";
/// Bytes (both directions) attributed to I/O payload regions.
pub const LINK_BYTES_PAYLOAD: &str = "cxl.link_bytes_payload";
/// Bytes (both directions) attributed to message-channel regions.
pub const LINK_BYTES_MESSAGE: &str = "cxl.link_bytes_message";
/// Bytes (both directions) attributed to allocator/telemetry/Raft state.
pub const LINK_BYTES_CONTROL: &str = "cxl.link_bytes_control";
/// Bytes (both directions) touching unregistered addresses.
pub const LINK_BYTES_UNCLASSIFIED: &str = "cxl.link_bytes_unclassified";
/// Timeline: bytes on the wire per sim-time bin, per port (`obs` feature).
pub const LINK_BYTES_TIMELINE: &str = "cxl.link_bytes_timeline";
/// Write-backs still queued (not yet globally visible) at snapshot time
/// (tag 0, pod-global).
pub const POOL_PENDING_WRITEBACKS: &str = "cxl.pool_pending_writebacks";

/// Loads served from the host's local cache.
pub const CACHE_HITS: &str = "cxl.cache_hits";
/// Loads that fetched from the pool.
pub const CACHE_MISSES: &str = "cxl.cache_misses";
/// Loads stalled on an in-flight prefetch.
pub const CACHE_PREFETCH_STALLS: &str = "cxl.cache_prefetch_stalls";
/// Stores into present lines.
pub const CACHE_STORE_HITS: &str = "cxl.cache_store_hits";
/// Stores that required a read-for-ownership fetch.
pub const CACHE_STORE_MISSES: &str = "cxl.cache_store_misses";
/// CLFLUSHOPT instructions issued.
pub const CACHE_FLUSHES: &str = "cxl.cache_flushes";
/// CLWB instructions issued.
pub const CACHE_WRITEBACKS: &str = "cxl.cache_writebacks";
/// MFENCE instructions issued.
pub const CACHE_FENCES: &str = "cxl.cache_fences";
/// PREFETCHT0 issued for absent lines.
pub const CACHE_PREFETCHES: &str = "cxl.cache_prefetches";
/// PREFETCHT0 that found the line present and did nothing.
pub const CACHE_PREFETCH_SKIPS: &str = "cxl.cache_prefetch_skips";
/// Dirty lines written back on capacity eviction.
pub const CACHE_EVICT_WRITEBACKS: &str = "cxl.cache_evict_writebacks";
