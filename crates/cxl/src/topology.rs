//! CXL pod topology and bandwidth-sufficiency math.
//!
//! A pod (§2.3) is a set of hosts in a rack, each connected by a CXL link to
//! one or more multi-headed memory devices. This module captures the static
//! shape — host count, lanes per port, pool capacity — and the §2.1/§2.3
//! feasibility arithmetic the paper uses to argue that CXL bandwidth is
//! sufficient for PCIe device pooling (Table 1 requirements vs. 64-lane
//! platform bandwidth).
//!
//! Beyond a single pod, [`FleetTopology`] describes sparsely connected
//! *fleets*: pods joined by Ethernet uplinks through the row fabric
//! (Octopus-style). The minimum uplink latency is the conservative-window
//! lookahead the sharded runner (`oasis_sim::shard`) uses to advance pods
//! in parallel, so it is exposed here, next to the link model it belongs to.

use oasis_sim::time::SimDuration;

/// Per-lane CXL 2.0 / PCIe 5.0 bandwidth in each direction, bytes/second.
pub const LANE_BW: f64 = 4e9;

/// Link efficiency the paper measures for 64 B random accesses (92 %).
pub const LINK_EFFICIENCY: f64 = 0.92;

/// Static description of a CXL pod.
#[derive(Clone, Debug)]
pub struct PodTopology {
    /// Number of hosts sharing the pool.
    pub hosts: usize,
    /// CXL lanes per host port (the paper's testbed uses x8; production
    /// platforms have up to 64).
    pub lanes_per_host: u32,
    /// Pool capacity in bytes.
    pub pool_bytes: u64,
}

impl PodTopology {
    /// The paper's evaluation testbed: two hosts, x8 links, 256 GB device
    /// (scaled down in simulation via the region allocator).
    pub fn testbed(pool_bytes: u64) -> Self {
        PodTopology {
            hosts: 2,
            lanes_per_host: 8,
            pool_bytes,
        }
    }

    /// A production-like pod: `hosts` hosts with 64-lane CXL ports.
    pub fn production(hosts: usize, pool_bytes: u64) -> Self {
        PodTopology {
            hosts,
            lanes_per_host: 64,
            pool_bytes,
        }
    }

    /// Usable per-host CXL bandwidth in one direction, bytes/second.
    pub fn host_link_bw(&self) -> f64 {
        self.lanes_per_host as f64 * LANE_BW * LINK_EFFICIENCY
    }

    /// Can this pod's per-host link carry the given device demand
    /// (bytes/second, one direction)?
    pub fn link_sufficient_for(&self, demand_bytes_per_sec: f64) -> bool {
        self.host_link_bw() >= demand_bytes_per_sec
    }
}

/// Default one-way latency of an inter-pod uplink: ToR → row fabric → ToR.
/// Dominated by the two extra switch hops plus fiber; comfortably above any
/// intra-pod timescale, which is what gives the sharded runner a usable
/// lookahead window.
pub const UPLINK_LATENCY: SimDuration = SimDuration::from_micros(2);

/// A bidirectional inter-pod uplink between pods `a` and `b`.
#[derive(Clone, Debug)]
pub struct CrossPodLink {
    /// First endpoint (pod index in the fleet).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
}

impl CrossPodLink {
    /// A link with the default uplink latency.
    pub fn new(a: usize, b: usize) -> Self {
        CrossPodLink {
            a,
            b,
            latency: UPLINK_LATENCY,
        }
    }
}

/// Static shape of a multi-pod fleet: pods plus the uplinks joining them.
#[derive(Clone, Debug, Default)]
pub struct FleetTopology {
    /// Per-pod shapes.
    pub pods: Vec<PodTopology>,
    /// Inter-pod uplinks.
    pub links: Vec<CrossPodLink>,
}

impl FleetTopology {
    /// `n` identical pods joined in a ring (each pod uplinks to its
    /// successor) — the sparse Octopus-style fleet shape.
    pub fn ring(n: usize, pod: PodTopology, latency: SimDuration) -> Self {
        FleetTopology {
            pods: vec![pod; n],
            // A 2-pod "ring" is one link, not two parallel ones.
            links: (0..if n > 2 { n } else { n.saturating_sub(1) })
                .map(|i| CrossPodLink {
                    a: i,
                    b: (i + 1) % n,
                    latency,
                })
                .collect(),
        }
    }

    /// The minimum cross-pod link latency — the conservative lookahead for
    /// sharded execution. `None` for an unlinked (single-pod or fully
    /// disconnected) fleet, where the lookahead is unbounded.
    pub fn min_uplink_latency(&self) -> Option<SimDuration> {
        self.links.iter().map(|l| l.latency).min()
    }

    /// Pods adjacent to `pod`, with the one-way latency of the joining link
    /// (both link directions count; parallel links keep the cheapest).
    pub fn neighbors(&self, pod: usize) -> Vec<(usize, SimDuration)> {
        let mut out: Vec<(usize, SimDuration)> = Vec::new();
        for l in &self.links {
            let peer = if l.a == pod {
                l.b
            } else if l.b == pod {
                l.a
            } else {
                continue;
            };
            match out.iter_mut().find(|(p, _)| *p == peer) {
                Some(e) => e.1 = e.1.min(l.latency),
                None => out.push((peer, l.latency)),
            }
        }
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// The neighbor-pod spill order from `from`: every *other* reachable
    /// pod, nearest first by `(uplink hop count, total path latency, pod
    /// index)` — the deterministic tie-break the fleet allocator uses when
    /// a pod's own devices strand. Unreachable pods are absent; a fleet
    /// with no links spills nowhere.
    pub fn spill_order(&self, from: usize) -> Vec<SpillHop> {
        if from >= self.pods.len() {
            return Vec::new();
        }
        // Lexicographic Dijkstra on (hops, latency): a fleet is a handful of
        // pods, so the O(P^2) relaxation loop is simpler than a heap and
        // trivially deterministic.
        let n = self.pods.len();
        let mut dist: Vec<Option<(u32, SimDuration)>> = vec![None; n];
        let mut done = vec![false; n];
        dist[from] = Some((0, SimDuration::ZERO));
        while let Some(u) = (0..n)
            .filter(|&i| !done[i] && dist[i].is_some())
            .min_by_key(|&i| dist[i].map(|(h, l)| (h, l, i)))
        {
            done[u] = true;
            let (hops, lat) = match dist[u] {
                Some(d) => d,
                None => break,
            };
            for (peer, link_lat) in self.neighbors(u) {
                let cand = (hops + 1, lat + link_lat);
                if dist[peer].is_none_or(|d| cand < d) {
                    dist[peer] = Some(cand);
                }
            }
        }
        let mut order: Vec<SpillHop> = (0..n)
            .filter(|&p| p != from)
            .filter_map(|p| {
                dist[p].map(|(hops, latency)| SpillHop {
                    pod: p,
                    hops,
                    latency,
                })
            })
            .collect();
        order.sort_by_key(|h| (h.hops, h.latency, h.pod));
        order
    }
}

/// One entry in a pod's spill order: a reachable neighbor pod at a known
/// uplink distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillHop {
    /// The reachable pod.
    pub pod: usize,
    /// Uplink hops on the cheapest path.
    pub hops: u32,
    /// Total one-way latency along that path.
    pub latency: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_link_covers_table1_demand() {
        // Table 1 / §2.1: one NIC (26 GB/s) + six SSDs (5 GB/s each) = 56 GB/s.
        let pod = PodTopology::production(8, 1 << 30);
        let demand = 26e9 + 6.0 * 5e9;
        assert!(pod.link_sufficient_for(demand));
        // And even a 400 Gbps NIC (50 GB/s) plus SSDs fits in 64 lanes.
        assert!(pod.link_sufficient_for(50e9 + 6.0 * 5e9));
    }

    #[test]
    fn testbed_link_matches_one_100g_nic() {
        // §6: a x8 link (29.4 GB/s usable) is "a balanced match" for a
        // 100 Gbps NIC (12.5 GB/s per direction).
        let pod = PodTopology::testbed(1 << 30);
        assert!(pod.link_sufficient_for(12.5e9));
        assert!(!pod.link_sufficient_for(56e9), "x8 cannot carry a full pod");
    }

    #[test]
    fn link_bw_formula() {
        let pod = PodTopology::production(4, 0);
        assert!((pod.host_link_bw() - 64.0 * 4e9 * 0.92).abs() < 1.0);
    }

    #[test]
    fn testbed_x8_insufficient_for_table1_pod() {
        // Feasibility edge: the x8 testbed link carries one NIC but not the
        // full Table 1 device complement; production x64 carries both.
        let testbed = PodTopology::testbed(1 << 30);
        let production = PodTopology::production(8, 1 << 30);
        for demand in [26e9, 26e9 + 6.0 * 5e9] {
            assert!(production.link_sufficient_for(demand));
        }
        assert!(testbed.link_sufficient_for(12.5e9));
        assert!(!testbed.link_sufficient_for(26e9 + 6.0 * 5e9));
    }

    #[test]
    fn ring_link_counts() {
        let pod = PodTopology::production(2, 0);
        // 1 pod: no links; 2 pods: one link (not two parallel); n: a cycle.
        assert!(FleetTopology::ring(1, pod.clone(), UPLINK_LATENCY)
            .links
            .is_empty());
        assert_eq!(
            FleetTopology::ring(2, pod.clone(), UPLINK_LATENCY)
                .links
                .len(),
            1
        );
        assert_eq!(FleetTopology::ring(5, pod, UPLINK_LATENCY).links.len(), 5);
    }

    #[test]
    fn single_pod_fleet_has_unbounded_lookahead_and_no_spill() {
        let topo = FleetTopology::ring(1, PodTopology::production(4, 0), UPLINK_LATENCY);
        assert_eq!(topo.min_uplink_latency(), None);
        assert!(topo.spill_order(0).is_empty());
        assert!(topo.neighbors(0).is_empty());
    }

    #[test]
    fn disconnected_pod_is_absent_from_spill_orders() {
        // Pods 0-1 linked; pod 2 has no uplink at all.
        let mut topo = FleetTopology::ring(2, PodTopology::production(4, 0), UPLINK_LATENCY);
        topo.pods.push(PodTopology::production(4, 0));
        let from0: Vec<usize> = topo.spill_order(0).iter().map(|h| h.pod).collect();
        assert_eq!(from0, vec![1], "pod 2 is unreachable from pod 0");
        assert!(topo.spill_order(2).is_empty(), "pod 2 spills nowhere");
        // Lookahead still comes from the one real link.
        assert_eq!(topo.min_uplink_latency(), Some(UPLINK_LATENCY));
    }

    #[test]
    fn spill_order_breaks_hop_ties_by_latency_then_index() {
        // Star: pod 0 links to 1, 2, 3 — all one hop, asymmetric latencies.
        let pod = PodTopology::production(4, 0);
        let topo = FleetTopology {
            pods: vec![pod.clone(), pod.clone(), pod.clone(), pod],
            links: vec![
                CrossPodLink {
                    a: 0,
                    b: 1,
                    latency: SimDuration::from_micros(9),
                },
                CrossPodLink {
                    a: 0,
                    b: 2,
                    latency: SimDuration::from_micros(2),
                },
                CrossPodLink {
                    a: 3,
                    b: 0,
                    latency: SimDuration::from_micros(2),
                },
            ],
        };
        let order: Vec<(usize, u32)> = topo
            .spill_order(0)
            .iter()
            .map(|h| (h.pod, h.hops))
            .collect();
        // Latency beats index (2 and 3 before 1); index breaks the 2-vs-3 tie.
        assert_eq!(order, vec![(2, 1), (3, 1), (1, 1)]);
        assert_eq!(topo.min_uplink_latency(), Some(SimDuration::from_micros(2)));
    }

    #[test]
    fn spill_order_prefers_fewer_hops_over_lower_latency() {
        // 0-1-2 chain with cheap links, plus a direct but expensive 0-2
        // link: 2 is one hop from 0 via the direct link, so hop count (the
        // primary key) puts it at distance 1 even though the two-hop path
        // is lower latency.
        let pod = PodTopology::production(4, 0);
        let topo = FleetTopology {
            pods: vec![pod.clone(), pod.clone(), pod],
            links: vec![
                CrossPodLink {
                    a: 0,
                    b: 1,
                    latency: SimDuration::from_micros(1),
                },
                CrossPodLink {
                    a: 1,
                    b: 2,
                    latency: SimDuration::from_micros(1),
                },
                CrossPodLink {
                    a: 0,
                    b: 2,
                    latency: SimDuration::from_micros(50),
                },
            ],
        };
        let order: Vec<(usize, u32)> = topo
            .spill_order(0)
            .iter()
            .map(|h| (h.pod, h.hops))
            .collect();
        assert_eq!(order, vec![(1, 1), (2, 1)]);
        let h2 = topo.spill_order(0)[1];
        assert_eq!(
            h2.latency,
            SimDuration::from_micros(50),
            "direct link wins on hops"
        );
    }

    #[test]
    fn parallel_links_keep_the_cheapest_latency() {
        let pod = PodTopology::production(4, 0);
        let topo = FleetTopology {
            pods: vec![pod.clone(), pod],
            links: vec![
                CrossPodLink {
                    a: 0,
                    b: 1,
                    latency: SimDuration::from_micros(7),
                },
                CrossPodLink {
                    a: 1,
                    b: 0,
                    latency: SimDuration::from_micros(3),
                },
            ],
        };
        assert_eq!(topo.neighbors(0), vec![(1, SimDuration::from_micros(3))]);
        assert_eq!(topo.spill_order(1)[0].latency, SimDuration::from_micros(3));
    }

    #[test]
    fn symmetric_ring_ties_resolve_by_pod_index_at_every_hop() {
        // On a symmetric ring every link has the same latency, so within a
        // hop-count tier latency is also tied and only the pod index can
        // break the tie: the full (hops, latency, pod) key is exercised at
        // every tier, from every vantage pod.
        let n = 6;
        let topo = FleetTopology::ring(n, PodTopology::production(4, 0), UPLINK_LATENCY);
        for from in 0..n {
            let order = topo.spill_order(from);
            assert_eq!(order.len(), n - 1);
            for hop in &order {
                // Cheapest-path latency is exactly hops x the uniform
                // uplink latency.
                assert_eq!(hop.latency, UPLINK_LATENCY * hop.hops as u64);
            }
            // Tiers come out in ascending hop count, and inside each tier
            // (two pods everywhere except the antipode) ascending index.
            for pair in order.windows(2) {
                assert!(
                    (pair[0].hops, pair[0].latency, pair[0].pod)
                        < (pair[1].hops, pair[1].latency, pair[1].pod),
                    "from {from}: {pair:?} out of order"
                );
            }
            let one_hop: Vec<usize> = order
                .iter()
                .filter(|h| h.hops == 1)
                .map(|h| h.pod)
                .collect();
            let mut expected = vec![(from + n - 1) % n, (from + 1) % n];
            expected.sort_unstable();
            assert_eq!(one_hop, expected, "from {from}");
            // The antipode is alone in the last tier.
            assert_eq!(order.last().map(|h| h.pod), Some((from + n / 2) % n));
        }
    }

    #[test]
    fn ring_spill_order_is_symmetric_and_deterministic() {
        let topo = FleetTopology::ring(8, PodTopology::production(4, 0), UPLINK_LATENCY);
        let order = topo.spill_order(3);
        assert_eq!(order.len(), 7, "every other pod is reachable on a ring");
        // Immediate ring neighbors first (1 hop), lower index on ties.
        assert_eq!((order[0].pod, order[0].hops), (2, 1));
        assert_eq!((order[1].pod, order[1].hops), (4, 1));
        // Farthest pod on an 8-ring is 4 hops away.
        assert_eq!(order.last().map(|h| h.hops), Some(4));
        assert_eq!(topo.spill_order(3), order, "stable across calls");
    }
}
