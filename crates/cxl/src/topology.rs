//! CXL pod topology and bandwidth-sufficiency math.
//!
//! A pod (§2.3) is a set of hosts in a rack, each connected by a CXL link to
//! one or more multi-headed memory devices. This module captures the static
//! shape — host count, lanes per port, pool capacity — and the §2.1/§2.3
//! feasibility arithmetic the paper uses to argue that CXL bandwidth is
//! sufficient for PCIe device pooling (Table 1 requirements vs. 64-lane
//! platform bandwidth).
//!
//! Beyond a single pod, [`FleetTopology`] describes sparsely connected
//! *fleets*: pods joined by Ethernet uplinks through the row fabric
//! (Octopus-style). The minimum uplink latency is the conservative-window
//! lookahead the sharded runner (`oasis_sim::shard`) uses to advance pods
//! in parallel, so it is exposed here, next to the link model it belongs to.

use oasis_sim::time::SimDuration;

/// Per-lane CXL 2.0 / PCIe 5.0 bandwidth in each direction, bytes/second.
pub const LANE_BW: f64 = 4e9;

/// Link efficiency the paper measures for 64 B random accesses (92 %).
pub const LINK_EFFICIENCY: f64 = 0.92;

/// Static description of a CXL pod.
#[derive(Clone, Debug)]
pub struct PodTopology {
    /// Number of hosts sharing the pool.
    pub hosts: usize,
    /// CXL lanes per host port (the paper's testbed uses x8; production
    /// platforms have up to 64).
    pub lanes_per_host: u32,
    /// Pool capacity in bytes.
    pub pool_bytes: u64,
}

impl PodTopology {
    /// The paper's evaluation testbed: two hosts, x8 links, 256 GB device
    /// (scaled down in simulation via the region allocator).
    pub fn testbed(pool_bytes: u64) -> Self {
        PodTopology {
            hosts: 2,
            lanes_per_host: 8,
            pool_bytes,
        }
    }

    /// A production-like pod: `hosts` hosts with 64-lane CXL ports.
    pub fn production(hosts: usize, pool_bytes: u64) -> Self {
        PodTopology {
            hosts,
            lanes_per_host: 64,
            pool_bytes,
        }
    }

    /// Usable per-host CXL bandwidth in one direction, bytes/second.
    pub fn host_link_bw(&self) -> f64 {
        self.lanes_per_host as f64 * LANE_BW * LINK_EFFICIENCY
    }

    /// Can this pod's per-host link carry the given device demand
    /// (bytes/second, one direction)?
    pub fn link_sufficient_for(&self, demand_bytes_per_sec: f64) -> bool {
        self.host_link_bw() >= demand_bytes_per_sec
    }
}

/// Default one-way latency of an inter-pod uplink: ToR → row fabric → ToR.
/// Dominated by the two extra switch hops plus fiber; comfortably above any
/// intra-pod timescale, which is what gives the sharded runner a usable
/// lookahead window.
pub const UPLINK_LATENCY: SimDuration = SimDuration::from_micros(2);

/// A bidirectional inter-pod uplink between pods `a` and `b`.
#[derive(Clone, Debug)]
pub struct CrossPodLink {
    /// First endpoint (pod index in the fleet).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
}

impl CrossPodLink {
    /// A link with the default uplink latency.
    pub fn new(a: usize, b: usize) -> Self {
        CrossPodLink {
            a,
            b,
            latency: UPLINK_LATENCY,
        }
    }
}

/// Static shape of a multi-pod fleet: pods plus the uplinks joining them.
#[derive(Clone, Debug, Default)]
pub struct FleetTopology {
    /// Per-pod shapes.
    pub pods: Vec<PodTopology>,
    /// Inter-pod uplinks.
    pub links: Vec<CrossPodLink>,
}

impl FleetTopology {
    /// `n` identical pods joined in a ring (each pod uplinks to its
    /// successor) — the sparse Octopus-style fleet shape.
    pub fn ring(n: usize, pod: PodTopology, latency: SimDuration) -> Self {
        FleetTopology {
            pods: vec![pod; n],
            // A 2-pod "ring" is one link, not two parallel ones.
            links: (0..if n > 2 { n } else { n.saturating_sub(1) })
                .map(|i| CrossPodLink {
                    a: i,
                    b: (i + 1) % n,
                    latency,
                })
                .collect(),
        }
    }

    /// The minimum cross-pod link latency — the conservative lookahead for
    /// sharded execution. `None` for an unlinked (single-pod or fully
    /// disconnected) fleet, where the lookahead is unbounded.
    pub fn min_uplink_latency(&self) -> Option<SimDuration> {
        self.links.iter().map(|l| l.latency).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_link_covers_table1_demand() {
        // Table 1 / §2.1: one NIC (26 GB/s) + six SSDs (5 GB/s each) = 56 GB/s.
        let pod = PodTopology::production(8, 1 << 30);
        let demand = 26e9 + 6.0 * 5e9;
        assert!(pod.link_sufficient_for(demand));
        // And even a 400 Gbps NIC (50 GB/s) plus SSDs fits in 64 lanes.
        assert!(pod.link_sufficient_for(50e9 + 6.0 * 5e9));
    }

    #[test]
    fn testbed_link_matches_one_100g_nic() {
        // §6: a x8 link (29.4 GB/s usable) is "a balanced match" for a
        // 100 Gbps NIC (12.5 GB/s per direction).
        let pod = PodTopology::testbed(1 << 30);
        assert!(pod.link_sufficient_for(12.5e9));
        assert!(!pod.link_sufficient_for(56e9), "x8 cannot carry a full pod");
    }

    #[test]
    fn link_bw_formula() {
        let pod = PodTopology::production(4, 0);
        assert!((pod.host_link_bw() - 64.0 * 4e9 * 0.92).abs() < 1.0);
    }
}
