//! Memory-operation cost model.
//!
//! All constants are nanoseconds of CPU time charged to the issuing host's
//! local clock. Defaults are calibrated to the measurements the paper
//! publishes (it withholds raw CXL latencies for confidentiality but gives
//! ratios and derived quantities):
//!
//! * CXL idle load-to-use ≈ 2.3× local DDR (§2.3, AMD 5th-gen EPYC),
//! * one-way 16 B message latency over the pool ≈ 0.6 µs ≈ one CXL write
//!   plus one CXL read (Fig. 6),
//! * the cache-bypassing baseline channel peaks at ≈ 3 MOp/s, i.e. ≈ 330 ns
//!   per poll of `CLFLUSHOPT` + `MFENCE` + cold read (Fig. 6 ①).

/// Nanosecond costs of CPU memory operations in the simulated hosts.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Load hitting the local CPU cache.
    pub cache_hit_ns: u64,
    /// Store hitting a line already present (and owned) in the local cache.
    pub store_hit_ns: u64,
    /// Load-to-use latency of a miss served by local DDR.
    pub ddr_load_ns: u64,
    /// Load-to-use latency of a miss served by the CXL pool.
    pub cxl_load_ns: u64,
    /// Time until a write-back (`clwb`/eviction/flush) becomes visible in
    /// pool memory. Charged as propagation delay, not CPU stall.
    pub cxl_write_visible_ns: u64,
    /// CPU cost of issuing `CLFLUSHOPT`. Flushes are weakly ordered and
    /// pipeline with each other; the drain cost is carried by `MFENCE`.
    pub clflushopt_ns: u64,
    /// CPU cost of issuing `CLWB` (posted, like `CLFLUSHOPT`).
    pub clwb_ns: u64,
    /// Cost of `MFENCE` (drains the store buffer and pending flushes).
    pub mfence_ns: u64,
    /// Cost of issuing `PREFETCHT0` (fill happens asynchronously).
    pub prefetch_issue_ns: u64,
    /// Per-line cost of a *streaming* bulk copy from CXL after the first
    /// line's load-to-use latency: sequential reads pipeline across the
    /// link (hardware prefetch + MLP), so a memcpy runs at link bandwidth,
    /// not at per-line latency.
    pub cxl_stream_line_ns: u64,
    /// Per-poll CPU overhead of a busy-polling loop iteration (branches,
    /// epoch check, ring-index math) charged by channel receivers.
    pub poll_overhead_ns: u64,
    /// Per-message CPU overhead of the send path charged by channel
    /// senders.
    pub send_overhead_ns: u64,
    /// DMA latency from a PCIe device to local DDR (per transaction setup;
    /// bandwidth is modelled separately by the device).
    pub dma_ddr_ns: u64,
    /// DMA latency from a PCIe device to the CXL pool.
    pub dma_cxl_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cache_hit_ns: 4,
            store_hit_ns: 3,
            ddr_load_ns: 125,
            // 2.32x DDR, matching the paper's AMD measurement of 2.29x.
            cxl_load_ns: 290,
            cxl_write_visible_ns: 290,
            clflushopt_ns: 6,
            clwb_ns: 12,
            mfence_ns: 50,
            prefetch_issue_ns: 4,
            cxl_stream_line_ns: 8,
            poll_overhead_ns: 5,
            send_overhead_ns: 2,
            dma_ddr_ns: 700,
            dma_cxl_ns: 850,
        }
    }
}

impl CostModel {
    /// The cost of one cache-bypassing poll: invalidate + fence + cold CXL
    /// read + loop overhead. With defaults this is 351 ns → ≈ 2.9 MOp/s,
    /// matching the ≈ 3.0 MOp/s the paper measures for the baseline channel
    /// (Fig. 6 ①).
    pub fn bypass_poll_ns(&self) -> u64 {
        self.clflushopt_ns + self.mfence_ns + self.cxl_load_ns + self.poll_overhead_ns
    }

    /// CXL/DDR load-to-use ratio of this model.
    pub fn cxl_ddr_ratio(&self) -> f64 {
        self.cxl_load_ns as f64 / self.ddr_load_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratio_matches_paper() {
        let c = CostModel::default();
        let r = c.cxl_ddr_ratio();
        // Paper: 2.29x on AMD 5th-gen EPYC, 2.15x on Intel EMR.
        assert!((2.1..=2.4).contains(&r), "ratio {r}");
    }

    #[test]
    fn bypass_poll_rate_near_3mops() {
        let c = CostModel::default();
        let mops = 1e3 / c.bypass_poll_ns() as f64;
        assert!((2.5..=3.5).contains(&mops), "mops {mops}");
    }

    #[test]
    fn one_way_message_near_600ns() {
        // One CXL write visibility + one CXL cold read ~ 0.6us (Fig. 6).
        let c = CostModel::default();
        let ns = c.cxl_write_visible_ns + c.cxl_load_ns;
        assert!((500..=700).contains(&ns), "one-way {ns}ns");
    }
}
