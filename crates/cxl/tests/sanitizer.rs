//! Unit tests for the coherence sanitizer: one per detector class, plus
//! good-path checks that the declared protocols report nothing.
#![cfg(feature = "sanitize")]

use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator, ReportKind, Severity};
use oasis_sim::time::SimTime;

const ADDR: u64 = 0;

fn setup() -> (CxlPool, HostCtx, HostCtx) {
    let mut pool = CxlPool::new(1 << 16, 2);
    let mut ra = RegionAllocator::new(&pool);
    ra.alloc(&mut pool, "mailbox", 4096, TrafficClass::Payload);
    let h0 = HostCtx::with_cache(PortId(0), 0, 4096, oasis_cxl::CostModel::default());
    let h1 = HostCtx::with_cache(PortId(1), 0, 4096, oasis_cxl::CostModel::default());
    (pool, h0, h1)
}

/// Write + clwb + mfence + drain: the canonical publish sequence.
fn publish_line(pool: &mut CxlPool, host: &mut HostCtx, addr: u64, val: u8) {
    host.write(pool, addr, &[val; 64]);
    host.clwb(pool, addr);
    host.mfence(pool);
    pool.apply_pending(host.clock);
}

#[test]
fn stale_read_detected_with_context() {
    let (mut pool, mut h0, mut h1) = setup();
    publish_line(&mut pool, &mut h0, ADDR, 1);

    // h1 caches version 1.
    let mut out = [0u8; 64];
    h1.read(&mut pool, ADDR, &mut out);

    // h0 publishes version 2; h1 declares a fresh read without
    // invalidating its cached copy.
    publish_line(&mut pool, &mut h0, ADDR, 2);
    h1.expect_fresh(&mut pool, ADDR, 64);

    assert_eq!(pool.san.count_of(ReportKind::StaleRead), 1);
    let r = &pool.san.reports()[0];
    assert_eq!(r.kind, ReportKind::StaleRead);
    assert_eq!(r.severity, Severity::Error);
    assert_eq!(r.port, PortId(1), "report names the reading host");
    assert_eq!(r.addr, ADDR, "report names the pool address");
    assert_eq!(
        r.region.as_deref(),
        Some("mailbox"),
        "report names the region"
    );
    assert_eq!(r.time, h1.clock, "report carries the host's sim-time");

    // Invalidate + refill: the same acquire point is now clean.
    h1.clflushopt(&mut pool, ADDR);
    h1.mfence(&mut pool);
    h1.read(&mut pool, ADDR, &mut out);
    h1.expect_fresh(&mut pool, ADDR, 64);
    assert_eq!(pool.san.count_of(ReportKind::StaleRead), 1, "no new report");
}

#[test]
fn missing_fence_before_doorbell_detected() {
    let (mut pool, mut h0, _h1) = setup();
    h0.write(&mut pool, ADDR, &[7u8; 64]);
    h0.clwb(&mut pool, ADDR);
    // Doorbell rung with the flush not yet fenced: the doorbell write-back
    // can overtake the payload's.
    h0.publish_fenced(&mut pool, ADDR, 64);
    assert_eq!(pool.san.count_of(ReportKind::MissingFence), 1);
    assert_eq!(pool.san.reports()[0].port, PortId(0));

    // With the fence in place the same doorbell is clean.
    h0.mfence(&mut pool);
    h0.publish_fenced(&mut pool, ADDR, 64);
    assert_eq!(pool.san.count_of(ReportKind::MissingFence), 1);
}

#[test]
fn unflushed_publish_detected() {
    let (mut pool, mut h0, _h1) = setup();
    h0.write(&mut pool, ADDR, &[3u8; 64]);
    // Published while still dirty: no reader or device can see the bytes.
    h0.publish(&mut pool, ADDR, 64);
    assert_eq!(pool.san.count_of(ReportKind::UnflushedPublish), 1);
    assert_eq!(pool.san.error_count(), 1);

    h0.clwb(&mut pool, ADDR);
    h0.publish(&mut pool, ADDR, 64);
    assert_eq!(
        pool.san.count_of(ReportKind::UnflushedPublish),
        1,
        "flushed publish is clean"
    );
}

#[test]
fn torn_read_of_inflight_writeback_detected() {
    let (mut pool, mut h0, mut h1) = setup();
    h0.write(&mut pool, ADDR, &[9u8; 64]);
    h0.clwb(&mut pool, ADDR);
    // No fence, no apply: the write-back is still in flight when h1 (clock
    // 0, line not cached) declares a fresh read — the fetched bytes are
    // about to change underneath it.
    h1.expect_fresh(&mut pool, ADDR, 64);
    assert_eq!(pool.san.count_of(ReportKind::TornRead), 1);
    assert_eq!(pool.san.reports()[0].port, PortId(1));
}

#[test]
fn torn_dma_read_detected() {
    let (mut pool, mut h0, _h1) = setup();
    h0.write(&mut pool, ADDR, &[4u8; 64]);
    h0.clwb(&mut pool, ADDR);
    // Device DMA-reads the line before the CPU write-back lands.
    let mut buf = [0u8; 64];
    pool.dma_read(SimTime::ZERO, PortId(1), ADDR, &mut buf);
    assert_eq!(pool.san.count_of(ReportKind::TornDmaRead), 1);

    // After visibility, the same DMA read is clean.
    pool.dma_read(SimTime::MAX, PortId(1), ADDR, &mut buf);
    assert_eq!(pool.san.count_of(ReportKind::TornDmaRead), 1);
    assert_eq!(buf, [4u8; 64]);
}

#[test]
fn double_flush_is_a_warning() {
    let (mut pool, mut h0, _h1) = setup();
    h0.write(&mut pool, ADDR, &[1u8; 64]);
    h0.clwb(&mut pool, ADDR);
    // Second clwb of the already-clean line with no access in between.
    h0.clwb(&mut pool, ADDR);
    assert_eq!(pool.san.count_of(ReportKind::DoubleFlush), 1);
    assert_eq!(pool.san.warning_count(), 1);
    assert_eq!(
        pool.san.error_count(),
        0,
        "wasted work is not a coherence error"
    );
    assert_eq!(pool.san.reports()[0].severity, Severity::Warning);
}

#[test]
fn noop_fence_is_a_warning() {
    let (mut pool, mut h0, _h1) = setup();
    // Fence with nothing to order.
    h0.mfence(&mut pool);
    assert_eq!(pool.san.count_of(ReportKind::NoopFence), 1);
    assert_eq!(pool.san.warning_count(), 1);

    // A fence that actually covers a flush is not flagged.
    h0.write(&mut pool, ADDR, &[2u8; 64]);
    h0.clwb(&mut pool, ADDR);
    h0.mfence(&mut pool);
    assert_eq!(pool.san.count_of(ReportKind::NoopFence), 1);
}

#[test]
fn clean_publish_consume_protocol_reports_nothing() {
    let (mut pool, mut h0, mut h1) = setup();
    // Producer: write, flush, fence, doorbell.
    publish_line(&mut pool, &mut h0, ADDR, 0xAA);
    h0.publish(&mut pool, ADDR, 64);
    h0.publish_fenced(&mut pool, ADDR, 64);
    // Consumer: invalidate, fence, fresh read.
    h1.clflushopt(&mut pool, ADDR);
    h1.mfence(&mut pool);
    let mut out = [0u8; 64];
    h1.read(&mut pool, ADDR, &mut out);
    h1.expect_fresh(&mut pool, ADDR, 64);
    assert_eq!(out, [0xAA; 64]);
    assert_eq!(pool.san.error_count(), 0, "{}", pool.san.summary());
    assert_eq!(pool.san.warning_count(), 0, "{}", pool.san.summary());
}

#[test]
fn host_reset_invalidates_shadow_snapshots() {
    let (mut pool, mut h0, mut h1) = setup();
    publish_line(&mut pool, &mut h0, ADDR, 1);
    let mut out = [0u8; 64];
    h1.read(&mut pool, ADDR, &mut out);

    // h1 crashes: cache dropped, shadow generation bumped.
    h1.cache.drain();
    pool.san_host_reset(PortId(1));

    // h0 publishes a newer version; the restarted h1 refills and reads
    // fresh — the pre-crash snapshot must not produce a false stale-read.
    publish_line(&mut pool, &mut h0, ADDR, 2);
    h1.read(&mut pool, ADDR, &mut out);
    h1.expect_fresh(&mut pool, ADDR, 64);
    assert_eq!(out, [2u8; 64]);
    assert_eq!(pool.san.error_count(), 0, "{}", pool.san.summary());
}
