//! Property-based tests of the non-coherent memory model's invariants.
//!
//! These are the contracts every driver in the workspace relies on:
//!
//! 1. **Read-your-own-writes**: a host always reads back what it last wrote
//!    (through its own cache), regardless of flush history.
//! 2. **Write-back completeness**: after `clwb`+`mfence` (or `clflushopt`+
//!    `mfence`), pool memory holds exactly the written bytes — eviction
//!    order, cache capacity, and interleaving never lose a byte.
//! 3. **Invalidate-then-read freshness**: after `clflushopt`, the next read
//!    observes current pool contents.
//! 4. **DMA isolation**: device DMA never observes un-written-back CPU
//!    state.

use oasis_cxl::pool::{PortId, TrafficClass};
use oasis_cxl::{CxlPool, HostCtx, RegionAllocator};
use oasis_sim::time::SimTime;
use proptest::prelude::*;

const AREA: u64 = 8192;

fn setup(cache_lines: usize) -> (CxlPool, HostCtx) {
    let mut pool = CxlPool::new(1 << 16, 2);
    let mut ra = RegionAllocator::new(&pool);
    ra.alloc(&mut pool, "area", AREA, TrafficClass::Payload);
    let host = HostCtx::with_cache(PortId(0), 0, cache_lines, oasis_cxl::CostModel::default());
    (pool, host)
}

/// A random memory operation.
#[derive(Clone, Debug)]
enum Op {
    Write { addr: u64, val: u8, len: u8 },
    Read { addr: u64, len: u8 },
    Clwb { addr: u64 },
    Flush { addr: u64 },
    Fence,
    Prefetch { addr: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..AREA - 64, any::<u8>(), 1u8..64).prop_map(|(addr, val, len)| Op::Write {
            addr,
            val,
            len
        }),
        (0..AREA - 64, 1u8..64).prop_map(|(addr, len)| Op::Read { addr, len }),
        (0..AREA).prop_map(|addr| Op::Clwb { addr }),
        (0..AREA).prop_map(|addr| Op::Flush { addr }),
        Just(Op::Fence),
        (0..AREA).prop_map(|addr| Op::Prefetch { addr }),
    ]
}

proptest! {
    /// Read-your-own-writes: a shadow byte array tracks what the host
    /// wrote; every read must return the shadow contents, no matter how
    /// flushes, fences, prefetches, and evictions interleave (including
    /// with a tiny 4-line cache that evicts constantly).
    #[test]
    fn read_your_own_writes(
        cache_lines in prop_oneof![Just(4usize), Just(64), Just(4096)],
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let (mut pool, mut host) = setup(cache_lines);
        let mut shadow = vec![0u8; AREA as usize];
        for op in ops {
            match op {
                Op::Write { addr, val, len } => {
                    let data = vec![val; len as usize];
                    host.write(&mut pool, addr, &data);
                    shadow[addr as usize..addr as usize + len as usize]
                        .copy_from_slice(&data);
                }
                Op::Read { addr, len } => {
                    let mut out = vec![0u8; len as usize];
                    host.read(&mut pool, addr, &mut out);
                    prop_assert_eq!(
                        &out[..],
                        &shadow[addr as usize..addr as usize + len as usize],
                        "read at {} diverged from shadow", addr
                    );
                }
                Op::Clwb { addr } => host.clwb(&mut pool, addr),
                Op::Flush { addr } => host.clflushopt(&mut pool, addr),
                Op::Fence => host.mfence(&mut pool),
                Op::Prefetch { addr } => host.prefetch(&mut pool, addr),
            }
        }
    }

    /// Write-back completeness: after flushing every touched line and
    /// fencing, pool memory equals the shadow exactly (single writer).
    #[test]
    fn flush_fence_publishes_everything(
        cache_lines in prop_oneof![Just(4usize), Just(4096)],
        writes in proptest::collection::vec(
            (0..AREA - 64, any::<u8>(), 1u8..64),
            1..100
        ),
    ) {
        let (mut pool, mut host) = setup(cache_lines);
        let mut shadow = vec![0u8; AREA as usize];
        for &(addr, val, len) in &writes {
            let data = vec![val; len as usize];
            host.write(&mut pool, addr, &data);
            shadow[addr as usize..addr as usize + len as usize].copy_from_slice(&data);
        }
        for la in (0..AREA).step_by(64) {
            host.clwb(&mut pool, la);
        }
        host.mfence(&mut pool);
        pool.apply_pending(host.clock);
        let mut out = vec![0u8; AREA as usize];
        pool.peek(0, &mut out);
        prop_assert_eq!(out, shadow);
    }

    /// DMA isolation + freshness: a device writes fresh data; a host that
    /// had the line cached reads stale until it invalidates, after which it
    /// must read exactly the DMA'd bytes.
    #[test]
    fn dma_then_invalidate_reads_fresh(
        line in 0u64..(AREA / 64),
        old in any::<u8>(),
        new in any::<u8>(),
    ) {
        prop_assume!(old != new);
        let (mut pool, mut host) = setup(4096);
        let addr = line * 64;
        // Host caches the old value (written back so DMA-read sees it too).
        host.write(&mut pool, addr, &[old; 64]);
        host.clwb(&mut pool, addr);
        host.mfence(&mut pool);
        pool.apply_pending(host.clock);
        // Device overwrites via DMA.
        pool.dma_write(SimTime::MAX, PortId(1), addr, &[new; 64]);
        // Cached read is stale...
        let mut out = [0u8; 1];
        host.read(&mut pool, addr, &mut out);
        prop_assert_eq!(out[0], old, "cached read must be stale");
        // ...until invalidated.
        host.clflushopt(&mut pool, addr);
        host.mfence(&mut pool);
        host.read(&mut pool, addr, &mut out);
        prop_assert_eq!(out[0], new, "post-invalidate read must be fresh");
    }

    /// `read_stream` returns the same bytes as `read` for any span.
    #[test]
    fn stream_read_equals_scalar_read(
        addr in 0u64..(AREA - 2048),
        len in 1usize..2048,
        fill in any::<u8>(),
    ) {
        let (mut pool, mut host) = setup(4096);
        pool.poke(addr, &vec![fill; len]);
        let mut a = vec![0u8; len];
        host.read_stream(&mut pool, addr, &mut a);
        // Fresh host for the scalar read (cold cache).
        let (_, mut host2) = setup(4096);
        let mut b = vec![0u8; len];
        host2.read(&mut pool, addr, &mut b);
        prop_assert_eq!(a, b);
    }
}
