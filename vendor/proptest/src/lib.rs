//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides deterministic random-input testing with the API surface the
//! Oasis workspace uses: the [`Strategy`] trait (`generate` + `prop_map`),
//! [`any`], [`Just`], integer/float range strategies, tuple strategies,
//! [`collection::vec`], and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; re-running is deterministic, so the failure
//!   reproduces exactly.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's module path + name, so runs are reproducible across machines
//!   and re-orderings. Set `PROPTEST_SEED` to perturb all tests at once.
//! * **Default case count is 32** (the real crate uses 256); override with
//!   `PROPTEST_CASES` or `ProptestConfig::with_cases`.

pub mod test_runner {
    /// Deterministic splitmix64 RNG used to drive all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (we use the test's full path) plus
        /// the optional `PROPTEST_SEED` environment perturbation.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
            TestRng { state: h }
        }

        /// Next 64 random bits (splitmix64).
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`. Panics if the range is empty.
        #[inline]
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty strategy range {lo}..{hi}");
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform float in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration. Only `cases` is honored by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(32);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Object-safe: `prop_map` is `Self: Sized`, so `Box<dyn Strategy>`
    /// works for `prop_oneof!` unions.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(0, self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Box a strategy as a trait object (helper for `prop_oneof!` so type
    /// inference unifies the arms' `Value`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.below(*self.start() as u64, *self.end() as u64 + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary_value(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary_value(rng))
        }
    }

    /// Strategy yielding arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `collection::vec(element, len_range)` — a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs. Bodies run inside a closure so `prop_assume!` can skip a case by
/// early return; assertion macros map to std `assert*` (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)) => {};
    (@with ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let run = || {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    $body
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic; re-run reproduces it)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Assertion inside a proptest body (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a proptest body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a proptest body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(
            items in crate::collection::vec(any::<u8>(), 3..7),
        ) {
            prop_assert!((3..7).contains(&items.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                Just(1u32),
                (10u32..20).prop_map(|x| x * 2),
            ],
        ) {
            prop_assert!(v == 1 || (20..40).contains(&v), "v={}", v);
        }

        #[test]
        fn assume_skips_cases(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_cases_is_honored(_x in any::<u64>()) {
            // Body runs; the case count itself is what we're exercising.
        }
    }
}
