//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the surface the Oasis bench files use — `criterion_group!`,
//! `criterion_main!`, benchmark groups with `throughput`/`sample_size`/
//! `bench_function`/`bench_with_input`/`finish`, `BenchmarkId`, and
//! `Bencher::iter` — with a simple auto-calibrating wall-clock measurement
//! and one plain-text result line per benchmark. There is no statistical
//! analysis, plotting, or baseline comparison; this harness exists so the
//! benches build and give usable numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured throughput basis for a benchmark (printed as elem/s or B/s).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times a routine: calibrates an iteration count until the measured batch
/// runs long enough to trust the wall clock, then records the final batch.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Minimum measured batch duration before we accept the sample.
const MIN_BATCH: Duration = Duration::from_millis(20);
/// Iteration-count ceiling so pathologically fast routines terminate.
const MAX_ITERS: u64 = 1 << 24;

impl Bencher {
    /// Run `routine` repeatedly and record mean wall time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= MIN_BATCH || n >= MAX_ITERS {
                self.iters = n;
                self.elapsed = dt;
                return;
            }
            // Grow geometrically, biased by how far short the batch fell.
            let scale = (MIN_BATCH.as_nanos() / dt.as_nanos().max(1)).clamp(2, 16) as u64;
            n = (n * scale).min(MAX_ITERS);
        }
    }
}

fn report(full_id: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 * iters as f64 / elapsed.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!(" ({:.3} Melem/s)", per_sec(n) / 1e6),
            Throughput::Bytes(n) => format!(" ({:.3} MiB/s)", per_sec(n) / (1024.0 * 1024.0)),
        }
    });
    println!(
        "{full_id:<56} {ns_per_iter:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput basis used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        report(&full, b.iters, b.elapsed, self.throughput);
    }

    /// Benchmark a routine under this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I, F, In: ?Sized>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &In),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(id, b.iters, b.elapsed, None);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("encode", 64).id, "encode/64");
        assert_eq!(BenchmarkId::from_parameter("oasis").id, "oasis");
    }
}
