//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the Oasis workspace uses: [`Bytes`] as a
//! cheaply clonable immutable byte buffer, [`BytesMut`] as a growable
//! builder, and the [`BufMut`] write helpers. Semantics match the real crate
//! for this subset; `from_static` copies instead of borrowing (irrelevant
//! for a simulator, and it keeps the representation to a single variant).

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes (shared via `Arc`).
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Buffer backed by a static slice (copied here; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build frames, then frozen into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Append-style write helpers (the subset of the real `BufMut` trait the
/// workspace's packet codecs use). All integers are written big-endian,
/// matching the real crate's `put_u16`/`put_u32` defaults.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0xab);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_slice(&[9, 9]);
        assert_eq!(b.len(), 9);
        b[0] = 0xba;
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[0xba, 1, 2, 3, 4, 5, 6, 9, 9]);
    }

    #[test]
    fn clone_shares_eq_compares_contents() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_ne!(a, Bytes::from_static(b"xyz"));
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"ab\x00");
        assert_eq!(format!("{b:?}"), "b\"ab\\x00\"");
    }
}
