//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Since Rust 1.63 the standard library's [`std::thread::scope`] provides
//! the structured-concurrency guarantee crossbeam's scoped threads were
//! built for, so this shim maps the `crossbeam::thread` API directly onto
//! it. Divergence from the real crate: spawn closures take **no** scope
//! argument (std style) rather than crossbeam's `|scope| ...`, and `scope`
//! only returns `Err` if a spawned thread panicked *and* its join handle
//! was dropped without being joined.

pub mod thread {
    /// Panic payload from an unjoined, panicked scoped thread.
    pub type Error = Box<dyn std::any::Any + Send + 'static>;

    /// Result of running a scope to completion.
    pub type Result<T> = std::result::Result<T, Error>;

    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Run `f` with a scope in which borrowing, structured threads can be
    /// spawned; all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope itself panics (propagating the child's payload)
        // if a spawned thread panicked without being joined; catch that so
        // callers get crossbeam's Result-shaped contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| std::thread::scope(f)))
    }
}

/// `crossbeam::utils` subset: a cache-line-padded wrapper to avoid false
/// sharing between per-thread slots.
pub mod utils {
    /// Pads and aligns its contents to (a common) cache-line size.
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(64))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| counter.fetch_add(1, Ordering::Relaxed)))
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).count()
        })
        .unwrap();
        assert_eq!(total, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn unjoined_panic_surfaces_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn cache_padded_derefs() {
        let mut p = crate::utils::CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(std::mem::align_of_val(&p), 64);
    }
}
